"""Fig. 4 fidelity: the paper's flow-table example, reproduced exactly.

Fig. 4 shows the simplified Video Optimizer (eth0 → VD → PE → TC → C →
eth1) with its initial wildcard rules, then two flows given distinct
per-flow rules:

    Service  Match     Action            (initial, left table)
    eth0     *         (VD)
    VD       *         (PE, eth1)
    PE       *         (TC, C)
    TC       *         (C)
    C        *         (eth1)

    Service  Match     Action            (added, right table)
    eth0     srcIP=B   (PE)
    VD       srcIP=B   —  [B goes straight to PE]
    PE       srcIP=B   (TC)
    eth0     srcIP=G   (PE)
    PE       srcIP=G   (C, TC)

Green (G) bypasses the transcoder; Blue (B) is transcoded.  The paper
then notes "after some time the Policy Engine may redirect the Green
flow to the transcoder" — which we also exercise.
"""

import pytest

from repro.dataplane import (
    ChangeDefault,
    FlowTableEntry,
    NfvHost,
    ToPort,
    ToService,
)
from repro.net import FiveTuple, FlowMatch, Packet
from repro.net.headers import PROTO_TCP
from repro.nfs import CounterNf
from repro.sim import MS

GREEN = FiveTuple("10.0.0.71", "10.9.0.1", PROTO_TCP, 80, 20001)  # G
BLUE = FiveTuple("10.0.0.66", "10.9.0.2", PROTO_TCP, 80, 20002)   # B


@pytest.fixture
def fig4_host(sim):
    host = NfvHost(sim, name="fig4")
    for service in ("VD", "PE", "TC", "C"):
        host.add_nf(CounterNf(service))
    # Left table: the initial wildcard rules.
    initial = [
        FlowTableEntry(scope="eth0", match=FlowMatch.any(),
                       actions=(ToService("VD"),)),
        FlowTableEntry(scope="VD", match=FlowMatch.any(),
                       actions=(ToService("PE"), ToPort("eth1"))),
        FlowTableEntry(scope="PE", match=FlowMatch.any(),
                       actions=(ToService("TC"), ToService("C"))),
        FlowTableEntry(scope="TC", match=FlowMatch.any(),
                       actions=(ToService("C"),)),
        FlowTableEntry(scope="C", match=FlowMatch.any(),
                       actions=(ToPort("eth1"),)),
    ]
    host.install_rules(initial)
    # Right table: per-flow rules for the Blue and Green flows.
    blue = FlowMatch(src_ip=BLUE.src_ip)
    green = FlowMatch(src_ip=GREEN.src_ip)
    host.install_rules([
        FlowTableEntry(scope="eth0", match=blue,
                       actions=(ToService("PE"),)),
        FlowTableEntry(scope="PE", match=blue,
                       actions=(ToService("TC"),)),
        FlowTableEntry(scope="eth0", match=green,
                       actions=(ToService("PE"),)),
        FlowTableEntry(scope="PE", match=green,
                       actions=(ToService("C"), ToService("TC"))),
    ])
    return host


def _run(sim, host, flows, count=3):
    out = []
    host.port("eth1").on_egress = out.append
    for flow in flows:
        for _ in range(count):
            host.inject("eth0", Packet(flow=flow, size=512))
    sim.run(until=20 * MS)
    return out


class TestFig4Tables:
    def test_green_flow_bypasses_transcoder(self, sim, fig4_host):
        nfs = {vm.service_id: vm.nf
               for vms in fig4_host.manager.vms_by_service.values()
               for vm in vms}
        out = _run(sim, fig4_host, [GREEN])
        assert len(out) == 3
        # Green: eth0 -> PE -> C -> eth1 (skips VD and TC).
        assert nfs["PE"].packets_seen == 3
        assert nfs["C"].packets_seen == 3
        assert nfs["VD"].packets_seen == 0
        assert nfs["TC"].packets_seen == 0

    def test_blue_flow_is_transcoded(self, sim, fig4_host):
        nfs = {vm.service_id: vm.nf
               for vms in fig4_host.manager.vms_by_service.values()
               for vm in vms}
        out = _run(sim, fig4_host, [BLUE])
        assert len(out) == 3
        # Blue: eth0 -> PE -> TC -> C -> eth1.
        assert nfs["PE"].packets_seen == 3
        assert nfs["TC"].packets_seen == 3
        assert nfs["C"].packets_seen == 3
        assert nfs["VD"].packets_seen == 0

    def test_other_flows_take_the_wildcard_path(self, sim, fig4_host):
        nfs = {vm.service_id: vm.nf
               for vms in fig4_host.manager.vms_by_service.values()
               for vm in vms}
        other = FiveTuple("10.0.0.9", "10.9.0.3", PROTO_TCP, 80, 20003)
        out = _run(sim, fig4_host, [other])
        assert len(out) == 3
        # Default path: VD -> PE -> TC -> C.
        assert nfs["VD"].packets_seen == 3
        assert nfs["TC"].packets_seen == 3

    def test_paper_note_pe_redirects_green_to_transcoder(self, sim,
                                                         fig4_host):
        """'after some time the Policy Engine may redirect the Green flow
        to the transcoder instead of going directly to the cache'."""
        nfs = {vm.service_id: vm.nf
               for vms in fig4_host.manager.vms_by_service.values()
               for vm in vms}
        fig4_host.manager.apply_message(ChangeDefault(
            sender_service="PE",
            flows=FlowMatch(src_ip=GREEN.src_ip),
            service="PE", target="TC"))
        out = _run(sim, fig4_host, [GREEN])
        assert len(out) == 3
        assert nfs["TC"].packets_seen == 3  # now transcoded

    def test_dump_resembles_paper_tables(self, sim, fig4_host):
        text = fig4_host.flow_table.dump()
        assert "src=10.0.0.66" in text  # the Blue per-flow rules
        assert "(svc:TC, svc:C)" in text  # PE's wildcard action list
        assert "(svc:C, svc:TC)" in text  # Green's PE rule, C first
