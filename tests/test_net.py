"""Packet substrate tests: headers, flows, matching, payload protocols."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    FiveTuple,
    FlowMatch,
    HttpRequest,
    HttpResponse,
    Ipv4Header,
    MemcachedRequest,
    MemcachedResponse,
    Packet,
    TcpHeader,
    UdpHeader,
    classify_content_type,
    ip_to_int,
    ip_to_str,
    wire_bits,
)
from repro.net.headers import PROTO_TCP, PROTO_UDP, protocol_name
from repro.net.http import is_video_content
from repro.net.packet import transmission_ns

ips = st.integers(min_value=0, max_value=0xFFFFFFFF).map(ip_to_str)
ports = st.integers(min_value=0, max_value=65535)
flows = st.builds(FiveTuple, src_ip=ips, dst_ip=ips,
                  protocol=st.sampled_from([PROTO_TCP, PROTO_UDP]),
                  src_port=ports, dst_port=ports)


class TestIpConversion:
    @given(value=st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, value):
        assert ip_to_int(ip_to_str(value)) == value

    @pytest.mark.parametrize("bad", ["1.2.3", "256.0.0.1", "a.b.c.d",
                                     "1.2.3.4.5", ""])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_out_of_range_int(self):
        with pytest.raises(ValueError):
            ip_to_str(1 << 32)


class TestHeaders:
    def test_ipv4_validates_addresses(self):
        with pytest.raises(ValueError):
            Ipv4Header(src_ip="999.0.0.1")

    def test_ipv4_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            Ipv4Header(protocol=99)

    def test_ttl_decrement(self):
        header = Ipv4Header(ttl=1)
        header.decrement_ttl()
        assert header.ttl == 0
        with pytest.raises(ValueError):
            header.decrement_ttl()

    def test_tcp_flags_validated(self):
        with pytest.raises(ValueError):
            TcpHeader(flags=frozenset({"WAT"}))

    @pytest.mark.parametrize("port", [-1, 70000])
    def test_port_ranges(self, port):
        with pytest.raises(ValueError):
            UdpHeader(src_port=port)

    def test_protocol_names(self):
        assert protocol_name(PROTO_TCP) == "tcp"
        assert protocol_name(123) == "123"


class TestFiveTuple:
    def test_reversed_swaps_endpoints(self, flow):
        back = flow.reversed()
        assert back.src_ip == flow.dst_ip
        assert back.dst_port == flow.src_port
        assert back.reversed() == flow

    @given(flow=flows, buckets=st.integers(min_value=1, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_hash_bucket_stable_and_in_range(self, flow, buckets):
        bucket = flow.hash_bucket(buckets)
        assert 0 <= bucket < buckets
        assert flow.hash_bucket(buckets) == bucket

    def test_hash_bucket_rejects_zero(self, flow):
        with pytest.raises(ValueError):
            flow.hash_bucket(0)


class TestFlowMatch:
    def test_any_matches_everything(self, flow, udp_flow):
        assert FlowMatch.any().matches(flow)
        assert FlowMatch.any().matches(udp_flow)

    def test_exact_matches_only_that_flow(self, flow, udp_flow):
        match = FlowMatch.exact(flow)
        assert match.matches(flow)
        assert not match.matches(udp_flow)
        assert match.is_exact
        assert match.exact_key() == flow

    def test_partial_field_match(self, flow):
        assert FlowMatch(dst_port=80).matches(flow)
        assert not FlowMatch(dst_port=443).matches(flow)

    def test_prefix_match(self):
        match = FlowMatch(src_ip="10.1.0.0", src_prefix_bits=16)
        inside = FiveTuple("10.1.200.7", "1.1.1.1", PROTO_TCP, 1, 2)
        outside = FiveTuple("10.2.0.1", "1.1.1.1", PROTO_TCP, 1, 2)
        assert match.matches(inside)
        assert not match.matches(outside)

    def test_prefix_requires_src_ip(self):
        with pytest.raises(ValueError):
            FlowMatch(src_prefix_bits=8)

    def test_zero_bits_prefix_matches_all_sources(self, flow):
        match = FlowMatch(src_ip="99.99.99.99", src_prefix_bits=0)
        assert match.matches(flow)

    def test_specificity_counts_fields(self, flow):
        assert FlowMatch.any().specificity == 0
        assert FlowMatch(dst_port=80, protocol=6).specificity == 2
        assert FlowMatch.exact(flow).specificity == 5

    @given(flow=flows)
    @settings(max_examples=100, deadline=None)
    def test_exact_always_matches_own_flow(self, flow):
        assert FlowMatch.exact(flow).matches(flow)


class TestPacket:
    def test_headers_derived_from_flow(self, flow):
        packet = Packet(flow=flow, size=128)
        assert packet.ip.src_ip == flow.src_ip
        assert packet.l4.dst_port == flow.dst_port

    def test_minimum_frame_size(self, flow):
        with pytest.raises(ValueError):
            Packet(flow=flow, size=32)

    def test_rewrite_destination(self, flow):
        packet = Packet(flow=flow, size=128)
        packet.rewrite_destination("9.9.9.9", 1111)
        assert packet.flow.dst_ip == "9.9.9.9"
        assert packet.ip.dst_ip == "9.9.9.9"
        assert packet.l4.dst_port == 1111
        assert packet.flow.src_ip == flow.src_ip

    def test_refcounting(self, flow):
        packet = Packet(flow=flow)
        packet.add_reference(2)
        assert packet.ref_count == 3
        assert not packet.release()
        assert not packet.release()
        assert packet.release()
        with pytest.raises(RuntimeError):
            packet.release()

    def test_add_reference_positive(self, flow):
        with pytest.raises(ValueError):
            Packet(flow=flow).add_reference(0)

    def test_packet_ids_unique(self, flow):
        a, b = Packet(flow=flow), Packet(flow=flow)
        assert a.packet_id != b.packet_id

    def test_wire_bits_includes_overhead(self):
        assert wire_bits(64) == (64 + 24) * 8

    def test_transmission_time(self):
        # 64B frame = 704 wire bits; at 10 Gbps that's ~70 ns.
        assert transmission_ns(64, 10.0) == round(704 / 10)
        with pytest.raises(ValueError):
            transmission_ns(64, 0)


class TestHttp:
    def test_request_roundtrip(self):
        request = HttpRequest(method="GET", path="/v.mp4",
                              host="cdn.example",
                              headers={"Range": "bytes=0-"})
        parsed = HttpRequest.parse(request.serialize())
        assert parsed == request

    def test_response_roundtrip(self):
        response = HttpResponse(status=206, reason="Partial Content",
                                headers={"Content-Type": "video/mp4"},
                                body="DATA")
        parsed = HttpResponse.parse(response.serialize())
        assert parsed == response

    def test_classify_video(self):
        payload = HttpResponse(
            headers={"Content-Type": "video/mp4"}).serialize()
        assert classify_content_type(payload) == "video/mp4"
        assert is_video_content("video/mp4")
        assert not is_video_content("text/html")
        assert not is_video_content(None)

    def test_classify_non_http_returns_none(self):
        assert classify_content_type("random payload") is None
        assert classify_content_type("") is None


class TestMemcached:
    def test_get_roundtrip(self):
        request = MemcachedRequest(command="get", key="user:42")
        assert MemcachedRequest.parse(request.serialize()) == request

    def test_set_roundtrip(self):
        request = MemcachedRequest(command="set", key="k", value="hello")
        assert MemcachedRequest.parse(request.serialize()) == request

    def test_invalid_key_rejected(self):
        with pytest.raises(ValueError):
            MemcachedRequest(command="get", key="has space")
        with pytest.raises(ValueError):
            MemcachedRequest(command="get", key="")

    def test_unknown_command_rejected(self):
        with pytest.raises(ValueError):
            MemcachedRequest(command="flush", key="k")

    def test_malformed_parse(self):
        with pytest.raises(ValueError):
            MemcachedRequest.parse("gibberish\r\n")

    def test_response_hit_and_miss(self):
        hit = MemcachedResponse(key="k", value="v")
        miss = MemcachedResponse(key="k", value=None)
        assert hit.hit and "VALUE k" in hit.serialize()
        assert not miss.hit and miss.serialize() == "END\r\n"

    def test_wire_length_includes_udp_frame_header(self):
        request = MemcachedRequest(command="get", key="abc")
        assert request.wire_length() == 8 + len(request.serialize())
