"""Baseline system tests: DPDK forwarder, OVS model, SDN video, TwemProxy."""

import pytest

from repro.baselines import (
    OvsControllerModel,
    OvsSwitchSim,
    SdnVideoSystem,
    TwemproxyModel,
    make_dpdk_forwarder,
)
from repro.baselines.twemproxy import TwemproxyCosts, TwemproxySim
from repro.control import SdnController
from repro.net import FiveTuple, Packet
from repro.sim import MS, S, US
from repro.workloads.sessions import video_reply_payload


class TestDpdkForwarder:
    def test_forwards_everything(self, sim, flow):
        host = make_dpdk_forwarder(sim)
        out = []
        host.port("eth1").on_egress = out.append
        for _ in range(10):
            host.inject("eth0", Packet(flow=flow, size=256))
        sim.run(until=10 * MS)
        assert len(out) == 10
        assert host.stats.dropped_no_rule == 0


class TestOvsModel:
    def test_zero_punt_reaches_line_or_fast_path(self):
        model = OvsControllerModel()
        at_1000 = model.max_throughput_gbps(0.0, 1000)
        assert at_1000 == pytest.approx(10.0)  # line rate

    def test_throughput_collapses_with_punt_fraction(self):
        """The Fig. 1 shape: steep drop as % to controller rises."""
        model = OvsControllerModel()
        series = model.sweep([0, 1, 5, 10, 25], packet_size=1000)
        values = [gbps for _pct, gbps in series]
        assert values == sorted(values, reverse=True)
        assert values[2] < values[0] / 5   # collapsed by 5%
        assert values[-1] < 0.5

    def test_small_packets_lower_curve(self):
        model = OvsControllerModel()
        at_5pct_small = model.max_throughput_gbps(0.05, 256)
        at_5pct_large = model.max_throughput_gbps(0.05, 1000)
        assert at_5pct_small < at_5pct_large

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            OvsControllerModel().max_throughput_gbps(1.5, 256)

    def test_sim_matches_analytic_shape(self, sim, flow):
        controller = SdnController(sim, service_time_ns=500 * US,
                                   propagation_ns=50 * US)
        switch = OvsSwitchSim(sim, controller, punt_fraction=0.05,
                              fast_path_pps=1e6, punt_buffer=64)

        def offer():
            while sim.now < 100 * MS:
                switch.offer(Packet(flow=flow, size=256))
                yield sim.timeout(5_000)  # 200 kpps offered

        sim.process(offer())
        sim.run(until=150 * MS)
        # Controller capacity 10k/s, punts 10k/s offered: punt path
        # saturates and drops, fast path still flows.
        assert switch.forwarded > 0
        assert switch.dropped_punts > 0

    def test_sim_no_punt_forwards_all(self, sim, flow):
        controller = SdnController(sim)
        switch = OvsSwitchSim(sim, controller, punt_fraction=0.0)
        for _ in range(100):
            switch.offer(Packet(flow=flow, size=256))
        sim.run(until=10 * MS)
        assert switch.forwarded == 100


class TestSdnVideoSystem:
    def _drive_flows(self, sim, system, count, packets_each=4,
                     size=512, port_base=10000):
        for i in range(count):
            flow = FiveTuple("10.1.0.1", f"10.2.0.{i % 250 + 1}", 6,
                             80, port_base + i)
            system.inject("eth0", Packet(flow=flow, size=64))
            reply = Packet(flow=flow, size=size,
                           payload=video_reply_payload())
            system.inject("eth0", reply)
            for _ in range(packets_each - 2):
                system.inject("eth0", Packet(flow=flow, size=size))

    def test_two_controller_trips_per_flow(self, sim):
        controller = SdnController(sim, service_time_ns=500 * US,
                                   propagation_ns=100 * US)
        system = SdnVideoSystem(sim, controller)
        self._drive_flows(sim, system, count=5)
        sim.run(until=1 * S)
        assert system.completed_flows == 5
        assert controller.stats.requests == 10  # 2 per flow
        assert system.forwarded == 5 * 4

    def test_policy_change_only_affects_new_flows(self, sim):
        controller = SdnController(sim, service_time_ns=200 * US,
                                   propagation_ns=50 * US)
        system = SdnVideoSystem(sim, controller)
        self._drive_flows(sim, system, count=3, packets_each=2)
        sim.run(until=200 * MS)
        system.set_throttle(True)
        # Existing flows keep their "out" rules.
        old_flow = FiveTuple("10.1.0.1", "10.2.0.1", 6, 80, 10000)
        before = system.forwarded
        for _ in range(10):
            system.inject("eth0", Packet(flow=old_flow, size=512))
        sim.run(until=400 * MS)
        assert system.forwarded == before + 10  # untranscoded
        # A new flow after the change is transcoded (half dropped).
        self._drive_flows(sim, system, count=1, packets_each=12,
                          port_base=20000)
        sim.run(until=800 * MS)
        assert system.transcode_dropped > 0

    def test_controller_saturation_limits_flow_setup(self, sim):
        controller = SdnController(sim, service_time_ns=1 * MS,
                                   propagation_ns=0)
        system = SdnVideoSystem(sim, controller, flow_setup_buffer=100000)
        self._drive_flows(sim, system, count=2000, packets_each=2)
        sim.run(until=1 * S)
        # 1 ms service, 2 trips per flow: at most ~500 flows/second.
        assert system.completed_flows <= 510


class TestTwemproxy:
    def test_service_time_near_11us(self):
        model = TwemproxyModel()
        assert 9_000 <= model.service_ns <= 13_000
        assert 80_000 <= model.capacity_rps <= 110_000  # ≈90 k req/s

    def test_latency_curve_saturates(self):
        model = TwemproxyModel()
        low = model.mean_rtt_us(1_000)
        mid = model.mean_rtt_us(60_000)
        high = model.mean_rtt_us(89_000)
        beyond = model.mean_rtt_us(500_000)
        assert low < mid < high
        assert high > 3 * low
        assert beyond >= high  # clamped overload

    def test_sim_latency_matches_model_at_low_load(self, sim):
        model = TwemproxyModel()
        proxy = TwemproxySim(sim, model=model)
        sim.process(proxy.drive(rate_rps=5_000, duration_ns=100 * MS))
        sim.run(until=200 * MS)
        assert proxy.served > 100
        assert proxy.latency.mean_us() == pytest.approx(
            model.mean_rtt_us(5_000), rel=0.25)

    def test_sim_overload_drops(self, sim):
        proxy = TwemproxySim(sim, queue_depth=64)
        sim.process(proxy.drive(rate_rps=300_000, duration_ns=50 * MS))
        sim.run(until=100 * MS)
        assert proxy.dropped > 0

    def test_costs_compose(self):
        costs = TwemproxyCosts()
        small = costs.service_ns(64)
        large = costs.service_ns(1024)
        assert large > small
