"""The AST action-profile extractor (``repro.analysis.profiles``).

Three layers of coverage: a committed golden snapshot of the inferred
profile for every built-in NF (the contract the auto-parallel layout
and the NF lint family both build on), unit tests for the conflict
relation and profile algebra, and the declaration path
(``@action_profile`` / ``profile_of`` precedence).
"""

from __future__ import annotations

import ast
import inspect
import json
import pathlib
import textwrap

import pytest

import repro.nfs as nfs
from repro.analysis.profiles import (
    ActionProfile,
    chain_conflicts,
    declared_profile,
    infer_profile,
    module_string_constants,
    profile_from_classdef,
    profile_of,
    undeclared_effects,
)
from repro.nfs.base import NetworkFunction, action_profile

GOLDEN_PATH = (pathlib.Path(__file__).resolve().parent
               / "data" / "action_profiles_golden.json")


def builtin_nf_classes() -> dict[str, type]:
    return {
        name: obj for name, obj in vars(nfs).items()
        if inspect.isclass(obj) and issubclass(obj, NetworkFunction)
        and obj is not NetworkFunction
    }


def profile_of_source(source: str, class_name: str | None = None
                      ) -> ActionProfile:
    tree = ast.parse(textwrap.dedent(source))
    constants = module_string_constants(tree)
    classdefs = [node for node in tree.body
                 if isinstance(node, ast.ClassDef)]
    if class_name is not None:
        classdefs = [c for c in classdefs if c.name == class_name]
    return profile_from_classdef(classdefs[0], constants=constants)


class TestGoldenSnapshot:
    """Every built-in NF's inferred profile, pinned.

    If this fails you either changed an NF handler (update the snapshot
    deliberately — the diff *is* the review artifact, since the layout
    synthesizer and lint rules consume these) or changed the analyzer
    (the diff shows exactly which NFs it now sees differently).
    Regenerate with::

        PYTHONPATH=src python -c "
        import json, inspect, repro.nfs as nfs
        from repro.nfs.base import NetworkFunction
        from repro.analysis.profiles import infer_profile
        out = {n: infer_profile(c).as_dict()
               for n, c in sorted(vars(nfs).items())
               if inspect.isclass(c) and issubclass(c, NetworkFunction)
               and c is not NetworkFunction}
        print(json.dumps(out, indent=2))" > tests/data/action_profiles_golden.json
    """

    def test_every_builtin_nf_matches_golden(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        actual = {name: infer_profile(cls).as_dict()
                  for name, cls in builtin_nf_classes().items()}
        assert actual == golden

    def test_golden_covers_the_whole_catalogue(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert set(golden) == set(builtin_nf_classes())
        assert len(golden) >= 20

    def test_no_builtin_nf_is_opaque(self):
        """The analyzer understands every handler idiom the repo uses."""
        for name, cls in builtin_nf_classes().items():
            assert not infer_profile(cls).opaque, name


class TestInference:
    def test_narrow_field_reads(self):
        profile = profile_of_source("""
            class Peek(NetworkFunction):
                def process(self, packet, ctx):
                    if packet.flow.src_port == 80:
                        self.hits += 1
                    return Verdict.default()
        """)
        assert profile.reads == frozenset({"src_port"})
        assert profile.writes == frozenset()
        assert not profile.can_drop and not profile.can_send

    def test_replace_write_narrows_to_named_fields(self):
        profile = profile_of_source("""
            import dataclasses

            class Mark(NetworkFunction):
                def process(self, packet, ctx):
                    packet.ip = dataclasses.replace(packet.ip, dscp=4, ttl=9)
                    return Verdict.default()
        """)
        assert profile.writes == frozenset({"dscp", "ttl"})
        # replace() reads the whole header it copies.
        assert {"src_ip", "dst_ip", "protocol"} <= set(profile.reads)

    def test_helper_methods_are_followed(self):
        profile = profile_of_source("""
            class Indirect(NetworkFunction):
                def _check(self, pkt):
                    return pkt.flow.dst_ip == "10.0.0.1"

                def process(self, packet, ctx):
                    if self._check(packet):
                        return Verdict.discard()
                    return Verdict.default()
        """)
        assert profile.reads == frozenset({"dst_ip"})
        assert profile.can_drop

    def test_annotation_keys_resolved_through_constants(self):
        profile = profile_of_source("""
            MARK_KEY = "marked"

            class Annotate(NetworkFunction):
                def process(self, packet, ctx):
                    if "seen" in packet.annotations:
                        packet.annotations[MARK_KEY] = True
                    return Verdict.default()
        """)
        assert profile.annotations_read == frozenset({"seen"})
        assert profile.annotations_written == frozenset({"marked"})

    def test_escaping_packet_goes_opaque(self):
        profile = profile_of_source("""
            class Leaky(NetworkFunction):
                def process(self, packet, ctx):
                    self.stash.append(packet)
                    return Verdict.default()
        """)
        assert profile.opaque
        assert not profile.groupable

    def test_send_and_message_detection(self):
        profile = profile_of_source("""
            class Tap(NetworkFunction):
                def process(self, packet, ctx):
                    ctx.send_message({"kind": "seen"})
                    return Verdict.send_to_service("ids")
        """)
        assert profile.can_send
        assert profile.sends_messages


class TestConflictRelation:
    READER = ActionProfile(reads=frozenset({"src_ip"}))
    DSCP_W = ActionProfile(writes=frozenset({"dscp"}))
    TTL_W = ActionProfile(writes=frozenset({"ttl"}))
    DROPPER = ActionProfile(reads=frozenset({"src_ip"}), can_drop=True)

    def test_readers_never_conflict(self):
        assert self.READER.conflicts_with(self.READER) == ()
        assert self.READER.parallel_safe_with(self.READER)

    def test_write_write_overlap(self):
        clash = self.DSCP_W.conflicts_with(self.DSCP_W)
        assert clash and "write/write" in clash[0]
        assert self.DSCP_W.conflicts_with(self.TTL_W) == ()

    def test_read_after_write_both_directions(self):
        dscp_reader = ActionProfile(reads=frozenset({"dscp"}))
        assert self.DSCP_W.conflicts_with(dscp_reader)
        assert dscp_reader.conflicts_with(self.DSCP_W)

    def test_drop_vs_modify_but_not_vs_annotations(self):
        assert self.DROPPER.conflicts_with(self.DSCP_W)
        annotator = ActionProfile(
            annotations_written=frozenset({"sampled"}))
        # Drop + annotation writer is the legacy Firewall ∥ FlowMonitor
        # fusion — must stay legal.
        assert self.DROPPER.conflicts_with(annotator) == ()

    def test_annotation_wildcard_overlaps_everything(self):
        wild = ActionProfile(annotations_written=frozenset({"*"}))
        named = ActionProfile(annotations_written=frozenset({"x"}))
        assert wild.conflicts_with(named)
        assert wild.conflicts_with(ActionProfile()) == ()

    def test_five_tuple_writers_not_groupable(self):
        nat = ActionProfile(writes=frozenset({"src_ip", "src_port"}))
        assert not nat.groupable
        assert self.DSCP_W.groupable

    def test_chain_conflicts_structural_rules(self):
        sender = ActionProfile(can_send=True)
        # SEND-capable member anywhere but last: rejected.
        assert chain_conflicts([sender, self.READER])
        assert not chain_conflicts([self.READER, sender])
        # Opaque member: rejected.
        assert chain_conflicts([ActionProfile.opaque_profile(),
                                self.READER])
        # Pairwise conflicts surface with member indices.
        issues = chain_conflicts([self.DSCP_W, self.READER, self.DSCP_W])
        assert any("0" in issue and "2" in issue for issue in issues)

    def test_merged_with_unions_everything(self):
        merged = self.DROPPER.merged_with(self.DSCP_W)
        assert merged.can_drop
        assert merged.writes == frozenset({"dscp"})
        assert merged.reads == frozenset({"src_ip"})


class TestDeclarations:
    def test_decorator_takes_precedence_over_inference(self):
        @action_profile(reads=("src_ip",), drops=True)
        class Declared(NetworkFunction):
            def process(self, packet, ctx):  # pragma: no cover
                return None

        declared = declared_profile(Declared)
        assert declared is not None
        assert declared.reads == frozenset({"src_ip"})
        assert declared.can_drop
        assert profile_of(Declared) == declared

    def test_profile_of_falls_back_to_inference(self):
        assert declared_profile(nfs.Firewall) is None
        assert profile_of(nfs.Firewall) == infer_profile(nfs.Firewall)

    def test_builtin_declarations_cover_their_handlers(self):
        """NF002's dynamic twin: every shipped @action_profile is honest."""
        for name, cls in builtin_nf_classes().items():
            declared = declared_profile(cls)
            if declared is None:
                continue
            issues = undeclared_effects(declared, infer_profile(cls))
            assert not issues, (name, issues)

    def test_sampler_and_dscp_marker_are_declared(self):
        assert declared_profile(nfs.Sampler) is not None
        assert declared_profile(nfs.DscpMarker) is not None

    def test_as_dict_roundtrip_is_sorted_and_stable(self):
        profile = ActionProfile(reads=frozenset({"src_ip", "dst_ip"}),
                                writes=frozenset({"dscp"}))
        snapshot = profile.as_dict()
        assert snapshot["reads"] == ["dst_ip", "src_ip"]
        assert json.dumps(snapshot) == json.dumps(profile.as_dict())


class TestInferProfileEdgeCases:
    def test_non_nf_class_is_opaque(self):
        class Plain:
            pass

        assert infer_profile(Plain).opaque

    def test_instance_accepted_as_target(self):
        firewall = nfs.Firewall("fw")
        assert infer_profile(firewall) == infer_profile(nfs.Firewall)

    def test_subclass_merges_parent_handlers(self):
        class Stricter(nfs.Firewall):
            def process(self, packet, ctx):
                if packet.flow.size > 1500:
                    return None  # analyzer treats handler body only
                return super().process(packet, ctx)

        profile = infer_profile(Stricter)
        assert profile.can_drop  # inherited from Firewall's handler
        assert "size" in profile.reads

    def test_read_only_graph_default_profile(self):
        declared = ActionProfile.declared_read_only()
        assert declared.groupable
        assert not declared.mutates_packet

    @pytest.mark.parametrize("field", ["src_ip", "dst_port", "protocol"])
    def test_five_tuple_membership(self, field):
        profile = ActionProfile(writes=frozenset({field}))
        assert profile.writes_five_tuple
