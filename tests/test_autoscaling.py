"""Overload monitoring and automatic replica scaling."""

import pytest

from repro.control import NfvOrchestrator
from repro.core import SdnfvApp
from repro.dataplane import NfvHost
from repro.net import FiveTuple, Packet
from repro.nfs import ComputeNf, NoOpNf
from repro.sim import MS, S

from tests.conftest import install_chain


class TestOverloadMonitor:
    def test_parameter_validation(self, sim, host):
        with pytest.raises(ValueError):
            host.manager.start_overload_monitor(0, 10, lambda s, d: None)
        with pytest.raises(ValueError):
            host.manager.start_overload_monitor(10, 0, lambda s, d: None)

    def test_fires_once_on_sustained_overload(self, sim, flow):
        host = NfvHost(sim, name="ov0")
        host.add_nf(ComputeNf("svc", cost_ns=100_000), ring_slots=4096)
        install_chain(host, ["svc"])
        alarms = []
        host.manager.start_overload_monitor(
            interval_ns=1 * MS, threshold_slots=20,
            callback=lambda service, depth: alarms.append(
                (sim.now, service, depth)),
            consecutive=3)

        def flood():
            for _ in range(600):
                host.inject("eth0", Packet(flow=flow, size=128))
                yield sim.timeout(20_000)

        sim.process(flood())
        sim.run(until=60 * MS)
        assert len(alarms) == 1
        assert alarms[0][1] == "svc"
        assert alarms[0][2] > 20

    def test_no_alarm_for_transient_spike(self, sim, flow):
        host = NfvHost(sim, name="ov1")
        host.add_nf(NoOpNf("svc"), ring_slots=4096)
        install_chain(host, ["svc"])
        alarms = []
        host.manager.start_overload_monitor(
            interval_ns=1 * MS, threshold_slots=5,
            callback=lambda s, d: alarms.append(s), consecutive=3)
        # A one-shot burst the no-op VM drains immediately.
        for _ in range(50):
            host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=20 * MS)
        assert not alarms


class TestAutoscaling:
    def _overloaded_host(self, sim):
        orchestrator = NfvOrchestrator(sim)
        app = SdnfvApp(sim, orchestrator=orchestrator)
        host = NfvHost(sim, name="as0")
        app.register_host(host)
        host.add_nf(ComputeNf("svc", cost_ns=60_000), ring_slots=8192)
        install_chain(host, ["svc"])
        return app, host, orchestrator

    def _flood(self, sim, host, flow, count=4000, gap_ns=20_000):
        def generator():
            for i in range(count):
                spread = FiveTuple(flow.src_ip, flow.dst_ip,
                                   flow.protocol, 1000 + i % 64, 80)
                host.inject("eth0", Packet(flow=spread, size=128))
                yield sim.timeout(gap_ns)

        sim.process(generator())

    def test_replica_booted_under_load(self, sim, flow):
        app, host, orchestrator = self._overloaded_host(sim)
        app.enable_autoscaling(
            host, {"svc": lambda: ComputeNf("svc", cost_ns=60_000)},
            interval_ns=2 * MS, threshold_slots=50, max_replicas=3)
        self._flood(sim, host, flow)
        sim.run(until=1 * S)
        assert len(host.manager.vms_by_service["svc"]) >= 2
        assert orchestrator.launches
        # Fast launch mode used (not the 7.75 s cold boot).
        assert orchestrator.launches[0].mode == "standby_process"

    def test_max_replicas_respected(self, sim, flow):
        app, host, orchestrator = self._overloaded_host(sim)
        app.enable_autoscaling(
            host, {"svc": lambda: ComputeNf("svc", cost_ns=60_000)},
            interval_ns=1 * MS, threshold_slots=10, max_replicas=2)
        self._flood(sim, host, flow, count=8000, gap_ns=10_000)
        sim.run(until=1 * S)
        assert len(host.manager.vms_by_service["svc"]) <= 2

    def test_unknown_service_ignored(self, sim, flow):
        app, host, orchestrator = self._overloaded_host(sim)
        app.enable_autoscaling(
            host, {"other": lambda: NoOpNf("other")},
            interval_ns=1 * MS, threshold_slots=10)
        self._flood(sim, host, flow)
        sim.run(until=200 * MS)
        assert len(host.manager.vms_by_service["svc"]) == 1

    def test_autoscaling_needs_orchestrator(self, sim, host):
        app = SdnfvApp(sim)
        app.register_host(host)
        with pytest.raises(RuntimeError):
            app.enable_autoscaling(host, {})

    def test_scaling_improves_throughput(self, sim, flow):
        """With a second replica the service drains roughly twice as
        fast — the load balancer spreads across both."""
        app, host, orchestrator = self._overloaded_host(sim)
        app.enable_autoscaling(
            host, {"svc": lambda: ComputeNf("svc", cost_ns=60_000)},
            interval_ns=2 * MS, threshold_slots=50, max_replicas=2)
        out = []
        host.port("eth1").on_egress = lambda p: out.append(sim.now)
        # Keep offering load well past the replica's ~260 ms launch so
        # the balancer has live traffic to spread.
        self._flood(sim, host, flow, count=24_000, gap_ns=25_000)
        sim.run(until=2 * S)
        replicas = host.manager.vms_by_service["svc"]
        assert len(replicas) == 2
        # Both replicas did real work after the scale-out.
        assert min(vm.packets_processed for vm in replicas) > 100
