"""Golden parity: the pooled/slotted fast path is behaviorally invisible.

Two fixed-seed Fig. 7 runs of the same workload — one with the host's
``PacketPool`` (the default), one with pooling disabled (``pool_size=0``,
every buffer a plain heap ``Packet``) — must be *indistinguishable* in
everything the simulation observes: packet-for-packet delivery order,
every latency sample, every drop counter, and the kernel's event
odometer.  Buffer reuse may only change where bytes live, never what
the data plane does.
"""

from repro.dataplane import NfvHost
from repro.net import FiveTuple
from repro.nfs import NoOpNf
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain

WINDOW_NS = 2 * MS

#: Counters allowed to differ: they *describe the pool itself*.
POOL_KEYS = ("pool_hits", "pool_misses", "pool_exhausted")


def run_fig7(pool_size: int):
    """One deterministic Fig. 7-style run; returns everything observable."""
    sim = Simulator()
    host = NfvHost(sim, name="parity", pool_size=pool_size)
    for service in ("noop0", "noop1"):
        host.add_nf(NoOpNf(service), ring_slots=256)
    install_chain(host, ["noop0", "noop1"])
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1234, 80)
    gen = PktGen(sim, host, window_ns=MS)
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=8_000.0, packet_size=64,
                          stop_ns=WINDOW_NS))

    deliveries: list[tuple[int, int, FiveTuple]] = []
    measured_hook = host.port("eth1").on_egress

    def recording_hook(packet):
        deliveries.append((sim.now, packet.created_at, packet.flow))
        measured_hook(packet)

    host.port("eth1").on_egress = recording_hook
    sim.run(until=WINDOW_NS + MS)
    return {
        "deliveries": deliveries,
        "latency_samples": gen.latency.samples_ns,
        "summary": host.stats.summary(),
        "events_scheduled": sim.events_scheduled,
        "timers_scheduled": sim.timers_scheduled,
        "events_cancelled": sim.events_cancelled,
        "sent": gen.sent,
        "received": gen.received,
        "gbps": gen.rx_meter.mean_gbps(),
        "pool": host.packet_pool,
    }


def test_pooled_run_is_event_and_stat_identical_to_unpooled():
    pooled = run_fig7(pool_size=8192)
    unpooled = run_fig7(pool_size=0)

    # Same packets, same order, same timestamps.
    assert pooled["deliveries"] == unpooled["deliveries"]
    # Every RTT sample identical (jitter RNG consumed in the same order).
    assert pooled["latency_samples"] == unpooled["latency_samples"]
    # Same kernel work.
    assert pooled["events_scheduled"] == unpooled["events_scheduled"]
    assert pooled["timers_scheduled"] == unpooled["timers_scheduled"]
    assert pooled["events_cancelled"] == unpooled["events_cancelled"]
    # Same conservation accounting and throughput.
    assert pooled["sent"] == unpooled["sent"]
    assert pooled["received"] == unpooled["received"]
    assert pooled["gbps"] == unpooled["gbps"]
    pooled_summary = {k: v for k, v in pooled["summary"].items()
                      if k not in POOL_KEYS}
    unpooled_summary = {k: v for k, v in unpooled["summary"].items()
                        if k not in POOL_KEYS}
    assert pooled_summary == unpooled_summary

    # And the pooled run really exercised the pool.
    assert pooled["pool"] is not None
    assert pooled["pool"].hits > 0
    assert unpooled["pool"] is None
    for key in POOL_KEYS:
        assert unpooled["summary"][key] == 0

    # Sanity: the workload actually moved traffic.
    assert pooled["received"] > 1000
