"""The dynamic layer: seeded bugs must be detected, real runs must be
clean.

Detection tests plant a double-release / use-after-release / leak /
conflicting flow write and assert the verifier reports it.  Scenario
tests replay the fault-injection suite's crash, hang-salvage, and
failover shapes under ``verify=True`` with pooled buffers and assert a
spotless ledger — including the parallel-group member-loss path that
used to strand the group forever.
"""

from __future__ import annotations

import pytest

from repro.analysis.ownership import OwnershipError
from repro.dataplane import FlowTableEntry, NfvHost, ToPort
from repro.dataplane.messages import ChangeDefault
from repro.faults import NfWatchdog
from repro.net import FiveTuple, FlowMatch
from repro.nfs import ComputeNf, NoOpNf
from repro.sim import MS, Simulator

from tests.conftest import install_chain


@pytest.fixture
def vhost(sim: Simulator) -> NfvHost:
    return NfvHost(sim, name="verified", verify=True)


def _alloc(host: NfvHost, flow, now=0, size=128):
    return host.packet_pool.alloc(flow, size=size, created_at=now)


def _reclaiming_sink(host: NfvHost, port: str = "eth1") -> list:
    """Terminal egress owner: record, then return buffers to the slab."""
    out = []

    def sink(packet):
        out.append(packet)
        pool = packet.pool
        if pool is not None and packet.ref_count == 0:
            pool.reclaim(packet)

    host.port(port).on_egress = sink
    return out


# ----------------------------------------------------------------------
# Seeded-bug detection
# ----------------------------------------------------------------------
class TestDetection:
    def test_double_release_is_flagged(self, sim, vhost, flow):
        packet = _alloc(vhost, flow)
        packet.free()                        # legitimate terminal free
        vhost.packet_pool.reclaim(packet)    # the seeded second release
        report = vhost.verifier.report()
        assert [issue.kind for issue in report.issues] == ["double-release"]
        assert not report.ok

    def test_use_after_release_is_flagged(self, sim, vhost, flow):
        packet = _alloc(vhost, flow)
        packet.free()
        vhost.inject("eth0", packet)         # freed buffer re-enters
        report = vhost.verifier.report()
        assert [issue.kind for issue in report.issues] == [
            "use-after-release"]

    def test_leak_is_flagged_and_attributed(self, sim, vhost, flow):
        packet = _alloc(vhost, flow)
        report = vhost.verifier.report(expect_drained=True)
        assert report.leaked == [(packet.packet_id, "alloc")]
        with pytest.raises(OwnershipError, match="leak"):
            vhost.verifier.assert_clean()
        # Mid-run audits don't treat outstanding buffers as leaks.
        assert vhost.verifier.report(expect_drained=False).leaked == []
        packet.free()

    def test_conflicting_flow_writes_are_flagged(self, sim, vhost, flow):
        vhost.add_nf(NoOpNf("svc"))
        install_chain(vhost, ["svc"])
        match = FlowMatch.exact(flow)
        # An NF retargets the flow's default at the same instant the
        # controller installs a different one (§3.4's write race).
        vhost.manager.apply_message(ChangeDefault(
            sender_service="svc", flows=match, service="svc",
            target="port:eth1"))
        vhost.install_rule(FlowTableEntry(scope="svc", match=match,
                                          actions=(ToPort("eth0"),)))
        report = vhost.verifier.report()
        kinds = [issue.kind for issue in report.issues]
        assert kinds == ["flow-conflict"]
        assert "nf:svc" in report.issues[0].detail
        assert "control" in report.issues[0].detail

    def test_agreeing_or_separated_writes_are_not_conflicts(
            self, sim, vhost, flow):
        vhost.add_nf(NoOpNf("svc"))
        install_chain(vhost, ["svc"])
        match = FlowMatch.exact(flow)
        vhost.manager.apply_message(ChangeDefault(
            sender_service="svc", flows=match, service="svc",
            target="port:eth1"))
        sim.run(until=1 * MS)  # later controller write: reconfiguration,
        vhost.install_rule(FlowTableEntry(scope="svc", match=match,
                                          actions=(ToPort("eth0"),)))
        # ... and a same-writer overwrite is never a race.
        vhost.install_rule(FlowTableEntry(scope="svc", match=match,
                                          actions=(ToPort("eth1"),)))
        assert vhost.verifier.report().issues == []


# ----------------------------------------------------------------------
# Clean runs: fault-injection scenarios under verify=True
# ----------------------------------------------------------------------
class TestFaultScenariosVerified:
    def test_crash_mid_packet_accounts_for_the_lost_buffer(
            self, sim, flow):
        sim = Simulator()
        host = NfvHost(sim, name="crash", verify=True)
        vm = host.add_nf(ComputeNf("svc", cost_ns=10 * MS))
        install_chain(host, ["svc"])
        out = _reclaiming_sink(host)
        host.inject("eth0", _alloc(host, flow))
        sim.run(until=2 * MS)                 # NF mid-packet
        assert vm.inflight is not None
        vm.crash()
        sim.run(until=3 * MS)
        assert host.stats.lost_in_nf == 1
        report = host.verifier.assert_clean()
        assert report.audit == {"allocated": 1, "injected": 1,
                                "delivered": 0, "dropped": 1,
                                "inflight": 0, "balanced": True}
        assert out == []

    def test_watchdog_crash_salvage_is_leak_free(self, flow):
        sim = Simulator()
        host = NfvHost(sim, name="salvage", verify=True)
        vm1 = host.add_nf(ComputeNf("svc", cost_ns=5 * MS))
        host.add_nf(ComputeNf("svc", cost_ns=5 * MS))
        install_chain(host, ["svc"])
        out = _reclaiming_sink(host)
        watchdog = NfWatchdog(host.manager)
        for _ in range(6):
            host.inject("eth0", _alloc(host, flow))
        sim.run(until=2 * MS)                 # rings loaded, both busy
        vm1.crash()
        sim.run(until=3 * MS)
        records = watchdog.sweep()            # fail_vm + ring salvage
        assert [r.cause for r in records] == ["crash"]
        sim.run(until=100 * MS)
        report = host.verifier.assert_clean()
        lost = host.stats.lost_in_nf
        assert len(out) == 6 - lost
        assert report.audit["injected"] == 6
        assert report.audit["delivered"] == len(out)
        assert report.audit["dropped"] == lost

    def test_watchdog_hang_kill_is_leak_free(self, flow):
        sim = Simulator()
        host = NfvHost(sim, name="hang", verify=True)
        vm = host.add_nf(NoOpNf("svc"))
        host.add_nf(NoOpNf("svc"))
        install_chain(host, ["svc"])
        out = _reclaiming_sink(host)
        watchdog = NfWatchdog(host.manager, heartbeat_timeout_ns=10 * MS)
        vm.hang()
        host.inject("eth0", _alloc(host, flow))
        sim.run(until=20 * MS)
        assert [r.cause for r in watchdog.sweep()] == ["hang"]
        sim.run(until=30 * MS)                # kill interrupt delivered
        report = host.verifier.assert_clean()
        assert report.audit["dropped"] == 1   # the wedged descriptor
        assert out == []


# ----------------------------------------------------------------------
# The parallel-group member-loss fix
# ----------------------------------------------------------------------
class TestGroupMemberLoss:
    def test_member_crash_after_survivors_report_finalizes_group(
            self, flow):
        """A fanned-out packet whose last straggler dies must still be
        merged from the surviving verdicts and delivered — previously
        the group leaked in ``_groups`` and the packet silently
        vanished even though every surviving NF processed it."""
        sim = Simulator()
        host = NfvHost(sim, name="parallel", verify=True)
        host.add_nf(NoOpNf("fast"))
        slow_vm = host.add_nf(ComputeNf("slow", cost_ns=20 * MS))
        host.manager.register_parallel_chain(["fast", "slow"])
        install_chain(host, ["fast", "slow"])
        out = _reclaiming_sink(host)
        host.inject("eth0", _alloc(host, flow))
        sim.run(until=10 * MS)               # fast member long since done
        assert slow_vm.inflight is not None
        assert len(host.manager._groups) == 1
        slow_vm.crash()
        sim.run(until=40 * MS)
        # The group is finalized from the fast member's verdict: no
        # stranded _groups entry, and the packet still egresses.
        assert host.manager._groups == {}
        assert len(out) == 1
        assert host.stats.lost_in_nf == 1
        report = host.verifier.assert_clean()
        assert report.audit["delivered"] == 1
        assert report.audit["dropped"] == 0


# ----------------------------------------------------------------------
# Attach/detach mechanics
# ----------------------------------------------------------------------
class TestAttachment:
    def test_detach_restores_class_methods(self, sim, vhost):
        pool = vhost.packet_pool
        assert "alloc" in pool.__dict__            # wrapped
        vhost.verifier.detach()
        assert "alloc" not in pool.__dict__        # class method again
        assert "receive" not in vhost.port("eth0").__dict__
        assert "install_rule" not in vhost.manager.__dict__

    def test_late_vms_and_ports_are_wrapped(self, sim, vhost):
        vm = vhost.add_nf(NoOpNf("svc"))
        assert "try_enqueue" in vm.rx_ring.__dict__
        port = vhost.manager.add_port("eth2")
        assert "receive" in port.__dict__
