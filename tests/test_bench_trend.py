"""The benchmark-trend collator: every ``benchmarks/results/*.json``
artifact lands in the trajectory table with its headline numbers, and
the CLI fails loudly when pointed at nothing (a misconfigured CI job).
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = REPO / "tools" / "bench_trend.py"

spec = importlib.util.spec_from_file_location("bench_trend", SCRIPT)
bench_trend = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_trend)


class TestCollect:
    def test_repo_results_all_collated(self):
        rows = bench_trend.collect(REPO / "benchmarks" / "results")
        by_name = {row["name"]: row for row in rows}
        # Every committed artifact shows up; baselines are tagged.
        assert "micro_adaptive" in by_name
        assert "micro_multihost" in by_name
        assert by_name["micro_multihost_baseline"]["baseline"]
        assert not by_name["micro_adaptive"]["baseline"]
        # The adaptive benchmark's headline ratios survive flattening.
        ratios = by_name["micro_adaptive"]["ratios"]
        assert ratios["window_reduction"] >= 5.0
        assert ratios["message_reduction"] >= 10.0

    def test_shallowest_wall_clock_wins(self):
        flat = bench_trend.flatten({
            "wall_s": 2.0,
            "metrics": {"object": {"wall_s": 9.0}},
        })
        assert bench_trend._pick(flat, ("wall_s",)) == 2.0

    def test_ratio_detection_is_whole_word(self):
        flat = {"config.duration_ns": 1e6,      # no "ratio" ride-along
                "config.min_speedup": 1.3,      # threshold, not result
                "metrics.speedup": 1.7,
                "metrics.baseline_ratio": 1.2}
        assert bench_trend._ratios(flat) == {"speedup": 1.7,
                                             "baseline_ratio": 1.2}


class TestCli:
    def write_results(self, directory: pathlib.Path) -> None:
        (directory / "fast.json").write_text(json.dumps(
            {"name": "fast", "metrics": {"wall_s": 0.5, "speedup": 2.0,
                                         "events_per_pkt": 3.25}}))
        (directory / "slow_baseline.json").write_text(json.dumps(
            {"name": "slow_baseline", "wall_s": 4.0}))
        (directory / "broken.json").write_text("{not json")

    def test_table_and_raw_rows_written(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        self.write_results(results)
        out = tmp_path / "trend.txt"
        assert bench_trend.main([str(results), "--out", str(out)]) == 0

        table = out.read_text()
        assert "fast" in table and "speedup=2.00" in table
        assert "baseline" in table          # kind column tags baselines
        assert "unreadable" in table        # broken file is reported

        rows = json.loads(out.with_suffix(".txt.json").read_text())
        by_name = {row["name"]: row for row in rows}
        assert by_name["fast"]["wall_s"] == 0.5
        assert by_name["slow_baseline"]["baseline"]

    def test_own_output_never_self_aggregates(self, tmp_path):
        self.write_results(tmp_path)
        (tmp_path / "bench_trend.txt.json").write_text("[]")
        names = [row["name"] for row in bench_trend.collect(tmp_path)]
        assert "bench_trend.txt" not in names
        assert len(names) == 3

    def test_cli_exit_codes(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        bad = subprocess.run([sys.executable, str(SCRIPT), str(empty)],
                             capture_output=True, text=True)
        assert bad.returncode == 1
        assert "no benchmark results" in bad.stderr
        ok = subprocess.run([sys.executable, str(SCRIPT)],
                            capture_output=True, text=True)
        assert ok.returncode == 0
        assert "micro_adaptive" in ok.stdout
