"""Burst-mode data plane: ring burst ops, burst=1 parity, crash salvage.

The batched pipeline (``NfvHost(burst_size=...)``) must be a pure
efficiency refactor: ``burst_size=1`` reproduces the pre-refactor
pipeline event-for-event (checked here against golden summaries captured
before the refactor), per-slot ring accounting is identical to per-item
calls, and a VM crash mid-batch loses only the in-flight head — the
rest of the held batch is salvaged exactly like ring contents.
"""

from __future__ import annotations

import pytest

from repro._compat import HAVE_NUMPY
from repro.dataplane import NfvHost
from repro.dataplane.rings import RingBuffer
from repro.net import FiveTuple, Packet
from repro.nfs import ComputeNf, NoOpNf
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain


# ----------------------------------------------------------------------
# RingBuffer burst operations
# ----------------------------------------------------------------------
class TestRingBurstOps:
    def test_enqueue_burst_accepts_prefix_and_drops_tail(self, sim):
        ring = RingBuffer(sim, "r", slots=4)
        assert ring.enqueue_burst(list(range(6))) == 4
        assert ring.enqueued == 4
        assert ring.dropped == 2
        assert ring.occupancy == 4
        assert ring.is_full
        # A burst against a full ring accepts nothing.
        assert ring.enqueue_burst([99]) == 0
        assert ring.dropped == 3

    def test_burst_accounting_matches_per_item_calls(self, sim):
        burst_ring = RingBuffer(sim, "burst", slots=5)
        item_ring = RingBuffer(sim, "items", slots=5)
        payload = list(range(8))
        burst_ring.enqueue_burst(payload)
        for item in payload:
            item_ring.try_enqueue(item)
        assert burst_ring.enqueued == item_ring.enqueued
        assert burst_ring.dropped == item_ring.dropped
        assert burst_ring.drain() == item_ring.drain()

    def test_dequeue_burst_caps_at_max_n_and_preserves_fifo(self, sim):
        ring = RingBuffer(sim, "r", slots=8)
        ring.enqueue_burst([1, 2, 3, 4, 5])
        assert ring.dequeue_burst(3) == [1, 2, 3]
        assert ring.dequeue_burst(10) == [4, 5]
        assert ring.dequeue_burst(1) == []

    def test_wraparound_cycling_keeps_order_and_counters(self, sim):
        ring = RingBuffer(sim, "r", slots=8)
        produced = iter(range(10_000))
        offered = 0
        accepted_items = []
        consumed = []
        # Cycle bursts of varying size through the 8-slot ring so the
        # head/tail wrap many times; only the accepted prefix of each
        # burst enters the FIFO.
        for enqueue_n, dequeue_n in ((3, 1), (8, 8), (5, 2), (7, 7),
                                     (2, 0), (8, 3), (6, 6), (4, 9)) * 4:
            batch = [next(produced) for _ in range(enqueue_n)]
            offered += len(batch)
            free = ring.slots - ring.occupancy
            accepted = ring.enqueue_burst(batch)
            assert accepted == min(enqueue_n, free)
            accepted_items.extend(batch[:accepted])
            consumed.extend(ring.dequeue_burst(dequeue_n))
        consumed.extend(ring.drain())
        assert consumed == accepted_items
        assert ring.enqueued == len(accepted_items)
        assert ring.enqueued + ring.dropped == offered
        assert ring.occupancy == 0

    def test_drain_equals_full_dequeue_burst(self, sim):
        first = RingBuffer(sim, "a", slots=16)
        second = RingBuffer(sim, "b", slots=16)
        for ring in (first, second):
            ring.enqueue_burst(list(range(10)))
        assert first.drain() == second.dequeue_burst(second.occupancy)
        assert first.occupancy == second.occupancy == 0


# ----------------------------------------------------------------------
# burst_size=1 parity with the pre-refactor per-packet pipeline
# ----------------------------------------------------------------------
# HostStats/PktGen summaries of deterministic scenarios, captured on the
# per-packet pipeline immediately before the burst refactor.
GOLDEN = {
    "fig7_64B": {"rx_packets": 28572, "tx_packets": 17690,
                 "dropped_ring_full": 10882, "sent": 28572,
                 "received": 17690, "latency_mean_us": 142.349838},
    "fig7_512B": {"rx_packets": 4663, "tx_packets": 4663,
                  "dropped_ring_full": 0, "sent": 4663, "received": 4663,
                  "latency_mean_us": 28.525039},
    "table2_3vm_seq": {"rx_packets": 245, "tx_packets": 245,
                       "sent": 245, "received": 245,
                       "latency_mean_us": 29.977645},
    "parallel_2vm": {"rx_packets": 3642, "tx_packets": 3642,
                     "parallel_groups": 3642, "sent": 3642,
                     "received": 3642, "latency_mean_us": 27.268258},
}

FLOW = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1234, 80)


def _summarise(host, gen):
    out = dict(host.stats.summary())
    out.update(sent=gen.sent, received=gen.received,
               latency_mean_us=round(gen.latency.mean_us(), 6))
    return out


def run_fig7_like(size: int, burst: int) -> dict:
    """2-VM sequential chain at an offered 10 Gbps (Fig. 7 workload)."""
    sim = Simulator()
    host = NfvHost(sim, name="h", burst_size=burst)
    services = ["noop0", "noop1"]
    for service in services:
        host.add_nf(NoOpNf(service), ring_slots=1024)
    install_chain(host, services)
    gen = PktGen(sim, host, window_ns=MS)
    gen.add_flow(FlowSpec(flow=FLOW, rate_mbps=10_000.0, packet_size=size,
                          stop_ns=2 * MS))
    sim.run(until=4 * MS)
    return _summarise(host, gen)


def run_table2_like(burst: int) -> dict:
    """3-VM sequential no-op chain at 100 Mbps (Table 2 workload)."""
    sim = Simulator()
    host = NfvHost(sim, name="h", burst_size=burst)
    services = ["noop0", "noop1", "noop2"]
    for service in services:
        host.add_nf(NoOpNf(service))
    install_chain(host, services)
    gen = PktGen(sim, host)
    gen.add_flow(FlowSpec(flow=FLOW, rate_mbps=100.0, packet_size=1000,
                          stop_ns=20 * MS))
    sim.run(until=40 * MS)
    return _summarise(host, gen)


def run_parallel_like(burst: int) -> dict:
    """2-VM parallel chain under Poisson arrivals."""
    sim = Simulator()
    host = NfvHost(sim, name="h", burst_size=burst)
    services = ["noop0", "noop1"]
    for service in services:
        host.add_nf(NoOpNf(service))
    install_chain(host, services)
    host.manager.register_parallel_chain(services)
    gen = PktGen(sim, host)
    gen.add_flow(FlowSpec(flow=FLOW, rate_mbps=400.0, packet_size=256,
                          stop_ns=20 * MS, pacing="poisson"))
    sim.run(until=40 * MS)
    return _summarise(host, gen)


@pytest.mark.skipif(not HAVE_NUMPY, reason="golden summaries pin the "
                    "numpy jitter stream; the stdlib fallback draws "
                    "different values")
class TestBurstOneParity:
    """burst_size=1 must reproduce the pre-refactor pipeline exactly."""

    def _check(self, name: str, summary: dict) -> None:
        for key, want in GOLDEN[name].items():
            assert summary[key] == want, f"{name}.{key}"

    def test_fig7_64B_overload(self):
        self._check("fig7_64B", run_fig7_like(64, burst=1))

    def test_fig7_512B_underload(self):
        self._check("fig7_512B", run_fig7_like(512, burst=1))

    def test_table2_sequential_chain(self):
        self._check("table2_3vm_seq", run_table2_like(burst=1))

    def test_parallel_chain_poisson(self):
        self._check("parallel_2vm", run_parallel_like(burst=1))


class TestBurst32:
    """Default-burst runs: same model outputs, conservation, batching on."""

    def test_fig7_conservation_and_batching(self):
        summary = run_fig7_like(64, burst=32)
        # Every received packet is transmitted or dropped — batching
        # never loses descriptors.
        assert summary["rx_packets"] == (summary["tx_packets"]
                                         + summary["dropped_ring_full"])
        assert summary["rx_packets"] == GOLDEN["fig7_64B"]["rx_packets"]
        # Batching actually engages under small-packet overload: far
        # fewer VM/TX wakeups than packets.
        assert 0 < summary["vm_batches"] < summary["rx_packets"] / 4
        assert 0 < summary["tx_batches"] < summary["tx_packets"] / 4

    def test_table2_latency_stays_in_calibration_band(self):
        summary = run_table2_like(burst=32)
        golden = GOLDEN["table2_3vm_seq"]
        assert summary["rx_packets"] == golden["rx_packets"]
        assert summary["tx_packets"] == golden["tx_packets"]
        # 100 Mbps of 1000 B packets never accumulates a backlog, so the
        # latency calibration is untouched by the burst knob.
        assert summary["latency_mean_us"] == pytest.approx(
            golden["latency_mean_us"], abs=0.5)


# ----------------------------------------------------------------------
# Crash mid-batch: only the in-flight head dies with the VM
# ----------------------------------------------------------------------
class TestMidBatchCrashSalvage:
    def test_crash_mid_batch_requeues_held_tail_to_survivor(self, sim,
                                                            flow):
        host = NfvHost(sim, name="h", burst_size=32)
        vm1 = host.add_nf(ComputeNf("svc", cost_ns=MS))
        host.add_nf(ComputeNf("svc", cost_ns=MS))
        install_chain(host, ["svc"])
        out = []
        host.port("eth1").on_egress = out.append
        for _ in range(40):
            host.inject("eth0", Packet(flow=flow, size=128, created_at=0))
        # Let both replicas dequeue a burst and start the batch timeout
        # (each holds ~20 packets x 1 ms of work).
        sim.run(until=2 * MS)
        assert vm1.inflight is not None
        held_tail = len(vm1._pending)
        assert held_tail > 0                   # genuinely mid-batch
        in_ring = vm1.rx_ring.occupancy
        salvage = host.manager.fail_vm(vm1)
        # The whole held batch minus the in-flight head is salvaged,
        # together with anything still queued in the ring.
        assert salvage == {"requeued": held_tail + in_ring,
                           "degraded": 0, "lost": 0}
        assert vm1.take_pending_batch() == []
        sim.run(until=200 * MS)
        # Exactly one packet (the in-flight head) died with the VM.
        assert host.stats.lost_in_nf == 1
        assert len(out) == 39
