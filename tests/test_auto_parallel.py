"""Profile-driven parallelism end to end: layout synthesis, the
conflict-checked registration path, the manager's merge stage, parity
with the legacy read-only fusion, and a verifier-clean acceptance run.

The acceptance chain from the issue: Firewall -> FlowMonitor ->
DscpMarker -> Sampler.  Declared-read-only fusion stops at
[firewall, monitor] (DscpMarker writes); the profile-driven layout also
proves [dscp, sampler] safe — disjoint write sets, disjoint annotation
keys, the SEND-capable member last — and must come out strictly wider.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.profiles import ActionProfile, profile_of
from repro.core import SdnfvApp, ServiceGraph
from repro.core.service_graph import EXIT
from repro.dataplane import NfvHost
from repro.dataplane.actions import Verdict
from repro.net import FiveTuple, Packet
from repro.nfs import (
    CounterNf,
    DscpMarker,
    Firewall,
    FlowMonitor,
    NetworkFunction,
    Sampler,
)
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain


class PayloadTagger(NetworkFunction):
    """Writes only the payload — disjoint from every header writer."""

    read_only = False

    def process(self, packet, ctx):
        packet.payload = b"tagged"
        packet.annotations["tagged"] = True
        return Verdict.default()


def mixed_chain_graph() -> ServiceGraph:
    """The acceptance chain, with a sampling side branch."""
    graph = ServiceGraph("mixed")
    graph.add_service("fw", read_only=True)
    graph.add_service("mon", read_only=True)
    graph.add_service("dscp")
    graph.add_service("samp", read_only=True)
    graph.add_service("sink", read_only=True)
    graph.add_edge("fw", "mon", default=True)
    graph.add_edge("mon", "dscp", default=True)
    graph.add_edge("dscp", "samp", default=True)
    graph.add_edge("samp", EXIT, default=True)
    graph.add_edge("samp", "sink")
    graph.add_edge("sink", EXIT, default=True)
    graph.set_entry("fw")
    return graph


def mixed_chain_profiles() -> dict[str, ActionProfile]:
    return {
        "fw": profile_of(Firewall),
        "mon": profile_of(FlowMonitor),
        "dscp": profile_of(DscpMarker),
        "samp": profile_of(Sampler),
        "sink": profile_of(CounterNf),
    }


class TestLayoutSynthesis:
    def test_auto_layout_is_strictly_wider_than_read_only_fusion(self):
        """The issue's acceptance criterion, verbatim."""
        graph = mixed_chain_graph()
        legacy = graph.parallel_chains()
        auto = graph.auto_parallel_layout(profiles=mixed_chain_profiles())
        assert legacy == [["fw", "mon"]]
        assert auto == [["fw", "mon"], ["dscp", "samp"], ["sink"]]
        legacy_grouped = {s for chain in legacy for s in chain}
        auto_grouped = {s for group in auto if len(group) > 1
                        for s in group}
        assert legacy_grouped < auto_grouped

    def test_dropper_never_groups_with_header_writer(self):
        profiles = mixed_chain_profiles()
        groups = mixed_chain_graph().auto_parallel_layout(profiles=profiles)
        for group in groups:
            if "fw" in group:
                assert "dscp" not in group

    def test_unknown_services_fall_back_to_declared_bit(self):
        """Services with no profile use the graph's read_only declaration:
        declared read-only joins groups, undeclared is opaque."""
        graph = mixed_chain_graph()
        auto = graph.auto_parallel_layout(profiles={})
        # fw/mon are declared read-only -> still fused; dscp (undeclared,
        # no profile) is opaque and blocks; samp is declared read-only but
        # has nothing groupable after it.
        assert ["fw", "mon"] in auto
        assert all("dscp" not in g or g == ["dscp"] for g in auto)

    def test_every_service_appears_exactly_once(self):
        auto = mixed_chain_graph().auto_parallel_layout(
            profiles=mixed_chain_profiles())
        flat = [s for group in auto for s in group]
        assert sorted(flat) == sorted(mixed_chain_graph().services)


class TestConflictCheckedRegistration:
    def _host(self, sim):
        host = NfvHost(sim, name="reg")
        return host

    def test_conflicting_writers_rejected(self, sim):
        host = self._host(sim)
        host.add_nf(DscpMarker("a", default_dscp=10))
        host.add_nf(DscpMarker("b", default_dscp=20))
        profiles = {"a": profile_of(DscpMarker),
                    "b": profile_of(DscpMarker)}
        with pytest.raises(ValueError, match="conflict"):
            host.manager.register_parallel_chain(["a", "b"],
                                                 profiles=profiles)

    def test_missing_profile_rejected(self, sim):
        host = self._host(sim)
        with pytest.raises(ValueError, match="no action profile"):
            host.manager.register_parallel_chain(
                ["a", "b"], profiles={"a": ActionProfile()})

    def test_writer_group_gets_merge_plan_readers_do_not(self, sim):
        host = self._host(sim)
        host.add_nf(CounterNf("r1"))
        host.add_nf(CounterNf("r2"))
        host.add_nf(PayloadTagger("tag"))
        host.add_nf(DscpMarker("dscp", default_dscp=10))
        readers = {"r1": profile_of(CounterNf), "r2": profile_of(CounterNf)}
        host.manager.register_parallel_chain(["r1", "r2"],
                                             profiles=readers)
        assert "r1" not in host.manager._chain_merge_plans
        writers = {"tag": profile_of(PayloadTagger),
                   "dscp": profile_of(DscpMarker)}
        host.manager.register_parallel_chain(["tag", "dscp"],
                                             profiles=writers)
        plan = host.manager._chain_merge_plans["tag"]
        assert plan["tag"] == (("payload",), ("tagged",))
        assert plan["dscp"] == (("dscp",), ("qos_priority",))

    def test_writers_allowed_only_via_profiles(self, sim):
        """The legacy path still demands declared read-only VMs."""
        host = self._host(sim)
        host.add_nf(PayloadTagger("tag"))
        host.add_nf(CounterNf("r1"))
        with pytest.raises(ValueError, match="read-only"):
            host.manager.register_parallel_chain(["tag", "r1"])


class TestMergeStage:
    def _run_group(self, sim, flow, nfs, profiles, count=3):
        host = NfvHost(sim, name="merge")
        for nf in nfs:
            host.add_nf(nf)
        services = [nf.service_id for nf in nfs]
        install_chain(host, services)
        host.manager.register_parallel_chain(services, profiles=profiles)
        out = []
        host.port("eth1").on_egress = out.append
        for _ in range(count):
            host.inject("eth0", Packet(flow=flow, size=128,
                                       created_at=sim.now))
        sim.run(until=sim.now + 50 * MS)
        return host, out

    def test_disjoint_writes_all_land_on_the_packet(self, sim, flow):
        host, out = self._run_group(
            sim, flow,
            [PayloadTagger("tag"), DscpMarker("dscp", default_dscp=46)],
            {"tag": profile_of(PayloadTagger),
             "dscp": profile_of(DscpMarker)})
        assert len(out) == 3
        for packet in out:
            assert packet.payload == b"tagged"       # member 0's write
            assert packet.ip.dscp == 46              # member 1's write
            assert packet.annotations["tagged"] is True
            assert packet.annotations["qos_priority"] is not None
        assert host.stats.parallel_groups == 3

    def test_declared_writer_that_does_not_write_changes_nothing(
            self, sim, flow):
        """A no-match DscpMarker journals nothing: the snapshot filter
        keeps non-writes from masking or clobbering anything."""
        _host, out = self._run_group(
            sim, flow,
            [PayloadTagger("tag"), DscpMarker("dscp")],  # no default_dscp
            {"tag": profile_of(PayloadTagger),
             "dscp": profile_of(DscpMarker)})
        for packet in out:
            assert packet.ip.dscp == 0               # untouched
            assert packet.payload == b"tagged"       # other member landed

    def test_merge_is_deterministic_across_runs(self, flow):
        def run_once():
            sim = Simulator()
            host = NfvHost(sim, name="det")
            host.add_nf(PayloadTagger("tag"))
            host.add_nf(DscpMarker("dscp", default_dscp=12))
            install_chain(host, ["tag", "dscp"])
            host.manager.register_parallel_chain(
                ["tag", "dscp"],
                profiles={"tag": profile_of(PayloadTagger),
                          "dscp": profile_of(DscpMarker)})
            out = []
            host.port("eth1").on_egress = lambda p: out.append(
                (sim.now, p.ip.dscp, p.payload,
                 tuple(sorted(p.annotations.items()))))
            for _ in range(5):
                host.inject("eth0", Packet(flow=flow, size=128,
                                           created_at=sim.now))
            sim.run(until=sim.now + 50 * MS)
            return out

        assert run_once() == run_once()

    def test_refcounts_balanced_after_writer_merge(self, sim, flow):
        _host, out = self._run_group(
            sim, flow,
            [PayloadTagger("tag"), DscpMarker("dscp", default_dscp=8)],
            {"tag": profile_of(PayloadTagger),
             "dscp": profile_of(DscpMarker)})
        assert all(p.ref_count == 0 for p in out)


class TestDeployAutoParallel:
    def _env(self, sim, verify=False):
        app = SdnfvApp(sim)  # no controller: rules install directly
        host = NfvHost(sim, name="h0", verify=verify)
        app.register_host(host)
        host.add_nf(Firewall("fw"))
        host.add_nf(FlowMonitor("mon"))
        host.add_nf(DscpMarker("dscp", default_dscp=34))
        host.add_nf(Sampler("samp", analysis_service="sink",
                            sample_rate=0.25))
        host.add_nf(CounterNf("sink"))
        return app, host

    def test_deploy_registers_the_wider_groups(self, sim):
        app, host = self._env(sim)
        app.deploy(mixed_chain_graph(), auto_parallel=True)
        chains = host.manager._parallel_chains
        assert chains.get("fw") == ["fw", "mon"]
        assert chains.get("dscp") == ["dscp", "samp"]
        assert "dscp" in host.manager._chain_merge_plans

    def test_default_deploy_keeps_legacy_fusion_only(self, sim):
        app, host = self._env(sim)
        app.deploy(mixed_chain_graph())
        chains = host.manager._parallel_chains
        assert chains.get("fw") == ["fw", "mon"]
        assert "dscp" not in chains
        assert host.manager._chain_merge_plans == {}

    def test_auto_parallel_with_routed_network_rejected(self, sim):
        app, _host = self._env(sim)
        with pytest.raises(ValueError, match="auto_parallel"):
            app.deploy(mixed_chain_graph(), auto_parallel=True,
                       network=object())

    def test_traffic_through_auto_parallel_deployment(self, sim, flow):
        app, host = self._env(sim)
        app.deploy(mixed_chain_graph(), auto_parallel=True)
        out = []
        host.port("eth1").on_egress = out.append
        for _ in range(8):
            host.inject("eth0", Packet(flow=flow, size=128,
                                       created_at=sim.now))
        sim.run(until=sim.now + 100 * MS)
        # Every packet exits eth1 with the DSCP mark applied (sampled
        # ones via the sink service, which defaults back out).
        assert len(out) == 8
        assert all(p.ip.dscp == 34 for p in out)
        sampler = host.manager.vms_by_service["samp"][0].nf
        diverted = host.stats.per_service_packets.get("sink", 0)
        assert diverted == sampler.sampled
        assert sampler.sampled + sampler.passed == 8


class TestParityWithLegacyFusion:
    """auto_parallel over pure readers must be bit-for-bit the legacy
    read-only fusion: same groups, same deliveries, same timestamps."""

    def _run(self, auto: bool):
        sim = Simulator()
        app = SdnfvApp(sim)
        host = NfvHost(sim, name="par")
        app.register_host(host)
        for name in ("fw", "mon", "tail"):
            host.add_nf(CounterNf(name))
        graph = ServiceGraph("readers")
        graph.add_service("fw", read_only=True)
        graph.add_service("mon", read_only=True)
        graph.add_service("tail", read_only=True)
        graph.add_edge("fw", "mon", default=True)
        graph.add_edge("mon", "tail", default=True)
        graph.add_edge("tail", EXIT, default=True)
        graph.set_entry("fw")
        app.deploy(graph, auto_parallel=auto)
        out = []
        host.port("eth1").on_egress = lambda p: out.append(
            (sim.now, p.created_at, p.flow, p.ip.dscp, p.ip.ttl,
             tuple(sorted(p.annotations.items()))))
        flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1234, 80)
        for _ in range(6):
            host.inject("eth0", Packet(flow=flow, size=128,
                                       created_at=sim.now))
        sim.run(until=sim.now + 100 * MS)
        return {"out": out, "chains": dict(host.manager._parallel_chains),
                "events": sim.events_scheduled,
                "summary": host.stats.summary()}

    def test_reader_groups_identical_to_legacy(self):
        legacy = self._run(auto=False)
        auto = self._run(auto=True)
        assert auto["chains"] == legacy["chains"]
        assert auto["out"] == legacy["out"]
        assert auto["events"] == legacy["events"]
        assert auto["summary"] == legacy["summary"]
        assert legacy["out"]  # traffic actually flowed


class TestVerifierCleanAcceptanceRun:
    def test_fig7_style_auto_parallel_run_is_clean(self):
        """Acceptance: a sustained Fig. 7-style workload through the
        auto-parallel mixed chain under ``verify=True`` ends with a clean
        ownership ledger and a balanced conservation audit."""
        sim = Simulator()
        app = SdnfvApp(sim)
        host = NfvHost(sim, name="accept", verify=True)
        app.register_host(host)
        host.add_nf(Firewall("fw"), ring_slots=256)
        host.add_nf(FlowMonitor("mon"), ring_slots=256)
        host.add_nf(DscpMarker("dscp", default_dscp=46), ring_slots=256)
        host.add_nf(Sampler("samp", analysis_service="sink",
                            sample_rate=0.1), ring_slots=256)
        host.add_nf(CounterNf("sink"), ring_slots=256)
        app.deploy(mixed_chain_graph(), auto_parallel=True)
        assert host.manager._parallel_chains.get("dscp") == ["dscp", "samp"]

        gen = PktGen(sim, host, window_ns=MS)
        flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1234, 80)
        gen.add_flow(FlowSpec(flow=flow, rate_mbps=2_000.0, packet_size=64,
                              stop_ns=2 * MS))
        sim.run(until=4 * MS)

        assert gen.received > 100
        report = host.verifier.assert_clean()
        audit = report.audit
        assert audit["balanced"]
        assert audit["inflight"] == 0
        assert audit["injected"] == audit["delivered"] + audit["dropped"]
