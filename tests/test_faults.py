"""Fault injection, detection, and recovery (repro.faults + hardening).

Covers the resilience subsystem end to end: deterministic fault plans,
the injector, VM crash/hang semantics, the NF Manager watchdog (drain /
requeue / quarantine / restore), control-plane timeout+retry+degrade,
and the app-tier ``enable_failover`` wiring.
"""

from __future__ import annotations

import warnings

import pytest

from repro.control import NfvOrchestrator, SdnController
from repro.core import SdnfvApp, ServiceGraph
from repro.core.service_graph import EXIT
from repro.dataplane import (
    ControlPlanePolicy,
    NfvHost,
    ToPort,
    ToService,
)
from repro.faults import (
    ControllerOutage,
    FaultInjector,
    FaultPlan,
    HostOverload,
    LinkFlap,
    NfCrash,
    NfHang,
    NfWatchdog,
)
from repro.metrics.eventlog import EventLog
from repro.net import Packet
from repro.nfs import ComputeNf, NoOpNf
from repro.sim import MS, US, Simulator

from tests.conftest import install_chain


def _packet(flow, now=0, size=128):
    return Packet(flow=flow, size=size, created_at=now)


def _count_egress(host, port="eth1"):
    out = []
    host.port(port).on_egress = out.append
    return out


# ----------------------------------------------------------------------
# FaultPlan: determinism and validation
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_fire_time_without_jitter_is_nominal(self):
        plan = FaultPlan(seed=7)
        plan.add(NfCrash(at_ns=5 * MS, service="dpi"))
        assert plan.fire_time_ns(0) == 5 * MS

    def test_fire_time_is_pure_and_seed_deterministic(self):
        def build(seed):
            plan = FaultPlan(seed=seed)
            plan.extend([
                NfCrash(at_ns=10 * MS, jitter_ns=2 * MS, service="a"),
                LinkFlap(at_ns=20 * MS, jitter_ns=5 * MS,
                         port="eth0", down_ns=MS),
            ])
            return plan

        plan = build(42)
        first = [plan.fire_time_ns(i) for i in range(len(plan))]
        # Re-querying never perturbs the draw (pure in (seed, index)).
        assert [plan.fire_time_ns(i) for i in range(len(plan))] == first
        assert [build(42).fire_time_ns(i) for i in range(2)] == first
        assert [build(43).fire_time_ns(i) for i in range(2)] != first

    def test_jitter_stays_within_half_width(self):
        plan = FaultPlan(seed=3)
        plan.add(ControllerOutage(at_ns=4 * MS, jitter_ns=1 * MS,
                                  down_ns=10 * MS))
        fire = plan.fire_time_ns(0)
        assert 3 * MS <= fire <= 5 * MS

    def test_validation(self):
        with pytest.raises(ValueError):
            NfCrash(at_ns=-1, service="x")
        with pytest.raises(ValueError):
            NfHang(at_ns=0, jitter_ns=-1, service="x")
        with pytest.raises(ValueError):
            LinkFlap(at_ns=0, port="eth0", down_ns=0)
        with pytest.raises(ValueError):
            ControllerOutage(at_ns=0, down_ns=0)
        with pytest.raises(ValueError):
            HostOverload(at_ns=0, duration_ns=MS, factor=1.0)
        with pytest.raises(TypeError):
            FaultPlan().add("not a fault")


# ----------------------------------------------------------------------
# VM failure semantics
# ----------------------------------------------------------------------
class TestVmFailure:
    def test_crash_releases_inflight_and_counts_loss(self, sim, host, flow):
        vm = host.add_nf(ComputeNf("svc", cost_ns=10 * MS))
        install_chain(host, ["svc"])
        host.inject("eth0", _packet(flow))
        sim.run(until=2 * MS)          # NF is mid-packet now
        assert vm.inflight is not None
        vm.crash()
        sim.run(until=3 * MS)          # interrupt delivered
        assert vm.failed and vm.crashed
        assert vm.inflight is None
        assert vm.packets_lost == 1
        assert host.stats.lost_in_nf == 1

    def test_crash_is_idempotent(self, sim, host):
        vm = host.add_nf(NoOpNf("svc"))
        vm.crash("first")
        sim.run(until=1 * MS)
        vm.crash("second")
        assert vm.failure_cause == "first"

    def test_idle_vm_is_never_stalled(self, sim, host):
        vm = host.add_nf(NoOpNf("svc"))
        sim.run(until=100 * MS)
        assert not vm.stalled(sim.now, 1 * MS)

    def test_hang_wedges_midpacket_and_stalls(self, sim, host, flow):
        vm = host.add_nf(NoOpNf("svc"))
        install_chain(host, ["svc"])
        vm.hang()
        host.inject("eth0", _packet(flow))
        sim.run(until=20 * MS)
        assert vm.inflight is not None          # holding the descriptor
        assert not vm.failed                    # alive, just wedged
        assert vm.stalled(sim.now, 10 * MS)
        assert not vm.stalled(sim.now, 100 * MS)

    def test_kill_while_blocked_on_empty_ring_keeps_ring_consistent(
            self, sim, host, flow):
        """The interrupt-during-ring-wait case: a VM killed while blocked
        on ``Store.get`` must not strand descriptors or corrupt ring
        accounting — packets that land in its ring afterwards are salvaged
        intact to the surviving replica."""
        vm1 = host.add_nf(NoOpNf("svc"))
        vm2 = host.add_nf(NoOpNf("svc"))
        install_chain(host, ["svc"])
        out = _count_egress(host)
        sim.run(until=1 * MS)                  # both blocked on get()
        vm1.crash()
        sim.run(until=2 * MS)                  # interrupt delivered mid-wait
        assert vm1.crashed
        # Traffic keeps arriving; least-queue balancing still sees vm1.
        for i in range(8):
            host.inject("eth0", _packet(flow, now=sim.now))
        sim.run(until=4 * MS)
        # Descriptors routed to the dead VM sit in its ring, unconsumed
        # (the dead getter must not have eaten one on its way down).
        stranded = vm1.rx_ring.occupancy
        assert stranded + vm2.packets_processed + vm2.rx_ring.occupancy == 8
        assert vm1.rx_ring.dropped == 0
        salvage = host.manager.fail_vm(vm1)
        assert salvage["requeued"] == stranded
        assert vm1.rx_ring.occupancy == 0      # nothing stranded
        sim.run(until=50 * MS)
        assert len(out) == 8                   # every packet delivered
        assert host.stats.requeued_packets == stranded
        assert host.stats.lost_in_nf == 0


# ----------------------------------------------------------------------
# Watchdog: detection, salvage, quarantine, restore
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_sweep_detects_crash_and_requeues_to_survivor(self, sim, host,
                                                          flow):
        vm1 = host.add_nf(ComputeNf("svc", cost_ns=5 * MS))
        host.add_nf(ComputeNf("svc", cost_ns=5 * MS))
        install_chain(host, ["svc"])
        out = _count_egress(host)
        watchdog = NfWatchdog(host.manager)
        for _ in range(6):
            host.inject("eth0", _packet(flow))
        sim.run(until=2 * MS)                  # rings loaded, both busy
        vm1.crash()
        sim.run(until=3 * MS)
        records = watchdog.sweep()
        assert [r.cause for r in records] == ["crash"]
        assert records[0].requeued >= 1
        assert vm1 not in host.manager.vms_by_service["svc"]
        sim.run(until=100 * MS)
        # One in-flight packet died with the VM; the rest were salvaged.
        assert len(out) == 6 - host.stats.lost_in_nf

    def test_sweep_detects_hang_and_kills_the_thread(self, sim, host, flow):
        vm = host.add_nf(NoOpNf("svc"))
        host.add_nf(NoOpNf("svc"))
        install_chain(host, ["svc"])
        watchdog = NfWatchdog(host.manager, heartbeat_timeout_ns=10 * MS)
        vm.hang()
        host.inject("eth0", _packet(flow))
        sim.run(until=20 * MS)
        records = watchdog.sweep()
        assert [r.cause for r in records] == ["hang"]
        sim.run(until=21 * MS)                 # kill interrupt delivered
        assert vm.failed and vm.failure_cause == "hang"
        assert host.stats.lost_in_nf == 1      # the wedged descriptor

    def test_quarantine_rewrites_defaults_and_restore_reinstates(
            self, sim, host, flow):
        vm = host.add_nf(NoOpNf("svc"))
        install_chain(host, ["svc"])
        out = _count_egress(host)
        watchdog = NfWatchdog(host.manager)
        vm.crash()
        sim.run(until=1 * MS)
        watchdog.sweep()
        # The ingress rule's default no longer leads to the dead service;
        # no rule outside the service's own scope does (nothing leaked).
        table = host.flow_table
        assert all(entry.default_action != ToService("svc")
                   for scope in table.scopes() if scope != "svc"
                   for entry in table.entries(scope))
        assert watchdog.degraded_services == {"svc"}
        host.inject("eth0", _packet(flow, now=sim.now))
        sim.run(until=10 * MS)
        assert len(out) == 1                   # degraded straight to eth1
        # Replacement arrives: displaced rules come back.
        host.add_nf(NoOpNf("svc"))
        recovery = watchdog.notify_replacement("svc")
        assert recovery is not None and recovery.mttr_ns >= 0
        assert watchdog.degraded_services == set()
        entry = table.lookup("eth0", flow, now_ns=sim.now)
        assert entry.default_action == ToService("svc")

    def test_fail_vm_degrades_queue_along_default_edge(self, sim, host,
                                                       flow):
        vm = host.add_nf(ComputeNf("svc", cost_ns=50 * MS))
        install_chain(host, ["svc"])
        out = _count_egress(host)
        for _ in range(5):
            host.inject("eth0", _packet(flow))
        sim.run(until=2 * MS)                  # 1 in flight, 4 queued
        salvage = host.manager.fail_vm(vm)
        assert salvage == {"requeued": 0, "degraded": 4, "lost": 0}
        assert host.stats.degraded_packets == 4
        sim.run(until=100 * MS)
        assert len(out) == 4                   # via svc's default edge
        assert host.stats.lost_in_nf == 1      # the in-flight one

    def test_periodic_loop_detects_without_manual_sweep(self, sim, host):
        vm = host.add_nf(NoOpNf("svc"))
        watchdog = NfWatchdog(host.manager, interval_ns=2 * MS).start()
        with pytest.raises(RuntimeError):
            watchdog.start()
        vm.crash()
        sim.run(until=10 * MS)
        assert [r.service for r in watchdog.failures] == ["svc"]

    def test_watchdog_validation(self, host):
        with pytest.raises(ValueError):
            NfWatchdog(host.manager, interval_ns=0)
        with pytest.raises(ValueError):
            NfWatchdog(host.manager, heartbeat_timeout_ns=0)


# ----------------------------------------------------------------------
# Control-plane hardening: timeout, backoff, retry budget, degrade
# ----------------------------------------------------------------------
class TestControlPlanePolicy:
    def test_backoff_is_capped_exponential(self):
        policy = ControlPlanePolicy(backoff_base_ns=10 * MS,
                                    backoff_cap_ns=35 * MS)
        assert [policy.backoff_ns(a) for a in range(4)] == [
            10 * MS, 20 * MS, 35 * MS, 35 * MS]

    def test_validation(self):
        with pytest.raises(ValueError):
            ControlPlanePolicy(timeout_ns=0)
        with pytest.raises(ValueError):
            ControlPlanePolicy(max_attempts=0)
        with pytest.raises(ValueError):
            ControlPlanePolicy(backoff_base_ns=-1)

    def _outage_env(self, sim, miss_fallback):
        controller = SdnController(sim, service_time_ns=100 * US,
                                   propagation_ns=100 * US)
        app = SdnfvApp(sim, controller=controller)
        host = NfvHost(
            sim, name="h0", controller=controller,
            control_policy=ControlPlanePolicy(
                timeout_ns=2 * MS, max_attempts=3,
                backoff_base_ns=1 * MS, backoff_cap_ns=2 * MS),
            miss_fallback=miss_fallback)
        app.register_host(host)
        return controller, host

    def test_unreachable_controller_degrades_to_fallback(self, sim, flow):
        controller, host = self._outage_env(sim, ToPort("eth1"))
        out = _count_egress(host)
        controller.outage(200 * MS)
        host.inject("eth0", _packet(flow))
        # Budget: 3 bounded attempts + backoffs ~ 9 ms, not 200 ms.
        sim.run(until=50 * MS)
        assert host.stats.sdn_timeouts == 3
        assert host.stats.sdn_retries == 2
        assert host.stats.degraded_packets == 1
        assert host.stats.dropped_no_rule == 0
        assert len(out) == 1                   # forwarded, not blackholed

    def test_unreachable_controller_drops_without_fallback(self, sim, flow):
        controller, host = self._outage_env(sim, None)
        controller.outage(200 * MS)
        host.inject("eth0", _packet(flow))
        sim.run(until=50 * MS)
        assert host.stats.dropped_no_rule == 1
        assert host.stats.degraded_packets == 0

    def test_retry_succeeds_once_controller_returns(self, sim, flow):
        controller = SdnController(sim, service_time_ns=100 * US,
                                   propagation_ns=100 * US)
        app = SdnfvApp(sim, controller=controller)
        host = NfvHost(
            sim, name="h0", controller=controller,
            control_policy=ControlPlanePolicy(
                timeout_ns=5 * MS, max_attempts=4,
                backoff_base_ns=1 * MS, backoff_cap_ns=1 * MS))
        app.register_host(host)
        host.add_nf(NoOpNf("svc"))
        graph = ServiceGraph("g")
        graph.add_service("svc")
        graph.add_edge("svc", EXIT, default=True)
        graph.set_entry("svc")
        app.deploy(graph, proactive=False)
        out = _count_egress(host)
        controller.outage(8 * MS)              # shorter than the budget
        host.inject("eth0", _packet(flow))
        sim.run(until=100 * MS)
        assert host.stats.sdn_timeouts >= 1    # first attempt timed out
        assert len(host.flow_table) >= 2       # rules landed on retry
        assert len(out) == 1                   # served through the NF
        assert host.stats.dropped_no_rule == 0

    def test_outage_counted_and_recovers(self, sim):
        controller = SdnController(sim)
        controller.outage(5 * MS)
        assert controller.down and controller.stats.outages == 1
        sim.run(until=10 * MS)
        assert not controller.down
        with pytest.raises(ValueError):
            controller.outage(0)


# ----------------------------------------------------------------------
# Injector: arming plans against a running system
# ----------------------------------------------------------------------
class TestInjector:
    def test_crash_fires_on_schedule(self, sim, host):
        vm = host.add_nf(NoOpNf("dpi"))
        plan = FaultPlan(seed=1)
        plan.add(NfCrash(at_ns=5 * MS, service="dpi"))
        injector = FaultInjector(sim, plan, hosts=[host])
        timetable = injector.arm()
        assert timetable == [(5 * MS, plan.faults[0])]
        with pytest.raises(RuntimeError):
            injector.arm()
        sim.run(until=4 * MS)
        assert not vm.failed
        sim.run(until=6 * MS)
        assert vm.failed and vm.failure_cause == "injected_crash"
        assert len(injector.fired) == 1

    def test_unresolvable_faults_are_skipped_not_fatal(self, sim, host):
        plan = FaultPlan()
        plan.extend([
            NfCrash(at_ns=1 * MS, service="ghost"),
            LinkFlap(at_ns=1 * MS, port="eth9", down_ns=MS),
            ControllerOutage(at_ns=1 * MS, down_ns=MS),
            NfCrash(at_ns=1 * MS, service="dpi", host="elsewhere"),
        ])
        injector = FaultInjector(sim, plan, hosts=[host])
        injector.arm()
        sim.run(until=2 * MS)
        reasons = sorted(reason for _, _, reason in injector.skipped)
        assert reasons == ["no controller", "no live replica",
                           "no such host", "no such port"]
        assert injector.fired == []

    def test_link_flap_drops_then_recovers(self, sim, host, flow):
        host.add_nf(NoOpNf("svc"))
        install_chain(host, ["svc"])
        out = _count_egress(host)
        plan = FaultPlan()
        plan.add(LinkFlap(at_ns=2 * MS, port="eth0", down_ns=5 * MS))
        FaultInjector(sim, plan, hosts=[host]).arm()

        def offered():
            while sim.now < 12 * MS:
                host.inject("eth0", _packet(flow, now=sim.now))
                yield sim.timeout(1 * MS)

        sim.process(offered())
        sim.run(until=50 * MS)
        port = host.port("eth0")
        assert port.link_dropped == 5          # t = 2..6 ms inclusive
        assert port.link_up
        assert len(out) == 12 - port.link_dropped

    def test_host_overload_scales_costs_and_restores(self, sim, host):
        baseline = host.costs.vm_service_ns
        plan = FaultPlan()
        plan.add(HostOverload(at_ns=1 * MS, duration_ns=4 * MS, factor=3.0))
        FaultInjector(sim, plan, hosts=[host]).arm()
        sim.run(until=2 * MS)
        assert host.costs.vm_service_ns == 3 * baseline
        sim.run(until=10 * MS)
        assert host.costs.vm_service_ns == baseline

    def test_outage_via_plan_reaches_controller(self, sim, host):
        controller = SdnController(sim)
        plan = FaultPlan()
        plan.add(ControllerOutage(at_ns=1 * MS, down_ns=3 * MS))
        FaultInjector(sim, plan, hosts=[host],
                      controller=controller).arm()
        sim.run(until=2 * MS)
        assert controller.down
        sim.run(until=10 * MS)
        assert not controller.down and controller.stats.outages == 1

    def test_app_supplies_hosts_and_controller(self, sim, host):
        controller = SdnController(sim)
        app = SdnfvApp(sim, controller=controller)
        app.register_host(host)
        injector = FaultInjector(sim, FaultPlan(), app=app)
        assert injector.hosts == {host.name: host}
        assert injector.controller is controller


# ----------------------------------------------------------------------
# App tier: enable_failover, kwarg unification, the api facade
# ----------------------------------------------------------------------
class TestAppFailover:
    def test_crash_is_detected_replaced_and_rules_restored(self, sim, flow):
        controller = SdnController(sim, service_time_ns=100 * US,
                                   propagation_ns=100 * US)
        orchestrator = NfvOrchestrator(sim)
        app = SdnfvApp(sim, controller=controller,
                       orchestrator=orchestrator)
        host = NfvHost(sim, name="h0", controller=controller)
        app.register_host(host)
        log = EventLog(sim)
        app.attach_event_log(log)
        host.add_nf(NoOpNf("dpi"))
        install_chain(host, ["dpi"])
        out = _count_egress(host)
        watchdog = app.enable_failover(
            host, {"dpi": lambda: NoOpNf("dpi")},
            interval_ns=1 * MS, heartbeat_timeout_ns=5 * MS,
            mode="standby_process")
        plan = FaultPlan(seed=9)
        plan.add(NfCrash(at_ns=50 * MS, service="dpi"))
        FaultInjector(sim, plan, hosts=[host]).arm()

        sent = 0

        def offered():
            nonlocal sent
            while sim.now < 550 * MS:
                host.inject("eth0", _packet(flow, now=sim.now))
                sent += 1
                yield sim.timeout(500_000)

        sim.process(offered())
        sim.run(until=600 * MS)

        assert [r.cause for r in watchdog.failures] == ["crash"]
        assert len(watchdog.recoveries) == 1
        recovery = watchdog.recoveries[0]
        # Bounded: standby launch (250 ms) + a couple of sweep periods.
        launch_ns = orchestrator.launch_time_ns("standby_process")
        assert recovery.mttr_ns <= launch_ns + 2 * MS
        # Exactly one live replica serving again, defaults restored.
        replicas = host.manager.vms_by_service["dpi"]
        assert len(replicas) == 1 and not replicas[0].failed
        entry = host.flow_table.lookup("eth0", flow, now_ns=sim.now)
        assert entry.default_action == ToService("dpi")
        assert watchdog.degraded_services == set()
        # Packet conservation: everything offered was either delivered
        # (through the NF or the degraded default edge) or counted lost.
        lost = (host.stats.lost_in_nf + host.stats.dropped_no_vm
                + host.stats.dropped_no_rule)
        assert len(out) == sent - lost
        assert recovery.lost_packets == lost
        categories = [event.category for event in log.events]
        for expected in ("fault_injected", "nf_failure",
                         "service_quarantined", "vm_launch",
                         "service_restored", "nf_recovered"):
            assert expected in categories

    def test_failover_scenario_is_deterministic(self, flow):
        def run():
            sim = Simulator()
            controller = SdnController(sim, service_time_ns=100 * US,
                                       propagation_ns=100 * US)
            orchestrator = NfvOrchestrator(sim)
            app = SdnfvApp(sim, controller=controller,
                           orchestrator=orchestrator)
            host = NfvHost(sim, name="h0", controller=controller)
            app.register_host(host)
            log = EventLog(sim)
            app.attach_event_log(log)
            host.add_nf(NoOpNf("dpi"))
            install_chain(host, ["dpi"])
            out = _count_egress(host)
            watchdog = app.enable_failover(
                host, {"dpi": lambda: NoOpNf("dpi")},
                interval_ns=1 * MS, heartbeat_timeout_ns=5 * MS)
            plan = FaultPlan(seed=11)
            plan.add(NfCrash(at_ns=20 * MS, jitter_ns=2 * MS,
                             service="dpi"))
            FaultInjector(sim, plan, hosts=[host]).arm()

            def offered():
                while sim.now < 300 * MS:
                    host.inject("eth0", _packet(flow, now=sim.now))
                    yield sim.timeout(1 * MS)

            sim.process(offered())
            sim.run(until=350 * MS)
            return (len(out), host.stats.summary(),
                    [r.mttr_ns for r in watchdog.recoveries],
                    [(e.timestamp_ns, e.category) for e in log.events])

        assert run() == run()

    def test_launch_mode_alias_is_deprecated(self, sim):
        orchestrator = NfvOrchestrator(sim)
        app = SdnfvApp(sim, orchestrator=orchestrator)
        host = NfvHost(sim, name="h0")
        app.register_host(host)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            app.launch_nf(host, lambda: NoOpNf("svc"),
                          launch_mode="restore")
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        sim.run(until=1_000 * MS)
        assert orchestrator.launches[0].mode == "restore"
        with pytest.raises(TypeError):
            app.launch_nf(host, lambda: NoOpNf("svc"),
                          mode="restore", launch_mode="restore")

    def test_api_facade_exports_resolve(self):
        import repro.api as api

        missing = [name for name in api.__all__
                   if not hasattr(api, name)]
        assert missing == []
        assert api.NfvHost is NfvHost
        assert api.FaultPlan is FaultPlan
        assert api.ControlPlanePolicy is ControlPlanePolicy
