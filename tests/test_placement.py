"""Placement engine tests: problem model, greedy, MILP, division."""

import pytest

from repro.core.placement import (
    DivisionSolver,
    FlowRequest,
    GreedySolver,
    MilpSolver,
    PlacementProblem,
)
from repro.core.placement.milp import InfeasiblePlacement, ResidualState
from repro.core.placement.model import compute_utilizations
from repro.topology import Link, NodeSpec, Topology, rocketfuel_like


def grid_topology(capacity_gbps=1.0, cores=2):
    """a-b-c-d line plus an a-c shortcut."""
    topology = Topology()
    for name in "abcd":
        topology.add_node(NodeSpec(name=name, cores=cores))
    for a, b in [("a", "b"), ("b", "c"), ("c", "d"), ("a", "c")]:
        topology.add_link(Link(a=a, b=b, capacity_gbps=capacity_gbps))
    return topology


def flows(count, chain=("j1", "j2"), bandwidth=0.1, entry="a", exit_="d"):
    return [FlowRequest(flow_id=f"f{i}", entry=entry, exit=exit_,
                        chain=tuple(chain), bandwidth_gbps=bandwidth)
            for i in range(count)]


def problem(count=4, per_core=None, **kw):
    return PlacementProblem(
        topology=grid_topology(**{k: v for k, v in kw.items()
                                  if k in ("capacity_gbps", "cores")}),
        flows=flows(count, **{k: v for k, v in kw.items()
                              if k in ("chain", "bandwidth")}),
        flows_per_core=per_core or {"j1": 2, "j2": 2})


class TestModel:
    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            FlowRequest(flow_id="f", entry="a", exit="b", chain=())

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ValueError):
            PlacementProblem(topology=grid_topology(),
                             flows=[FlowRequest(flow_id="f", entry="zzz",
                                                exit="a", chain=("j1",))],
                             flows_per_core={"j1": 2})

    def test_missing_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlacementProblem(topology=grid_topology(),
                             flows=flows(1, chain=("mystery",)),
                             flows_per_core={"j1": 2})

    def test_duplicate_flow_ids_rejected(self):
        bad = flows(1) + flows(1)
        with pytest.raises(ValueError):
            PlacementProblem(topology=grid_topology(), flows=bad,
                             flows_per_core={"j1": 2, "j2": 2})

    def test_compute_utilizations(self):
        prob = problem(count=2)
        instances = {("a", "j1"): 1, ("a", "j2"): 1}
        assignments = {"f0": ["a", "a"], "f1": ["a", "a"]}
        routes = {"f0": [["a"], ["a"], ["a", "c", "d"]],
                  "f1": [["a"], ["a"], ["a", "c", "d"]]}
        max_link, max_core, per_link, per_core = compute_utilizations(
            prob, instances, assignments, routes)
        assert max_core == 1.0  # 2 flows / (1 instance * 2 per core)
        assert max_link == pytest.approx(0.2)  # 2 * 0.1 Gbps over 1 Gbps
        assert per_link[frozenset(("a", "c"))] == pytest.approx(0.2)

    def test_utilization_infinite_without_instances(self):
        prob = problem(count=1)
        _ml, max_core, _pl, _pc = compute_utilizations(
            prob, {}, {"f0": ["a", "a"]}, {})
        assert max_core == float("inf")


class TestGreedy:
    def test_places_all_when_capacity_ample(self):
        result = GreedySolver().solve(problem(count=4))
        assert result.placed_count == 4
        assert not result.rejected_flows
        assert result.max_core_utilization <= 1.0 + 1e-9

    def test_rejects_when_cores_exhausted(self):
        # 4 nodes x 2 cores = 8 cores; each core serves 1 flow for its
        # service; chain of 2 services -> at most 4 flows fit.
        result = GreedySolver().solve(
            problem(count=6, per_core={"j1": 1, "j2": 1}))
        assert result.placed_count == 4
        assert len(result.rejected_flows) == 2

    def test_respects_chain_order_along_path(self):
        result = GreedySolver().solve(problem(count=1))
        nodes = result.assignments["f0"]
        segments = result.routes["f0"]
        assert segments[0][0] == "a" and segments[-1][-1] == "d"
        # Each segment starts where the previous ended.
        for first, second in zip(segments, segments[1:]):
            assert first[-1] == second[0]
        assert nodes == [segment[-1] for segment in segments[:-1]]

    def test_link_capacity_enforced(self):
        # Flows of 0.6 Gbps on 1 Gbps links: only one fits per link.
        prob = PlacementProblem(
            topology=grid_topology(capacity_gbps=1.0),
            flows=flows(4, bandwidth=0.6),
            flows_per_core={"j1": 10, "j2": 10})
        result = GreedySolver().solve(prob)
        assert result.max_link_utilization <= 1.0 + 1e-9
        assert result.rejected_flows

    def test_rollback_returns_cores(self):
        """A rejected flow must not leak instances."""
        prob = problem(count=6, per_core={"j1": 1, "j2": 1})
        result = GreedySolver().solve(prob)
        used_cores = sum(result.instances.values())
        assert used_cores <= prob.topology.total_cores()
        # All instances serve at least one placed flow.
        loads = {}
        for flow_id in result.placed_flows:
            flow = next(f for f in prob.flows if f.flow_id == flow_id)
            for service, node in zip(flow.chain,
                                     result.assignments[flow_id]):
                loads[(node, service)] = loads.get((node, service), 0) + 1
        for key, count in result.instances.items():
            assert loads.get(key, 0) > 0


class TestMilp:
    def test_optimal_beats_greedy_utilization(self):
        prob = problem(count=4)
        greedy = GreedySolver().solve(prob)
        optimal = MilpSolver(time_limit_s=30).solve(prob)
        assert optimal.placed_count == 4
        assert (optimal.max_utilization
                <= greedy.max_utilization + 1e-6)

    def test_infeasible_raises(self):
        prob = problem(count=20, per_core={"j1": 1, "j2": 1})
        with pytest.raises(InfeasiblePlacement):
            MilpSolver(time_limit_s=30).solve(prob)

    def test_routes_are_connected_paths(self):
        prob = problem(count=3)
        result = MilpSolver(time_limit_s=30).solve(prob)
        topo = prob.topology
        for flow_id, segments in result.routes.items():
            assert segments[0][0] == "a"
            assert segments[-1][-1] == "d"
            for path in segments:
                for a, b in zip(path, path[1:]):
                    assert topo.has_link(a, b)

    def test_assignments_respect_instance_capacity(self):
        prob = problem(count=4, per_core={"j1": 2, "j2": 2})
        result = MilpSolver(time_limit_s=30).solve(prob)
        loads = {}
        for flow_id, nodes in result.assignments.items():
            for service, node in zip(("j1", "j2"), nodes):
                loads[(node, service)] = loads.get((node, service), 0) + 1
        for key, load in loads.items():
            capacity = result.instances.get(key, 0) * 2
            assert load <= capacity

    def test_cores_per_node_respected(self):
        prob = problem(count=4)
        result = MilpSolver(time_limit_s=30).solve(prob)
        per_node = {}
        for (node, _service), count in result.instances.items():
            per_node[node] = per_node.get(node, 0) + count
        for node, used in per_node.items():
            assert used <= prob.topology.node(node).cores

    def test_delay_constraint_limits_path(self):
        topology = grid_topology()
        tight = FlowRequest(flow_id="tight", entry="a", exit="c",
                            chain=("j1",), bandwidth_gbps=0.1,
                            max_delay_ns=120_000)  # allows ≤ 2 hops
        prob = PlacementProblem(topology=topology, flows=[tight],
                                flows_per_core={"j1": 10})
        result = MilpSolver(time_limit_s=30).solve(prob)
        total_hops = sum(len(path) - 1
                         for path in result.routes["tight"])
        assert total_hops <= 2

    def test_residual_capacity_limits_new_instances(self):
        # 2 flows x chain(j1,j2) at 1 flow/core need 4 instances, but the
        # residual leaves only 3 cores in the whole network.
        prob = problem(count=2, per_core={"j1": 1, "j2": 1})
        residual = ResidualState.fresh(prob)
        residual.residual_cores = {name: 0 for name
                                   in prob.topology.node_names}
        residual.residual_cores["a"] = 2
        residual.residual_cores["b"] = 1
        with pytest.raises(InfeasiblePlacement):
            MilpSolver(time_limit_s=30).solve(prob, residual=residual)

    def test_residual_existing_slots_reused(self):
        """Existing instances with spare slots satisfy demand without
        opening new cores."""
        prob = problem(count=2, per_core={"j1": 2, "j2": 2})
        residual = ResidualState.fresh(prob)
        residual.residual_cores = {name: 0 for name
                                   in prob.topology.node_names}
        residual.existing_instances = {("b", "j1"): 1, ("c", "j2"): 1}
        residual.existing_slots = {("b", "j1"): 2, ("c", "j2"): 2}
        result = MilpSolver(time_limit_s=30).solve(prob,
                                                   residual=residual)
        assert result.placed_count == 2
        assert not result.instances  # nothing newly opened
        assert all(nodes == ["b", "c"] for nodes
                   in result.assignments.values())


class TestDivision:
    def test_matches_flow_count_of_optimal_on_small_problem(self):
        prob = problem(count=4)
        division = DivisionSolver(batch_size=2).solve(prob)
        assert division.placed_count == 4
        assert not division.rejected_flows

    def test_batches_share_capacity_consistently(self):
        prob = problem(count=6, per_core={"j1": 1, "j2": 1})
        division = DivisionSolver(batch_size=2).solve(prob)
        # Cores: 8 total; flows need 2 each -> exactly 4 placeable.
        assert division.placed_count == 4
        assert len(division.rejected_flows) == 2
        used = sum(division.instances.values())
        assert used <= prob.topology.total_cores()

    def test_oversized_single_flow_rejected_not_fatal(self):
        topology = grid_topology()
        mixed = flows(2) + [FlowRequest(
            flow_id="impossible", entry="a", exit="d",
            chain=("j1",) * 9,  # needs 9 instances; only 8 cores
            bandwidth_gbps=0.1)]
        prob = PlacementProblem(topology=topology, flows=mixed,
                                flows_per_core={"j1": 1, "j2": 1})
        division = DivisionSolver(batch_size=3).solve(prob)
        assert "impossible" in division.rejected_flows
        assert division.placed_count == 2

    def test_division_near_optimal_utilization(self):
        """§3.5: the division heuristic fits ~85% of the optimal; on this
        small instance it should be close in utilization too."""
        prob = problem(count=6)
        optimal = MilpSolver(time_limit_s=30).solve(prob)
        division = DivisionSolver(batch_size=3).solve(prob)
        assert division.placed_count == 6
        assert (division.max_utilization
                <= optimal.max_utilization * 2.0 + 1e-6)

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            DivisionSolver(batch_size=0)


class TestPaperScaleSmoke:
    def test_rocketfuel_with_paper_parameters_division(self):
        """22 nodes, 64 edges, chains J1–J5, 2 cores, P=10/10/10/10/4."""
        topology = rocketfuel_like()
        names = topology.node_names
        per_core = {f"J{i}": 10 for i in range(1, 5)}
        per_core["J5"] = 4
        requests = [FlowRequest(
            flow_id=f"f{i}", entry=names[i % len(names)],
            exit=names[(i * 7 + 3) % len(names)],
            chain=("J1", "J2", "J3", "J4", "J5"),
            bandwidth_gbps=0.05) for i in range(5)]
        prob = PlacementProblem(topology=topology, flows=requests,
                                flows_per_core=per_core)
        result = DivisionSolver(batch_size=5, time_limit_per_batch_s=15,
                                mip_rel_gap=0.25).solve(prob)
        assert result.placed_count == 5
        assert result.max_utilization > 0
