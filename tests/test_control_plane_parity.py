"""Golden parity: ``ControlPlane(shards=1)`` IS the legacy controller.

The distributed control plane must be a pure superset: with one shard
and no proactive pre-population, a full reactive run — misses, controller
round trips, rule pulls, deliveries — is *byte-identical* to the same
run against a plain :class:`SdnController`: packet-for-packet delivery
order, every latency sample, every stats counter, the control-event
timeline, and the kernel's event odometers.

A second suite pins the hybrid pipeline's endpoints: a full proactive
cover drives the reactive slow path to zero, and the two controller
front-ends install identical proactive rule sets.
"""

from repro.control import ControlPlane, SdnController
from repro.core import EXIT, SdnfvApp, ServiceGraph
from repro.metrics import EventLog
from repro.net import FiveTuple
from repro.nfs import NoOpNf
from repro.sim import MS, US, Simulator
from repro.topology import Link, NodeSpec, Topology, build_network
from repro.workloads import FlowSpec, PktGen

DURATION = 120 * MS

FLOWS = (
    FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 80),
    FiveTuple("10.0.0.3", "10.0.0.4", 17, 2, 53),
    FiveTuple("10.0.0.5", "10.0.0.6", 6, 3, 443),
)


def two_host_topology() -> Topology:
    topology = Topology()
    topology.add_node(NodeSpec(name="h0", cores=4))
    topology.add_node(NodeSpec(name="h1", cores=4))
    topology.add_link(Link(a="h0", b="h1", delay_ns=500 * US))
    return topology


def chain_graph() -> ServiceGraph:
    graph = ServiceGraph("parity")
    graph.add_service("a", read_only=True)
    graph.add_service("b", read_only=True)
    graph.add_edge("a", "b", default=True)
    graph.add_edge("b", EXIT, default=True)
    graph.set_entry("a")
    return graph


def run_network(controller_factory, proactive: bool) -> dict:
    """One deterministic two-host run; returns everything observable."""
    sim = Simulator()
    network = build_network(sim, two_host_topology())
    controller = controller_factory(sim)
    event_log = EventLog(sim)
    app = SdnfvApp(sim, controller=controller)
    for host in network.hosts.values():
        app.register_host(host)
        host.manager.controller = controller
        host.manager.event_log = event_log
    app.attach_event_log(event_log)
    placement = {"a": "h0", "b": "h1"}
    for service, host_name in placement.items():
        network.hosts[host_name].add_nf(NoOpNf(service), ring_slots=256)
    app.deploy(chain_graph(), placement=placement, network=network,
               proactive=proactive)

    gen = PktGen(sim, network.hosts["h0"], measure_ports=())
    deliveries: list[tuple] = []
    exit_port = network.hosts["h1"].port("eth1")
    measured = exit_port.on_egress

    def recording_hook(packet):
        flow = packet.flow
        deliveries.append((sim.now, packet.created_at,
                           (flow.src_ip, flow.dst_ip, flow.protocol,
                            flow.src_port, flow.dst_port)))
        if measured is not None:
            measured(packet)

    exit_port.on_egress = recording_hook
    for index, flow in enumerate(FLOWS):
        gen.add_flow(FlowSpec(flow=flow, rate_mbps=200.0, packet_size=256,
                              start_ns=index * MS, stop_ns=80 * MS))
    sim.run(until=DURATION)
    return {
        "deliveries": deliveries,
        "latency_samples": list(gen.latency.samples_ns),
        "summaries": {name: host.stats.summary()
                      for name, host in network.hosts.items()},
        "events": list(event_log.events),
        "events_scheduled": sim.events_scheduled,
        "timers_scheduled": sim.timers_scheduled,
        "events_cancelled": sim.events_cancelled,
        "sent": gen.sent,
        "frames_carried": network.fabric.frames_carried,
    }


class TestReactiveGoldenParity:
    """shards=1, proactive=False — byte-identical to the legacy path."""

    def test_single_shard_plane_matches_plain_controller(self):
        legacy = run_network(SdnController, proactive=False)
        plane = run_network(lambda sim: ControlPlane(sim, shards=1),
                            proactive=False)
        assert plane["deliveries"] == legacy["deliveries"]
        assert plane["latency_samples"] == legacy["latency_samples"]
        assert plane["summaries"] == legacy["summaries"]
        assert plane["events"] == legacy["events"]
        assert plane["events_scheduled"] == legacy["events_scheduled"]
        assert plane["timers_scheduled"] == legacy["timers_scheduled"]
        assert plane["events_cancelled"] == legacy["events_cancelled"]
        assert plane["frames_carried"] == legacy["frames_carried"]
        # Sanity: this really was the reactive slow path end to end.
        assert legacy["deliveries"]
        assert legacy["summaries"]["h0"]["sdn_requests"] == len(FLOWS)
        assert legacy["summaries"]["h0"]["reactive_misses"] == len(FLOWS)

    def test_reactive_run_classifies_every_flow_as_miss(self):
        legacy = run_network(SdnController, proactive=False)
        h0 = legacy["summaries"]["h0"]
        assert h0["proactive_hits"] == 0
        assert h0["reactive_misses"] == len(FLOWS)


class TestProactiveParity:
    """Full pre-population: the slow path never fires, under either
    controller front-end, with identical rule covers."""

    def test_proactive_cover_eliminates_misses(self):
        result = run_network(lambda sim: ControlPlane(sim, shards=1),
                             proactive=True)
        for name in ("h0", "h1"):
            summary = result["summaries"][name]
            assert summary["sdn_requests"] == 0
            assert summary["reactive_misses"] == 0
        assert result["summaries"]["h0"]["proactive_hits"] == len(FLOWS)
        assert result["deliveries"]

    def test_proactive_runs_identical_across_front_ends(self):
        legacy = run_network(SdnController, proactive=True)
        plane = run_network(lambda sim: ControlPlane(sim, shards=1),
                            proactive=True)
        assert plane["deliveries"] == legacy["deliveries"]
        assert plane["latency_samples"] == legacy["latency_samples"]
        assert plane["summaries"] == legacy["summaries"]
        assert plane["events"] == legacy["events"]
        assert plane["events_scheduled"] == legacy["events_scheduled"]

    def test_proactive_beats_reactive_first_packet_latency(self):
        reactive = run_network(SdnController, proactive=False)
        proactive = run_network(SdnController, proactive=True)
        # Same flows delivered, but the reactive run's first packets ate
        # a 31 ms controller round trip the proactive run never paid.
        def latencies(result):
            return [now - created for now, created, _flow
                    in result["deliveries"]]
        assert max(latencies(proactive)) < 31 * MS
        assert max(latencies(reactive)) > 31 * MS
