"""Fault isolation: a buggy northbound app must not take down the
controller or the data plane; miss resolution preserves packet order;
the plan cache stays bounded."""


from repro.control import SdnController
from repro.dataplane import FlowTableEntry, NfvHost, ToPort
from repro.dataplane import manager as manager_module
from repro.net import FiveTuple, FlowMatch, Packet
from repro.net.headers import PROTO_TCP
from repro.sim import MS


class FlakyApp:
    """Raises on flows to port 666; answers everything else."""

    def rules_for(self, host, scope, flow):
        if flow.dst_port == 666:
            raise RuntimeError("app bug")
        return [FlowTableEntry(scope=scope, match=FlowMatch.exact(flow),
                               actions=(ToPort("eth1"),))]


class TestControllerFaultIsolation:
    def test_app_exception_fails_only_that_request(self, sim):
        controller = SdnController(sim, northbound=FlakyApp(),
                                   service_time_ns=100_000,
                                   propagation_ns=100_000)
        good_flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, 1, 80)
        bad_flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, 2, 666)
        bad_reply = controller.flow_request("h0", "eth0", bad_flow)
        good_reply = controller.flow_request("h0", "eth0", good_flow)
        bad_reply.defuse()
        sim.run()
        assert not bad_reply.ok
        assert good_reply.ok and len(good_reply.value) == 1
        assert controller.stats.failures == 1
        # The controller survived and can serve further requests.
        another = controller.flow_request("h0", "eth0", good_flow)
        sim.run(another)
        assert another.value

    def test_dataplane_survives_controller_failure(self, sim):
        controller = SdnController(sim, northbound=FlakyApp())
        host = NfvHost(sim, name="h0", controller=controller)
        out = []
        host.port("eth1").on_egress = out.append
        bad_flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, 2, 666)
        good_flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, 1, 80)
        host.inject("eth0", Packet(flow=bad_flow, size=128))
        host.inject("eth0", Packet(flow=good_flow, size=128))
        sim.run(until=100 * MS)
        # The failing flow is dropped with a count; the good one flows.
        assert len(out) == 1 and out[0].flow == good_flow
        assert host.stats.dropped_no_rule == 1


class TestMissResolutionOrdering:
    def test_buffered_packets_released_in_arrival_order(self, sim, flow):
        class SlowApp:
            def rules_for(self, host, scope, missed_flow):
                return [FlowTableEntry(
                    scope=scope, match=FlowMatch.exact(missed_flow),
                    actions=(ToPort("eth1"),))]

        controller = SdnController(sim, northbound=SlowApp())
        host = NfvHost(sim, name="h0", controller=controller)
        out = []
        host.port("eth1").on_egress = out.append
        packets = [Packet(flow=flow, size=128, payload=f"n{i}")
                   for i in range(10)]
        for packet in packets:
            host.inject("eth0", packet)
        sim.run(until=100 * MS)
        assert [p.payload for p in out] == [f"n{i}" for i in range(10)]


class TestPlanCacheBound:
    def test_plan_cache_evicts_at_limit(self, sim, monkeypatch):
        monkeypatch.setattr(manager_module, "_PLAN_CACHE_LIMIT", 8)
        host = NfvHost(sim, name="h0", lookup_cache=True)
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToPort("eth1"),)))
        for i in range(50):
            flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP,
                             1000 + i, 80)
            host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=50 * MS)
        assert len(host.manager._plans) <= 8
        assert host.stats.tx_packets == 50
