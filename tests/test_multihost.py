"""Multi-host service chains over the Fabric (Fig. 3's deployment) and
the placement → deployment bridge."""

import pytest

from repro.core import EXIT, SdnfvApp, ServiceGraph
from repro.core.placement import (
    DivisionSolver,
    FlowRequest,
    PlacementProblem,
)
from repro.dataplane import NfvHost
from repro.net import FiveTuple, FlowMatch, Packet
from repro.nfs import CounterNf, NoOpNf
from repro.sim import MS
from repro.topology import Fabric
from repro.topology import Link, NodeSpec, Topology


def two_host_graph():
    graph = ServiceGraph("split")
    graph.add_service("a", read_only=True)
    graph.add_service("b", read_only=True)
    graph.add_service("c", read_only=True)
    graph.add_edge("a", "b", default=True)
    graph.add_edge("b", "c", default=True)
    graph.add_edge("c", EXIT, default=True)
    graph.set_entry("a")
    return graph


@pytest.fixture
def two_hosts(sim):
    app = SdnfvApp(sim)
    host1 = NfvHost(sim, name="host1", ports=("eth0", "eth1", "trunk"))
    host2 = NfvHost(sim, name="host2", ports=("eth0", "eth1", "trunk"))
    app.register_host(host1)
    app.register_host(host2)
    fabric = Fabric(sim)
    fabric.add_host(host1)
    fabric.add_host(host2)
    fabric.connect("host1", "trunk", "host2", "eth0")
    return app, host1, host2, fabric


class TestFabric:
    def test_duplicate_host_rejected(self, sim, host):
        fabric = Fabric(sim)
        fabric.add_host(host)
        with pytest.raises(ValueError):
            fabric.add_host(host)

    def test_unknown_host_rejected(self, sim, host):
        fabric = Fabric(sim)
        fabric.add_host(host)
        with pytest.raises(KeyError):
            fabric.connect("host0", "eth1", "ghost", "eth0")

    def test_double_wiring_a_port_rejected(self, sim):
        fabric = Fabric(sim)
        a = NfvHost(sim, name="a")
        b = NfvHost(sim, name="b")
        c = NfvHost(sim, name="c")
        for host in (a, b, c):
            fabric.add_host(host)
        fabric.connect("a", "eth1", "b", "eth0", bidirectional=False)
        with pytest.raises(ValueError):
            fabric.connect("a", "eth1", "c", "eth0", bidirectional=False)

    def test_wire_carries_frames_with_delay(self, sim, flow):
        fabric = Fabric(sim)
        a = NfvHost(sim, name="a")
        b = NfvHost(sim, name="b")
        fabric.add_host(a)
        fabric.add_host(b)
        fabric.connect("a", "eth1", "b", "eth0", delay_ns=100_000,
                       bidirectional=False)
        from repro.dataplane import FlowTableEntry, ToPort
        a.install_rule(FlowTableEntry(scope="eth0", match=FlowMatch.any(),
                                      actions=(ToPort("eth1"),)))
        b.install_rule(FlowTableEntry(scope="eth0", match=FlowMatch.any(),
                                      actions=(ToPort("eth1"),)))
        out = []
        b.port("eth1").on_egress = lambda p: out.append(sim.now)
        a.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=5 * MS)
        assert len(out) == 1
        assert out[0] > 100_000  # wire delay applied
        assert fabric.frames_carried == 1


class TestMultiHostDeployment:
    def test_chain_split_across_hosts(self, sim, two_hosts, flow):
        app, host1, host2, fabric = two_hosts
        host1.add_nf(CounterNf("a"))
        host1.add_nf(CounterNf("b"))
        c_nf = CounterNf("c")
        host2.add_nf(c_nf)
        graph = two_host_graph()
        placement = {"a": "host1", "b": "host1", "c": "host2"}
        ports = {("host1", "host2"): "trunk",
                 ("host2", "host1"): "trunk"}
        # Compile each host's share.  host2's ingress for this graph is
        # the port where the trunk lands (eth0).
        host1.install_rules(graph.compile_rules(
            ingress_port="eth0", exit_port="eth1", placement=placement,
            host="host1", inter_host_ports=ports))
        host2.install_rules(graph.compile_rules(
            ingress_port="eth0", exit_port="eth1", placement=placement,
            host="host2", inter_host_ports=ports))
        out = []
        host2.port("eth1").on_egress = out.append
        for _ in range(5):
            host1.inject("eth0", Packet(flow=flow, size=256))
        sim.run(until=20 * MS)
        assert len(out) == 5
        assert host1.stats.per_service_packets["a"] == 5
        assert host1.stats.per_service_packets["b"] == 5
        assert c_nf.packets_seen == 5
        assert fabric.frames_carried == 5

    def test_app_deploy_with_placement(self, sim, two_hosts, flow):
        app, host1, host2, _fabric = two_hosts
        host1.add_nf(NoOpNf("a"))
        host1.add_nf(NoOpNf("b"))
        host2.add_nf(NoOpNf("c"))
        graph = two_host_graph()
        app.deploy(graph, ingress_port="eth0", exit_port="eth1",
                   placement={"a": "host1", "b": "host1", "c": "host2"},
                   inter_host_ports={("host1", "host2"): "trunk",
                                     ("host2", "host1"): "trunk"})
        out = []
        host2.port("eth1").on_egress = out.append
        for _ in range(3):
            host1.inject("eth0", Packet(flow=flow, size=256))
        sim.run(until=20 * MS)
        assert len(out) == 3


class TestPlacementBridge:
    def _problem(self):
        topology = Topology()
        for name in ("host1", "host2"):
            topology.add_node(NodeSpec(name=name, cores=2))
        topology.add_link(Link(a="host1", b="host2"))
        flow = FlowRequest(flow_id="f0", entry="host1", exit="host2",
                           chain=("a", "b", "c"), bandwidth_gbps=0.1)
        return PlacementProblem(topology=topology, flows=[flow],
                                flows_per_core={"a": 4, "b": 4, "c": 4})

    def test_placement_for_yields_service_map(self):
        problem = self._problem()
        result = DivisionSolver(batch_size=1,
                                time_limit_per_batch_s=10).solve(problem)
        mapping = result.placement_for(problem.flows[0])
        assert set(mapping) == {"a", "b", "c"}
        assert set(mapping.values()) <= {"host1", "host2"}

    def test_placement_for_unplaced_flow_raises(self):
        problem = self._problem()
        result = DivisionSolver(batch_size=1,
                                time_limit_per_batch_s=10).solve(problem)
        ghost = FlowRequest(flow_id="ghost", entry="host1", exit="host2",
                            chain=("a",))
        with pytest.raises(KeyError):
            result.placement_for(ghost)

    def test_placed_flow_runs_on_fabric(self, sim):
        """Placement engine output drives a real multi-host deployment."""
        problem = self._problem()
        result = DivisionSolver(batch_size=1,
                                time_limit_per_batch_s=10).solve(problem)
        mapping = result.placement_for(problem.flows[0])

        app = SdnfvApp(sim)
        hosts = {}
        for name in ("host1", "host2"):
            hosts[name] = NfvHost(sim, name=name,
                                  ports=("eth0", "eth1", "trunk"))
            app.register_host(hosts[name])
        fabric = Fabric(sim)
        for host in hosts.values():
            fabric.add_host(host)
        fabric.connect("host1", "trunk", "host2", "eth0")
        fabric.connect("host2", "trunk", "host1", "eth0",
                       bidirectional=False)
        for service, node in mapping.items():
            hosts[node].add_nf(NoOpNf(service))

        graph = two_host_graph()
        app.deploy(graph, ingress_port="eth0", exit_port="eth1",
                   placement=mapping,
                   inter_host_ports={("host1", "host2"): "trunk",
                                     ("host2", "host1"): "trunk"})
        exit_host = hosts[mapping["c"]]
        out = []
        exit_host.port("eth1").on_egress = out.append
        entry_host = hosts[mapping["a"]]
        flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 80)
        entry_host.inject("eth0", Packet(flow=flow, size=256))
        sim.run(until=20 * MS)
        assert len(out) == 1


class TestTelemetryAndFailure:
    def test_periodic_telemetry_snapshots(self, sim, flow):
        app = SdnfvApp(sim)
        host = NfvHost(sim, name="t0")
        app.register_host(host)
        host.add_nf(NoOpNf("svc"))
        seen = []
        app.start_telemetry(interval_ns=10 * MS,
                            callback=lambda snap: seen.append(snap))
        sim.run(until=55 * MS)
        assert len(app.telemetry) == 5
        assert seen[0].hosts["t0"].services == ["svc"]

    def test_telemetry_interval_validation(self, sim):
        app = SdnfvApp(sim)
        with pytest.raises(ValueError):
            app.start_telemetry(interval_ns=0)

    def test_vm_failure_shifts_traffic_to_replica(self, sim, flow):
        from repro.control import NfvOrchestrator
        from tests.conftest import install_chain
        orchestrator = NfvOrchestrator(sim)
        host = NfvHost(sim, name="f0")
        orchestrator.register_host(host)
        vm_a = host.add_nf(NoOpNf("svc"))
        vm_b = host.add_nf(NoOpNf("svc"))
        install_chain(host, ["svc"])
        out = []
        host.port("eth1").on_egress = out.append

        def traffic():
            for _ in range(40):
                host.inject("eth0", Packet(flow=flow, size=128))
                yield sim.timeout(100_000)

        sim.process(traffic())
        at_failure = {}
        sim.schedule(2 * MS, lambda: (
            at_failure.setdefault("a", vm_a.packets_processed),
            orchestrator.stop_vm(host, vm_a)))
        sim.run(until=20 * MS)
        assert len(out) == 40  # no interruption for the flow
        # The failed VM received nothing after removal; the survivor
        # carried the rest.
        assert vm_a.packets_processed == at_failure["a"]
        assert (vm_a.packets_processed + vm_b.packets_processed) == 40
        assert vm_b.packets_processed >= 20

    def test_last_vm_failure_drops_with_count(self, sim, flow):
        from repro.control import NfvOrchestrator
        from tests.conftest import install_chain
        orchestrator = NfvOrchestrator(sim)
        host = NfvHost(sim, name="f1")
        orchestrator.register_host(host)
        only_vm = host.add_nf(NoOpNf("svc"))
        install_chain(host, ["svc"])
        orchestrator.stop_vm(host, only_vm)
        host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=5 * MS)
        assert host.stats.dropped_no_vm == 1
