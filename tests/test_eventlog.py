"""Control-plane event log: recording, filtering, and system wiring."""

import pytest

from repro.control import NfvOrchestrator
from repro.core import EXIT, SdnfvApp, ServiceGraph
from repro.dataplane import NfvHost, UserMessage
from repro.metrics import EventLog
from repro.net import FlowMatch, Packet
from repro.nfs import NoOpNf
from repro.sim import MS, S



class TestEventLogBasics:
    def test_records_are_timestamped_and_ordered(self, sim):
        log = EventLog(sim)
        log.record("a", host="h0", x=1)
        sim.timeout(100)
        sim.run()
        log.record("b", host="h1", y=2)
        assert len(log) == 2
        assert log.events[0].timestamp_ns == 0
        assert log.events[1].timestamp_ns == 100
        assert log.events[0].get("x") == 1
        assert log.events[1].get("missing", "dflt") == "dflt"

    def test_filtering(self, sim):
        log = EventLog(sim)
        log.record("rule_install", host="h0")
        log.record("rule_install", host="h1")
        log.record("vm_launch", host="h0")
        assert len(log.filter(category="rule_install")) == 2
        assert len(log.filter(host="h0")) == 2
        assert len(log.filter(category="vm_launch", host="h1")) == 0
        assert log.categories() == {"rule_install": 2, "vm_launch": 1}

    def test_capacity_bound(self, sim):
        log = EventLog(sim, capacity=3)
        for i in range(5):
            log.record("x", n=i)
        assert len(log) == 3
        assert log.dropped == 2

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            EventLog(sim, capacity=0)

    def test_format_renders_lines(self, sim):
        log = EventLog(sim)
        log.record("deploy", host="h0", graph="video")
        text = log.format()
        assert "deploy" in text and "graph=video" in text


class TestSystemWiring:
    def test_full_timeline_recorded(self, sim, flow):
        orchestrator = NfvOrchestrator(sim)
        app = SdnfvApp(sim, orchestrator=orchestrator)
        log = EventLog(sim)
        app.attach_event_log(log)
        host = NfvHost(sim, name="h0")
        app.register_host(host)
        host.add_nf(NoOpNf("svc"))

        graph = ServiceGraph("logged")
        graph.add_service("svc", read_only=True)
        graph.add_edge("svc", EXIT, default=True)
        graph.set_entry("svc")
        app.deploy(graph)

        host.manager.submit_nf_message(UserMessage(
            sender_service="svc", key="ping", value=1))
        app.launch_nf(host, lambda: NoOpNf("extra"),
                      mode="standby_process")
        sim.run(until=1 * S)

        categories = log.categories()
        assert categories["vm_register"] == 2  # svc + extra
        assert categories["deploy"] == 1
        assert categories["rule_install"] == 2  # eth0 + svc scopes
        assert categories["vm_launch"] == 1
        assert categories["nf_message_up"] == 1
        launch = log.filter(category="vm_launch")[0]
        assert launch.get("mode") == "standby_process"

    def test_rejected_messages_logged(self, sim, flow):
        app = SdnfvApp(sim, trust_nfs=False)
        log = EventLog(sim)
        app.attach_event_log(log)
        host = NfvHost(sim, name="h0")
        app.register_host(host)
        host.add_nf(NoOpNf("svc"))
        graph = ServiceGraph("g")
        graph.add_service("svc", read_only=True)
        graph.add_edge("svc", EXIT, default=True)
        graph.set_entry("svc")
        app.deploy(graph)
        from repro.dataplane import ChangeDefault
        host.manager.submit_nf_message(ChangeDefault(
            sender_service="svc", flows=FlowMatch.any(),
            service="svc", target="nonexistent"))
        sim.run(until=10 * MS)
        assert len(log.filter(category="message_rejected")) == 1

    def test_sdn_request_logged(self, sim, flow):
        from repro.control import SdnController
        controller = SdnController(sim)
        app = SdnfvApp(sim, controller=controller)
        log = EventLog(sim)
        app.attach_event_log(log)
        host = NfvHost(sim, name="h0", controller=controller)
        app.register_host(host)
        host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=50 * MS)
        assert len(log.filter(category="sdn_request")) == 1
