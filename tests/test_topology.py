"""Topology substrate tests: nodes, links, paths, Rocketfuel generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.units import US
from repro.topology import Link, NodeKind, NodeSpec, Topology, rocketfuel_like


def line_topology(n=4, capacity=10.0):
    topology = Topology()
    names = [f"n{i}" for i in range(n)]
    for name in names:
        topology.add_node(NodeSpec(name=name, cores=2))
    for a, b in zip(names, names[1:]):
        topology.add_link(Link(a=a, b=b, capacity_gbps=capacity,
                               delay_ns=100 * US))
    return topology, names


class TestNodeSpec:
    def test_negative_cores_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(name="x", cores=-1)

    def test_pure_switch_has_no_cores(self):
        with pytest.raises(ValueError):
            NodeSpec(name="s", kind=NodeKind.SWITCH, cores=2)
        NodeSpec(name="s", kind=NodeKind.SWITCH, cores=0)  # fine


class TestLink:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Link(a="x", b="x")

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Link(a="x", b="y", capacity_gbps=0)

    def test_endpoints_unordered(self):
        assert Link(a="x", b="y").endpoints == frozenset(("y", "x"))


class TestTopology:
    def test_duplicate_node_rejected(self):
        topology = Topology()
        topology.add_node(NodeSpec(name="a"))
        with pytest.raises(ValueError):
            topology.add_node(NodeSpec(name="a"))

    def test_link_requires_known_nodes(self):
        topology = Topology()
        topology.add_node(NodeSpec(name="a"))
        with pytest.raises(KeyError):
            topology.add_link(Link(a="a", b="ghost"))

    def test_duplicate_link_rejected(self):
        topology, names = line_topology(3)
        with pytest.raises(ValueError):
            topology.add_link(Link(a=names[1], b=names[0]))

    def test_link_lookup_symmetric(self):
        topology, names = line_topology(3)
        assert topology.link(names[0], names[1]) is topology.link(
            names[1], names[0])
        with pytest.raises(KeyError):
            topology.link(names[0], names[2])

    def test_shortest_path_and_delay(self):
        topology, names = line_topology(4)
        path = topology.shortest_path(names[0], names[3])
        assert path == names
        assert topology.path_delay_ns(path) == 3 * 100 * US

    def test_neighbors(self):
        topology, names = line_topology(3)
        assert set(topology.neighbors(names[1])) == {names[0], names[2]}

    def test_connectivity(self):
        topology, _names = line_topology(3)
        assert topology.is_connected()
        lonely = Topology()
        lonely.add_node(NodeSpec(name="a"))
        lonely.add_node(NodeSpec(name="b"))
        assert not lonely.is_connected()

    def test_total_cores(self):
        topology, _names = line_topology(5)
        assert topology.total_cores() == 10

    def test_path_links(self):
        topology, names = line_topology(3)
        links = topology.path_links(names)
        assert len(links) == 2


class TestRocketfuel:
    def test_default_matches_as16631(self):
        topology = rocketfuel_like()
        assert len(topology.node_names) == 22
        assert len(topology.links) == 64
        assert topology.is_connected()
        assert all(topology.node(name).cores == 2
                   for name in topology.node_names)

    def test_deterministic_for_seed(self):
        a = rocketfuel_like(seed=5)
        b = rocketfuel_like(seed=5)
        assert ({link.endpoints for link in a.links}
                == {link.endpoints for link in b.links})

    def test_different_seeds_differ(self):
        a = rocketfuel_like(seed=1)
        b = rocketfuel_like(seed=2)
        assert ({link.endpoints for link in a.links}
                != {link.endpoints for link in b.links})

    @given(nodes=st.integers(min_value=2, max_value=12),
           extra=st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_always_connected_with_exact_counts(self, nodes, extra):
        max_edges = nodes * (nodes - 1) // 2
        edges = min(max_edges, nodes - 1 + extra)
        topology = rocketfuel_like(nodes=nodes, edges=edges, seed=nodes)
        assert len(topology.node_names) == nodes
        assert len(topology.links) == edges
        assert topology.is_connected()

    def test_impossible_edge_counts_rejected(self):
        with pytest.raises(ValueError):
            rocketfuel_like(nodes=5, edges=3)   # below n-1
        with pytest.raises(ValueError):
            rocketfuel_like(nodes=5, edges=11)  # above n(n-1)/2
