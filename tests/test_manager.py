"""Integration tests for the NF Manager: RX→VM→TX pipelines, parallel
processing, the flow-controller miss path, and cross-layer messages."""

import pytest

from repro.dataplane import (
    ChangeDefault,
    Drop,
    FlowTableEntry,
    NfvHost,
    RequestMe,
    SkipMe,
    ToPort,
    ToService,
    UserMessage,
    Verdict,
)
from repro.dataplane.load_balancer import LoadBalancePolicy
from repro.net import FiveTuple, FlowMatch, Packet
from repro.net.headers import PROTO_TCP
from repro.nfs import ComputeNf, CounterNf, NoOpNf
from repro.nfs.base import NetworkFunction
from repro.sim import MS, S, Simulator

from tests.conftest import install_chain


class SendingNf(NetworkFunction):
    """Test NF returning a fixed verdict."""

    read_only = True

    def __init__(self, service_id, verdict):
        super().__init__(service_id)
        self.verdict = verdict

    def process(self, packet, ctx):
        return self.verdict


class MutatingNf(NetworkFunction):
    read_only = False

    def process(self, packet, ctx):
        return Verdict.default()


def run_packets(sim, host, flow, count=3, size=128, port="eth0"):
    out = []
    host.port("eth1").on_egress = lambda p: out.append(p)
    for _ in range(count):
        host.inject(port, Packet(flow=flow, size=size,
                                 created_at=sim.now))
    sim.run(until=sim.now + 50 * MS)
    return out


class TestSequentialChains:
    def test_single_nf_chain(self, sim, host, flow):
        host.add_nf(NoOpNf("noop"))
        install_chain(host, ["noop"])
        out = run_packets(sim, host, flow)
        assert len(out) == 3
        assert host.stats.tx_packets == 3

    def test_three_nf_chain_preserves_order(self, sim, host, flow):
        for name in ("a", "b", "c"):
            host.add_nf(CounterNf(name))
        install_chain(host, ["a", "b", "c"])
        out = run_packets(sim, host, flow, count=5)
        assert [p.packet_id for p in out] == sorted(
            p.packet_id for p in out)
        for name in ("a", "b", "c"):
            assert host.stats.per_service_packets[name] == 5

    def test_no_rule_goes_to_flow_controller_and_drops(self, sim, host,
                                                       flow):
        # No controller attached: misses are dropped with a count.
        out = run_packets(sim, host, flow)
        assert not out
        assert host.stats.dropped_no_rule == 3
        # Without a controller each miss resolves (to a drop) immediately,
        # so every packet registers as its own request; the buffered
        # one-request-per-flow behaviour is exercised in the controller
        # integration tests.
        assert host.stats.sdn_requests == 3

    def test_no_vm_for_service_drops(self, sim, host, flow):
        install_chain(host, ["ghost"])
        out = run_packets(sim, host, flow)
        assert not out
        assert host.stats.dropped_no_vm == 3

    def test_unknown_egress_port_drops(self, sim, host, flow):
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToPort("eth9"),)))
        out = run_packets(sim, host, flow)
        assert not out
        assert host.stats.dropped_no_rule == 3


class TestNfVerdicts:
    def test_discard_verdict_drops(self, sim, host, flow):
        host.add_nf(SendingNf("fw", Verdict.discard()))
        install_chain(host, ["fw"])
        out = run_packets(sim, host, flow)
        assert not out
        assert host.stats.dropped_by_nf == 3

    def test_send_to_allowed_alternative(self, sim, host, flow):
        host.add_nf(SendingNf("sampler", Verdict.send_to_service("ids")))
        host.add_nf(NoOpNf("ids"))
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToService("sampler"),)))
        # Default for sampler is the exit; ids is the non-default edge.
        host.install_rule(FlowTableEntry(
            scope="sampler", match=FlowMatch.any(),
            actions=(ToPort("eth1"), ToService("ids"))))
        host.install_rule(FlowTableEntry(
            scope="ids", match=FlowMatch.any(),
            actions=(ToPort("eth1"),)))
        out = run_packets(sim, host, flow)
        assert len(out) == 3
        assert host.stats.per_service_packets["ids"] == 3

    def test_send_to_disallowed_destination_falls_back(self, sim, host,
                                                       flow):
        host.add_nf(SendingNf("rogue",
                              Verdict.send_to_service("forbidden")))
        host.add_nf(NoOpNf("forbidden"))
        install_chain(host, ["rogue"])
        out = run_packets(sim, host, flow)
        assert len(out) == 3  # fell back to the default action
        assert host.stats.policy_violations == 3
        assert host.stats.per_service_packets.get("forbidden", 0) == 0

    def test_send_to_port_verdict(self, sim, host, flow):
        host.add_nf(SendingNf("shortcut", Verdict.send_to_port("eth1")))
        host.add_nf(NoOpNf("next"))
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToService("shortcut"),)))
        host.install_rule(FlowTableEntry(
            scope="shortcut", match=FlowMatch.any(),
            actions=(ToService("next"), ToPort("eth1"))))
        out = run_packets(sim, host, flow)
        assert len(out) == 3
        assert host.stats.per_service_packets.get("next", 0) == 0


class TestParallelProcessing:
    def _parallel_host(self, sim, read_only=True):
        host = NfvHost(sim, name="p0")
        host.add_nf(CounterNf("ddos") if read_only else MutatingNf("ddos"))
        host.add_nf(CounterNf("ids"))
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToService("ddos"), ToService("ids")), parallel=True))
        host.install_rule(FlowTableEntry(
            scope="ids", match=FlowMatch.any(),
            actions=(ToPort("eth1"),)))
        return host

    def test_parallel_rule_fans_out_and_merges(self, sim, flow):
        host = self._parallel_host(sim)
        out = run_packets(sim, host, flow, count=4)
        assert len(out) == 4
        assert host.stats.parallel_groups == 4
        assert host.stats.per_service_packets["ddos"] == 4
        assert host.stats.per_service_packets["ids"] == 4
        # Every packet buffer fully released exactly once.
        assert all(p.ref_count == 0 for p in out)

    def test_parallel_install_rejects_non_read_only(self, sim):
        host = NfvHost(sim, name="p1")
        host.add_nf(MutatingNf("ddos"))
        host.add_nf(CounterNf("ids"))
        with pytest.raises(ValueError, match="read-only"):
            host.install_rule(FlowTableEntry(
                scope="eth0", match=FlowMatch.any(),
                actions=(ToService("ddos"), ToService("ids")),
                parallel=True))

    def test_registering_non_read_only_into_parallel_rule_rejected(
            self, sim):
        host = NfvHost(sim, name="p2")
        host.add_nf(CounterNf("ids"))
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToService("ddos"), ToService("ids")),
            parallel=True))
        with pytest.raises(ValueError, match="read-only"):
            host.add_nf(MutatingNf("ddos"))

    def test_parallel_discard_wins(self, sim, flow):
        host = NfvHost(sim, name="p3")
        host.add_nf(SendingNf("fw", Verdict.discard()))
        host.add_nf(CounterNf("ids"))
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToService("fw"), ToService("ids")), parallel=True))
        host.install_rule(FlowTableEntry(
            scope="ids", match=FlowMatch.any(), actions=(ToPort("eth1"),)))
        out = run_packets(sim, host, flow)
        assert not out
        assert host.stats.dropped_by_nf == 3

    def test_parallel_chain_registration(self, sim, flow):
        """Chain fusion: routing to the first service fans out to all."""
        host = NfvHost(sim, name="p4")
        host.add_nf(CounterNf("ddos"))
        host.add_nf(CounterNf("ids"))
        install_chain(host, ["ddos", "ids"])
        host.manager.register_parallel_chain(["ddos", "ids"])
        out = run_packets(sim, host, flow, count=2)
        assert len(out) == 2
        assert host.stats.parallel_groups == 2

    def test_parallel_latency_below_sequential(self, sim, flow):
        """Fig. 6's point: parallel < sequential for compute-heavy NFs."""
        import statistics

        def build(parallel):
            host = NfvHost(sim, name=f"lat{parallel}")
            host.add_nf(ComputeNf("c1", cost_ns=30_000))
            host.add_nf(ComputeNf("c2", cost_ns=30_000))
            install_chain(host, ["c1", "c2"])
            if parallel:
                host.manager.register_parallel_chain(["c1", "c2"])
            return host

        results = {}
        for mode in (False, True):
            host = build(mode)
            done = []
            host.port("eth1").on_egress = (
                lambda p, d=done: d.append(sim.now - p.created_at))
            for _ in range(10):
                host.inject("eth0", Packet(flow=flow, size=128,
                                           created_at=sim.now))
            sim.run(until=sim.now + 100 * MS)
            results[mode] = statistics.mean(done)
        assert results[True] < results[False] - 20_000


class TestLoadBalancing:
    def _replicated_host(self, sim, policy):
        host = NfvHost(sim, name="lb0", load_balance=policy)
        self.vms = [host.add_nf(CounterNf("svc")) for _ in range(3)]
        install_chain(host, ["svc"])
        return host

    def test_round_robin_spreads_evenly(self, sim, flow):
        host = self._replicated_host(sim, LoadBalancePolicy.ROUND_ROBIN)
        run_packets(sim, host, flow, count=9)
        counts = [vm.packets_processed for vm in self.vms]
        assert counts == [3, 3, 3]

    def test_flow_hash_keeps_flow_on_one_replica(self, sim, flow):
        host = self._replicated_host(sim, LoadBalancePolicy.FLOW_HASH)
        run_packets(sim, host, flow, count=9)
        counts = sorted(vm.packets_processed for vm in self.vms)
        assert counts == [0, 0, 9]

    def test_least_queue_avoids_busy_replica(self, sim):
        """Sustained multi-flow load spreads away from a slow replica.

        Arrivals are paced (not a single same-instant flood, which a
        burst-mode dispatcher splits evenly before either replica can
        drain) so the slow replica's queue visibly builds up.
        """
        host = NfvHost(sim, name="lb1",
                       load_balance=LoadBalancePolicy.LEAST_QUEUE)
        slow = host.add_nf(ComputeNf("svc", cost_ns=50_000))
        fast = host.add_nf(NoOpNf("svc"))
        install_chain(host, ["svc"])
        out = []
        host.port("eth1").on_egress = out.append

        def offered():
            for i in range(40):
                flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP,
                                 1000 + i, 80)
                host.inject("eth0", Packet(flow=flow, size=128,
                                           created_at=sim.now))
                yield sim.timeout(10_000)

        sim.process(offered())
        sim.run(until=5 * S)
        assert fast.packets_processed > slow.packets_processed

    def test_ring_overflow_drops_and_counts(self, sim, flow):
        host = NfvHost(sim, name="lb2")
        host.add_nf(ComputeNf("svc", cost_ns=1_000_000), ring_slots=4)
        install_chain(host, ["svc"])
        run_packets(sim, host, flow, count=50)
        assert host.stats.dropped_ring_full > 0
        total = (host.stats.tx_packets + host.stats.dropped_ring_full
                 + host.manager.vms_by_service["svc"][0].rx_ring.occupancy)
        # Conservation: every received packet is either out, dropped, or
        # still queued (none processed after the run window).
        assert total <= host.stats.rx_packets


class TestLookupCache:
    def test_cache_reduces_lookups(self, sim, flow):
        cached = NfvHost(sim, name="c1", lookup_cache=True)
        cached.add_nf(NoOpNf("a"))
        cached.add_nf(NoOpNf("b"))
        install_chain(cached, ["a", "b"])
        run_packets(sim, cached, flow, count=20)
        cached_lookups = cached.flow_table.lookups

        sim2 = Simulator()
        # burst_size=1: the strict per-packet pipeline, where disabling
        # the descriptor cache really does cost one lookup per hop.
        uncached = NfvHost(sim2, name="c2", lookup_cache=False,
                           burst_size=1)
        uncached.add_nf(NoOpNf("a"))
        uncached.add_nf(NoOpNf("b"))
        install_chain(uncached, ["a", "b"])
        out = []
        uncached.port("eth1").on_egress = out.append
        for _ in range(20):
            uncached.inject("eth0", Packet(flow=flow, size=128))
        sim2.run(until=50 * MS)
        assert len(out) == 20
        # Cached: one lookup per (flow, scope); uncached: one per hop.
        assert cached_lookups <= 3
        assert uncached.flow_table.lookups == 60

        sim3 = Simulator()
        # With bursts, the per-(flow, burst) plan collapses repeated
        # lookups even without the descriptor cache.
        bursty = NfvHost(sim3, name="c4", lookup_cache=False,
                         burst_size=32)
        bursty.add_nf(NoOpNf("a"))
        bursty.add_nf(NoOpNf("b"))
        install_chain(bursty, ["a", "b"])
        for _ in range(20):
            bursty.inject("eth0", Packet(flow=flow, size=128))
        sim3.run(until=50 * MS)
        assert bursty.flow_table.lookups < 60

    def test_table_mutation_invalidates_cache(self, sim, flow, udp_flow):
        host = NfvHost(sim, name="c3", lookup_cache=True)
        host.add_nf(NoOpNf("a"))
        install_chain(host, ["a"])
        run_packets(sim, host, flow, count=5)
        # Rewire the chain: subsequent packets must see the new rule.
        host.install_rule(FlowTableEntry(
            scope="a", match=FlowMatch.any(), actions=(Drop(),)))
        out = run_packets(sim, host, flow, count=5)
        assert not out
        assert host.stats.dropped_by_nf == 5


class TestCrossLayerMessages:
    def _two_path_host(self, sim):
        """detector with default fast path and alternate slow path."""
        host = NfvHost(sim, name="m0", ports=("eth0", "fast", "slow"))
        host.add_nf(CounterNf("det"))
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToService("det"),)))
        host.install_rule(FlowTableEntry(
            scope="det", match=FlowMatch.any(),
            actions=(ToPort("slow"), ToPort("fast"))))
        return host

    def test_change_default_per_flow(self, sim, flow, udp_flow):
        host = self._two_path_host(sim)
        host.manager.apply_message(ChangeDefault(
            sender_service="det", flows=FlowMatch.exact(flow),
            service="det", target="port:fast"))
        fast_out, slow_out = [], []
        host.port("fast").on_egress = fast_out.append
        host.port("slow").on_egress = slow_out.append
        host.inject("eth0", Packet(flow=flow, size=128))
        host.inject("eth0", Packet(flow=udp_flow, size=128))
        sim.run(until=10 * MS)
        assert len(fast_out) == 1 and fast_out[0].flow == flow
        assert len(slow_out) == 1 and slow_out[0].flow == udp_flow

    def test_change_default_wildcard_rewrites_rule(self, sim, flow):
        host = self._two_path_host(sim)
        host.manager.apply_message(ChangeDefault(
            sender_service="det", flows=FlowMatch.any(),
            service="det", target="port:fast"))
        fast_out = []
        host.port("fast").on_egress = fast_out.append
        host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=10 * MS)
        assert len(fast_out) == 1

    def test_change_default_to_drop(self, sim, flow):
        host = self._two_path_host(sim)
        host.manager.apply_message(ChangeDefault(
            sender_service="det", flows=FlowMatch.any(),
            service="det", target="drop"))
        out = []
        host.port("fast").on_egress = out.append
        host.port("slow").on_egress = out.append
        for _ in range(3):
            host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=10 * MS)
        assert not out
        assert host.stats.dropped_by_nf == 3

    def test_skip_me_bypasses_service(self, sim, flow):
        host = NfvHost(sim, name="m1")
        host.add_nf(CounterNf("a"))
        skipped = CounterNf("b")
        host.add_nf(skipped)
        host.add_nf(CounterNf("c"))
        install_chain(host, ["a", "b", "c"])
        host.manager.apply_message(SkipMe(
            sender_service="b", flows=FlowMatch.any(), service="b"))
        out = run_packets(sim, host, flow, count=4)
        assert len(out) == 4
        assert skipped.packets_seen == 0
        assert host.stats.per_service_packets["c"] == 4

    def test_request_me_captures_default(self, sim, flow):
        """RequestMe makes the requester the default wherever an edge to
        it exists (the DDoS scrubber's move in §5.2)."""
        host = NfvHost(sim, name="m2")
        host.add_nf(CounterNf("det"))
        scrubber = CounterNf("scrub")
        host.add_nf(scrubber)
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToService("det"),)))
        # Edge to scrub exists but default goes straight out.
        host.install_rule(FlowTableEntry(
            scope="det", match=FlowMatch.any(),
            actions=(ToPort("eth1"), ToService("scrub"))))
        host.install_rule(FlowTableEntry(
            scope="scrub", match=FlowMatch.any(),
            actions=(ToPort("eth1"),)))
        host.manager.apply_message(RequestMe(
            sender_service="scrub", flows=FlowMatch.any(),
            service="scrub"))
        out = run_packets(sim, host, flow, count=4)
        assert len(out) == 4
        assert scrubber.packets_seen == 4

    def test_user_message_reaches_handler(self, sim, host):
        received = []
        host.manager.message_handlers["svc"] = received.append
        host.manager.submit_nf_message(UserMessage(
            sender_service="svc", key="alarm", value=42))
        sim.run(until=MS)
        assert len(received) == 1 and received[0].value == 42

    def test_user_message_without_handler_is_kept(self, sim, host):
        host.manager.submit_nf_message(UserMessage(
            sender_service="svc", key="alarm", value=1))
        sim.run(until=MS)
        assert len(host.manager.uninterpreted_messages) == 1

    def test_nf_sends_message_through_context(self, sim, host, flow):
        class AlarmNf(NetworkFunction):
            read_only = True

            def process(self, packet, ctx):
                from repro.dataplane.messages import UserMessage
                ctx.send_message(UserMessage(
                    sender_service=self.service_id, key="seen",
                    value=packet.packet_id))
                return Verdict.default()

        host.add_nf(AlarmNf("alarm"))
        install_chain(host, ["alarm"])
        run_packets(sim, host, flow, count=2)
        assert len(host.manager.uninterpreted_messages) == 2

    def test_message_spoofed_sender_rejected(self, sim, host, flow):
        class SpoofNf(NetworkFunction):
            read_only = True

            def __init__(self, service_id):
                super().__init__(service_id)
                self.error = None

            def process(self, packet, ctx):
                from repro.dataplane.messages import UserMessage
                try:
                    ctx.send_message(UserMessage(
                        sender_service="somebody_else", key="x"))
                except ValueError as exc:
                    self.error = exc
                return Verdict.default()

        nf = SpoofNf("spoof")
        host.add_nf(nf)
        install_chain(host, ["spoof"])
        run_packets(sim, host, flow, count=1)
        assert nf.error is not None
