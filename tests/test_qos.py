"""QoS tests: DSCP marking and strict-priority egress scheduling."""

import pytest

from repro.dataplane import NfvHost
from repro.dataplane.qos import (
    DSCP_EXPEDITED,
    PRIORITY_ANNOTATION,
    PriorityNicPort,
    dscp_to_priority,
)
from repro.net import FiveTuple, FlowMatch, Packet
from repro.net.headers import PROTO_TCP, PROTO_UDP
from repro.nfs import DscpMarker, MarkingRule
from repro.nfs.base import NfContext
from repro.sim import S

from tests.conftest import install_chain


def _ctx(sim):
    import numpy as np
    return NfContext(sim=sim, service_id="marker", vm_id="vm-q",
                     submit_message=lambda m: None,
                     rng=np.random.default_rng(0))


class TestDscpMapping:
    def test_expedited_is_top_priority(self):
        assert dscp_to_priority(DSCP_EXPEDITED, levels=3) == 0

    def test_best_effort_is_last(self):
        assert dscp_to_priority(0, levels=3) == 2
        assert dscp_to_priority(0, levels=2) == 1

    def test_assured_is_middle(self):
        assert dscp_to_priority(10, levels=3) == 1


class TestDscpMarker:
    def test_first_match_marks(self, sim, flow, udp_flow):
        marker = DscpMarker("marker", rules=[
            MarkingRule(match=FlowMatch(protocol=PROTO_UDP),
                        dscp=DSCP_EXPEDITED),
            MarkingRule(match=FlowMatch.any(), dscp=0),
        ])
        ctx = _ctx(sim)
        voip = Packet(flow=udp_flow, size=128)
        bulk = Packet(flow=flow, size=1024)
        marker.process(voip, ctx)
        marker.process(bulk, ctx)
        assert voip.ip.dscp == DSCP_EXPEDITED
        assert voip.annotations[PRIORITY_ANNOTATION] == 0
        assert bulk.ip.dscp == 0
        assert marker.marked == 2

    def test_no_match_no_default_leaves_packet(self, sim, flow):
        marker = DscpMarker("marker", rules=[
            MarkingRule(match=FlowMatch(dst_port=9999), dscp=46)])
        packet = Packet(flow=flow, size=128)
        marker.process(packet, _ctx(sim))
        assert PRIORITY_ANNOTATION not in packet.annotations
        assert marker.unmarked == 1

    def test_dscp_range_validated(self):
        with pytest.raises(ValueError):
            MarkingRule(match=FlowMatch.any(), dscp=64)
        with pytest.raises(ValueError):
            DscpMarker("m", default_dscp=-1)


class TestPriorityPort:
    def test_levels_validated(self, sim):
        with pytest.raises(ValueError):
            PriorityNicPort(sim, "p0", priority_levels=1)

    def test_priority_traffic_overtakes_bulk(self, sim):
        """With a congested slow link, expedited frames jump the queue."""
        port = PriorityNicPort(sim, "slow", line_rate_gbps=0.01)
        order = []
        port.on_egress = lambda p: order.append(
            p.annotations.get("tag"))
        flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, 1, 80)
        # Enqueue 5 bulk frames, then 2 expedited ones behind them.
        for i in range(5):
            bulk = Packet(flow=flow, size=1024)
            bulk.annotations["tag"] = f"bulk{i}"
            port.transmit(bulk)
        for i in range(2):
            urgent = Packet(flow=flow, size=128)
            urgent.annotations["tag"] = f"urgent{i}"
            urgent.annotations[PRIORITY_ANNOTATION] = 0
            port.transmit(urgent)
        sim.run(until=10 * S)
        assert len(order) == 7
        # The urgent frames finish before most of the bulk backlog
        # (the frame already on the wire can't be preempted).
        urgent_positions = [order.index("urgent0"), order.index("urgent1")]
        assert max(urgent_positions) <= 2
        assert port.per_priority_tx[0] == 2

    def test_classification_via_dscp_field(self, sim):
        port = PriorityNicPort(sim, "p1")
        flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_UDP, 1, 5060)
        packet = Packet(flow=flow, size=128)
        import dataclasses
        packet.ip = dataclasses.replace(packet.ip, dscp=DSCP_EXPEDITED)
        assert port.classify(packet) == 0
        assert port.classify(Packet(flow=flow, size=128)) == 2

    def test_queue_overflow_counted(self, sim):
        port = PriorityNicPort(sim, "p2", line_rate_gbps=0.001,
                               queue_frames=2)
        flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, 1, 80)
        for _ in range(5):
            port.transmit(Packet(flow=flow, size=1024))
        assert port.tx_dropped == 3

    def test_end_to_end_marking_and_scheduling(self, sim):
        """Marker NF + priority egress inside a full host: latency of
        marked traffic stays low while bulk congests the link."""
        host = NfvHost(sim, name="qos0", ports=("eth0",))
        # Replace the default egress with a slow priority port.
        port = PriorityNicPort(sim, "eth1", line_rate_gbps=0.02)
        host.manager.ports["eth1"] = port
        marker = DscpMarker("marker", rules=[
            MarkingRule(match=FlowMatch(protocol=PROTO_UDP),
                        dscp=DSCP_EXPEDITED)])
        host.add_nf(marker, ring_slots=4096)
        install_chain(host, ["marker"])
        voip_flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_UDP, 1, 5060)
        bulk_flow = FiveTuple("10.0.0.3", "10.0.0.4", PROTO_TCP, 2, 80)
        latencies = {"voip": [], "bulk": []}
        port.on_egress = lambda p: latencies[
            "voip" if p.flow == voip_flow else "bulk"].append(
                sim.now - p.created_at)

        def traffic():
            # Bulk offered at ~33 Mbps over a 20 Mbps link: sustained
            # congestion, so scheduling order dominates latency.
            for _ in range(200):
                for _burst in range(2):
                    host.inject("eth0", Packet(flow=bulk_flow, size=1024,
                                               created_at=sim.now))
                host.inject("eth0", Packet(flow=voip_flow, size=128,
                                           created_at=sim.now))
                yield sim.timeout(500_000)

        sim.process(traffic())
        sim.run(until=40 * S)
        assert latencies["voip"] and latencies["bulk"]
        mean_voip = sum(latencies["voip"]) / len(latencies["voip"])
        mean_bulk = sum(latencies["bulk"]) / len(latencies["bulk"])
        # Strict priority: marked traffic is an order of magnitude ahead.
        assert mean_voip < mean_bulk / 5
