"""Verify-mode parity: the ownership detector is free when off and
invisible when on.

``verify=False`` (the default) must be *structurally* identical to the
pre-analysis tree — not one wrapper installed, the exact class methods
on the hot path — and ``verify=True`` must be *behaviorally* identical:
byte-for-byte the same deliveries, latency samples, stats, and kernel
odometers on the Fig. 7 workload, because the wrappers only observe.
This doubles as the acceptance run: the instrumented Fig. 7 scenario
must finish with a clean ledger and a balanced conservation audit.
"""

from __future__ import annotations

from repro.dataplane import NfvHost
from repro.net import FiveTuple
from repro.nfs import NoOpNf
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain

WINDOW_NS = 2 * MS

#: Hot-path hand-off points that verify=True shadows with instance-level
#: wrappers; verify=False must leave every one on its class.
_POOL_HOOKS = ("alloc", "reclaim")
_PORT_HOOKS = ("receive", "transmit")
_RING_HOOKS = ("try_enqueue", "enqueue_burst")
_MANAGER_HOOKS = ("register_vm", "add_port", "install_rule",
                  "apply_message")


def run_fig7(verify: bool):
    """One deterministic Fig. 7-style run; returns everything observable."""
    sim = Simulator()
    host = NfvHost(sim, name="parity", verify=verify)
    for service in ("noop0", "noop1"):
        host.add_nf(NoOpNf(service), ring_slots=256)
    install_chain(host, ["noop0", "noop1"])
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1234, 80)
    gen = PktGen(sim, host, window_ns=MS)
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=8_000.0, packet_size=64,
                          stop_ns=WINDOW_NS))

    deliveries: list[tuple[int, int, FiveTuple]] = []
    measured_hook = host.port("eth1").on_egress

    def recording_hook(packet):
        deliveries.append((sim.now, packet.created_at, packet.flow))
        measured_hook(packet)

    host.port("eth1").on_egress = recording_hook
    sim.run(until=WINDOW_NS + MS)
    return {
        "deliveries": deliveries,
        "latency_samples": gen.latency.samples_ns,
        "summary": host.stats.summary(),
        "events_scheduled": sim.events_scheduled,
        "timers_scheduled": sim.timers_scheduled,
        "events_cancelled": sim.events_cancelled,
        "sent": gen.sent,
        "received": gen.received,
        "gbps": gen.rx_meter.mean_gbps(),
        "host": host,
    }


def test_default_host_installs_no_wrappers():
    """verify=False is the pre-analysis tree: every hot-path method is
    the plain class function, nothing shadowed on any instance."""
    sim = Simulator()
    host = NfvHost(sim, name="bare")
    vm = host.add_nf(NoOpNf("svc"))
    assert host.verifier is None
    for hook in _POOL_HOOKS:
        assert hook not in host.packet_pool.__dict__
    for port in host.manager.ports.values():
        for hook in _PORT_HOOKS:
            assert hook not in port.__dict__
    for ring in [vm.rx_ring, *host.manager._tx_queues]:
        for hook in _RING_HOOKS:
            assert hook not in ring.__dict__
    for hook in _MANAGER_HOOKS:
        assert hook not in host.manager.__dict__


def test_verified_run_is_observationally_identical():
    """The wrappers observe; they must never perturb the simulation."""
    plain = run_fig7(verify=False)
    verified = run_fig7(verify=True)
    assert verified["deliveries"] == plain["deliveries"]
    assert verified["latency_samples"] == plain["latency_samples"]
    assert verified["summary"] == plain["summary"]
    assert verified["events_scheduled"] == plain["events_scheduled"]
    assert verified["timers_scheduled"] == plain["timers_scheduled"]
    assert verified["events_cancelled"] == plain["events_cancelled"]
    assert verified["sent"] == plain["sent"]
    assert verified["received"] == plain["received"]
    assert verified["gbps"] == plain["gbps"]
    assert plain["received"] > 1000  # the workload actually moved traffic


def test_instrumented_fig7_run_is_clean():
    """Acceptance: the Fig. 7 scenario under verify=True reports zero
    leaks, zero double-releases, and a balanced conservation audit."""
    verified = run_fig7(verify=True)
    report = verified["host"].verifier.assert_clean()
    audit = report.audit
    assert audit["balanced"]
    assert audit["inflight"] == 0
    assert audit["delivered"] == verified["received"]
    assert audit["injected"] == verified["sent"]
    assert audit["injected"] == (audit["delivered"] + audit["dropped"])
