"""Coverage for smaller behaviours not exercised elsewhere."""

import pytest

from repro.core import EXIT, ServiceGraph
from repro.dataplane import Drop, FlowTableEntry, NfvHost, ToPort, Verdict
from repro.net import FiveTuple, FlowMatch, HttpRequest, HttpResponse, Packet
from repro.net.flow import FlowMatch as FM
from repro.net.headers import PROTO_UDP
from repro.nfs import HttpCache, NoOpNf
from repro.nfs.base import NfContext
from repro.sim import MS



class TestFlowMatchSubsumption:
    def test_any_subsumes_everything(self, flow):
        assert FM.any().subsumes(FM.exact(flow))
        assert FM.any().subsumes(FM(dst_port=80))
        assert FM.any().subsumes(FM.any())

    def test_exact_subsumes_only_itself(self, flow, udp_flow):
        exact = FM.exact(flow)
        assert exact.subsumes(exact)
        assert not exact.subsumes(FM.exact(udp_flow))
        assert not exact.subsumes(FM.any())

    def test_field_subsumption(self):
        assert FM(dst_port=80).subsumes(FM(dst_port=80, protocol=6))
        assert not FM(dst_port=80, protocol=6).subsumes(FM(dst_port=80))
        assert not FM(dst_port=80).subsumes(FM(dst_port=443))

    def test_prefix_subsumption(self):
        wide = FM(src_ip="10.0.0.0", src_prefix_bits=8)
        narrow = FM(src_ip="10.1.0.0", src_prefix_bits=16)
        outside = FM(src_ip="11.0.0.0", src_prefix_bits=16)
        assert wide.subsumes(narrow)
        assert not narrow.subsumes(wide)
        assert not wide.subsumes(outside)
        # A prefix never subsumes a match with no source constraint.
        assert not wide.subsumes(FM.any())


class TestHttpCacheEdgeCases:
    def _ctx(self, sim):
        import numpy as np
        return NfContext(sim=sim, service_id="cache", vm_id="vm-t",
                         submit_message=lambda m: None,
                         rng=np.random.default_rng(0))

    def test_hit_without_reply_port_absorbs_request(self, sim, flow):
        cache = HttpCache("cache")  # no reply_port
        ctx = self._ctx(sim)
        response = Packet(flow=flow.reversed(), payload=HttpResponse(
            headers={"Content-Type": "text/html"}, body="X").serialize())
        response.annotations["request_key"] = ("example.com", "/")
        cache.process(response, ctx)
        request = Packet(flow=flow, payload=HttpRequest(
            method="GET", path="/", host="example.com").serialize())
        verdict = cache.process(request, ctx)
        assert verdict == Verdict.discard()  # answered locally

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            HttpCache("cache", capacity=0)

    def test_malformed_http_passthrough(self, sim, flow):
        cache = HttpCache("cache")
        ctx = self._ctx(sim)
        broken = Packet(flow=flow, payload="HTTP/not actually valid")
        assert cache.process(broken, ctx) == Verdict.default()


class TestGraphCompilePriority:
    def test_priority_propagates(self):
        graph = ServiceGraph("p")
        graph.add_service("a")
        graph.add_edge("a", EXIT, default=True)
        graph.set_entry("a")
        rules = graph.compile_rules(ingress_port="eth0",
                                    exit_port="eth1", priority=7)
        assert all(rule.priority == 7 for rule in rules)


class TestDropActionInRules:
    def test_explicit_drop_rule(self, sim, flow):
        host = NfvHost(sim, name="drop0")
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.exact(flow),
            actions=(Drop(),)))
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToPort("eth1"),)))
        out = []
        host.port("eth1").on_egress = out.append
        other = FiveTuple("9.9.9.9", "8.8.8.8", PROTO_UDP, 5, 53)
        host.inject("eth0", Packet(flow=flow, size=128))
        host.inject("eth0", Packet(flow=other, size=128))
        sim.run(until=5 * MS)
        assert len(out) == 1 and out[0].flow == other
        assert host.stats.dropped_by_nf == 1


class TestManagerMiscellany:
    def test_duplicate_port_rejected(self, sim, host):
        with pytest.raises(ValueError):
            host.manager.add_port("eth0")

    def test_tx_threads_validated(self, sim):
        from repro.dataplane.manager import NfManager
        with pytest.raises(ValueError):
            NfManager(sim, tx_threads=0)

    def test_parallel_chain_needs_two_services(self, sim, host):
        with pytest.raises(ValueError):
            host.manager.register_parallel_chain(["only-one"])

    def test_set_load_balance_policy_applies_to_existing(self, sim):
        from repro.dataplane.load_balancer import LoadBalancePolicy
        host = NfvHost(sim, name="lbp0")
        host.add_nf(NoOpNf("svc"))
        host.manager.set_load_balance_policy(
            LoadBalancePolicy.ROUND_ROBIN)
        balancer = host.manager._balancers["svc"]
        assert balancer.policy is LoadBalancePolicy.ROUND_ROBIN

    def test_rx_ring_drop_counted_at_nic(self, sim, flow):
        host = NfvHost(sim, name="nic0")
        port = host.port("eth0")
        port.ingress.capacity = 1
        assert host.inject("eth0", Packet(flow=flow, size=128))
        assert not host.inject("eth0", Packet(flow=flow, size=128))
        assert port.rx_dropped == 1


class TestServiceGraphEdgeCases:
    def test_default_successor_missing_raises(self):
        graph = ServiceGraph("g")
        graph.add_service("a")
        graph.add_edge("a", EXIT)  # not default
        with pytest.raises(ValueError, match="default"):
            graph.default_successor("a")

    def test_entry_unset_raises(self):
        graph = ServiceGraph("g")
        with pytest.raises(RuntimeError):
            graph.entry

    def test_set_entry_unknown_service(self):
        graph = ServiceGraph("g")
        with pytest.raises(ValueError):
            graph.set_entry("nope")
