"""Metrics instrumentation tests."""

import pytest

from repro.metrics import (
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
    comparison_table,
    counters_table,
    series_table,
)
from repro.net.packet import wire_bits
from repro.sim.units import MS, S, US


class TestLatencyRecorder:
    def test_summary_statistics(self):
        recorder = LatencyRecorder()
        for value in (10 * US, 20 * US, 30 * US):
            recorder.record(value)
        assert recorder.mean_us() == pytest.approx(20.0)
        assert recorder.min_us() == pytest.approx(10.0)
        assert recorder.max_us() == pytest.approx(30.0)
        assert len(recorder) == 3

    def test_percentiles(self):
        recorder = LatencyRecorder()
        for i in range(1, 101):
            recorder.record(i * US)
        assert recorder.percentile_us(50) == pytest.approx(50.5)
        assert recorder.percentile_us(99) == pytest.approx(99.01)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1)

    def test_empty_statistics_raise(self):
        with pytest.raises(ValueError):
            LatencyRecorder().mean_us()

    def test_cdf_points_monotone(self):
        recorder = LatencyRecorder()
        for i in range(1000):
            recorder.record((i % 37 + 1) * US)
        points = recorder.cdf_points(points=50)
        assert len(points) == 50
        xs = [x for x, _y in points]
        ys = [y for _x, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_summary_dict(self):
        recorder = LatencyRecorder()
        recorder.record(5 * US)
        summary = recorder.summary()
        assert summary["count"] == 1
        assert summary["avg_us"] == pytest.approx(5.0)


class TestThroughputMeter:
    def test_gbps_accounting_includes_wire_overhead(self):
        meter = ThroughputMeter(window_ns=1 * MS)
        # 1000 packets of 1000 B in 1 ms.
        for i in range(1000):
            meter.record(i * 1000, 1000)
        series = meter.gbps_series()
        assert len(series) == 1
        expected = 1000 * wire_bits(1000) / MS
        assert series[0][1] == pytest.approx(expected)

    def test_without_overhead(self):
        meter = ThroughputMeter(window_ns=1 * MS,
                                count_wire_overhead=False)
        meter.record(0, 1000)
        assert meter.total_bits == 8000

    def test_pps_series(self):
        meter = ThroughputMeter(window_ns=1 * MS)
        for i in range(500):
            meter.record(i * 2000, 64)
        times, rates = zip(*meter.pps_series())
        assert rates[0] == pytest.approx(500_000)

    def test_mean_over_window(self):
        meter = ThroughputMeter(window_ns=1 * MS)
        meter.record(0, 1000)
        meter.record(5 * MS, 1000)
        full = meter.mean_gbps(0, 6 * MS)
        early = meter.mean_gbps(0, 1 * MS)
        assert early == pytest.approx(wire_bits(1000) / MS)
        assert full == pytest.approx(2 * wire_bits(1000) / (6 * MS))

    def test_empty_meter_mean_zero(self):
        assert ThroughputMeter().mean_gbps() == 0.0

    def test_batched_packets(self):
        meter = ThroughputMeter(window_ns=MS)
        meter.record(0, 64, packets=10)
        assert meter.total_packets == 10


class TestTimeSeries:
    def test_points_in_seconds(self):
        series = TimeSeries()
        series.append(1 * S, 5.0)
        series.append(2 * S, 7.0)
        assert series.points() == [(1.0, 5.0), (2.0, 7.0)]

    def test_time_must_not_decrease(self):
        series = TimeSeries()
        series.append(10, 1.0)
        with pytest.raises(ValueError):
            series.append(5, 2.0)

    def test_step_interpolation(self):
        series = TimeSeries()
        series.append(10, 1.0)
        series.append(20, 2.0)
        assert series.value_at(15) == 1.0
        assert series.value_at(20) == 2.0
        with pytest.raises(ValueError):
            series.value_at(5)

    def test_window_mean(self):
        series = TimeSeries()
        for t, v in [(0, 1.0), (10, 3.0), (20, 5.0)]:
            series.append(t, v)
        assert series.window_mean(0, 15) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            series.window_mean(100, 200)


class TestReporting:
    def test_comparison_table_renders_all_rows(self):
        text = comparison_table("Table 2", [
            ("0VM (dpdk)", "26.66 us", "26.70 us"),
            ("1VM", "27.78 us", "27.75 us"),
        ])
        assert "Table 2" in text
        assert "26.66 us" in text and "27.75 us" in text
        assert text.count("\n") == 4

    def test_series_table_alignment_and_floats(self):
        text = series_table("Fig 7", {
            "size": [64, 1024],
            "gbps": [5.01234, 9.9],
        })
        assert "5.012" in text and "9.900" in text

    def test_series_table_length_mismatch(self):
        with pytest.raises(ValueError):
            series_table("bad", {"a": [1], "b": [1, 2]})

    def test_counters_table_renders_ints_and_floats(self):
        text = counters_table("NIC drops", {
            "nic_rx_dropped": 12,
            "nic_link_dropped": 0,
            "vm_mean_batch": 31.90044,
        })
        assert "NIC drops" in text
        assert "nic_rx_dropped" in text and "12" in text
        assert "31.900" in text
        assert text.count("\n") == 5

    def test_counters_table_empty(self):
        text = counters_table("empty", {})
        assert "empty" in text
