"""Sharded-kernel parity: shard count is an implementation detail.

The contract of :mod:`repro.sim.sharded`:

- ``shards=1`` is *byte-identical* to a hand-built single-kernel run of
  the same scenario — same deliveries, same latency samples, same stats
  (including pool telemetry), same event-heap odometers, same log.
- Any shard count yields identical per-host observables; only pool
  telemetry may differ (boundary frames are reclaimed at the source and
  re-allocated at the destination).
- ``workers=N`` is bit-equal to the in-process ``workers=0`` conductor.

CI's shard-parity job re-runs this whole suite with
``SDNFV_SHARD_WORKERS=2``, which routes every multi-shard run through
the multiprocessing conductor — same assertions, worker transport.
"""

import os

import pytest

from repro.core import EXIT, SdnfvApp, ServiceGraph
from repro.metrics import EventLog
from repro.net import FiveTuple
from repro.nfs import NoOpNf
from repro.sim import MS, US, Simulator
from repro.sim.sharded import (
    Scenario,
    ScenarioError,
    ShardPlan,
    ShardedSimulator,
    TrafficSpec,
)
from repro.faults.plan import ControllerOutage, FaultPlan, NfCrash
from repro.topology import Link, NodeSpec, Topology, build_network
from repro.workloads import FlowSpec, PktGen

#: Counters that describe the pool itself: crossing a shard boundary
#: reclaims the source buffer and allocates a fresh one at the
#: destination, so these legitimately vary with the partition.
POOL_KEYS = ("pool_hits", "pool_misses", "pool_exhausted")

DURATION = 10 * MS
LINK_DELAY = 500 * US  # the conservative lookahead window


def line_topology(hosts: int = 4) -> Topology:
    topology = Topology()
    for index in range(hosts):
        topology.add_node(NodeSpec(name=f"h{index}", cores=4))
    for index in range(hosts - 1):
        topology.add_link(Link(a=f"h{index}", b=f"h{index + 1}",
                               delay_ns=LINK_DELAY))
    return topology


def chain_graph() -> ServiceGraph:
    graph = ServiceGraph("chain")
    for service in ("a", "b", "c", "d"):
        graph.add_service(service, read_only=True)
    graph.add_edge("a", "b", default=True)
    graph.add_edge("b", "c", default=True)
    graph.add_edge("c", "d", default=True)
    graph.add_edge("d", EXIT, default=True)
    graph.set_entry("a")
    return graph


def make_scenario() -> Scenario:
    """The reference workload: a 4-service chain, one service per host,
    two flows entering at the head of the line."""
    return Scenario(
        topology=line_topology(),
        graph=chain_graph(),
        placement={"a": "h0", "b": "h1", "c": "h2", "d": "h3"},
        duration_ns=DURATION,
        traffic=[
            TrafficSpec(host="h0",
                        flow=FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 80),
                        rate_mbps=1200.0, stop_ns=6 * MS),
            TrafficSpec(host="h0",
                        flow=FiveTuple("10.0.0.3", "10.0.0.4", 17, 2, 53),
                        rate_mbps=800.0, start_ns=1 * MS, stop_ns=5 * MS),
        ],
    )


def run_monolithic(scenario: Scenario) -> dict:
    """The same scenario, hand-built on ONE kernel with no sharding
    machinery at all — the golden reference ``shards=1`` must match."""
    sim = Simulator()
    network = build_network(
        sim, scenario.topology, costs=scenario.costs,
        ingress_port=scenario.ingress_port,
        exit_port=scenario.exit_port,
        line_rate_gbps=scenario.line_rate_gbps,
        burst_size=scenario.burst_size, pool_size=scenario.pool_size,
        seed=scenario.seed)
    event_log = EventLog(sim)
    app = SdnfvApp(sim)
    for host in network.hosts.values():
        app.register_host(host)
        host.manager.event_log = event_log
    for service in scenario.graph.services:
        host = network.hosts[scenario.placement[service]]
        host.add_nf(NoOpNf(service), ring_slots=scenario.ring_slots)
    app.deploy(scenario.graph,
               ingress_port=scenario.ingress_port,
               exit_port=scenario.exit_port,
               placement=scenario.placement, network=network)

    gens: dict[str, PktGen] = {}
    deliveries: dict[str, list] = {}
    for name, host in network.hosts.items():
        gen = PktGen(sim, host, ingress_port=scenario.ingress_port,
                     measure_ports=(scenario.exit_port,),
                     seed=scenario.pktgen_seed)
        gens[name] = gen
        deliveries[name] = []
        port = host.port(scenario.exit_port)
        measured = port.on_egress

        def recording_hook(packet, sink=deliveries[name],
                           measured=measured):
            flow = packet.flow
            sink.append((sim.now, packet.created_at,
                         (flow.src_ip, flow.dst_ip, flow.protocol,
                          flow.src_port, flow.dst_port)))
            measured(packet)

        port.on_egress = recording_hook
    for spec in scenario.traffic:
        gens[spec.host].add_flow(FlowSpec(
            flow=spec.flow, rate_mbps=spec.rate_mbps,
            packet_size=spec.packet_size, start_ns=spec.start_ns,
            stop_ns=spec.stop_ns, payload=spec.payload,
            pacing=spec.pacing))
    sim.run(until=scenario.duration_ns)
    return {
        "hosts": {name: {
            "summary": host.stats.summary(),
            "deliveries": deliveries[name],
            "latency_samples": list(gens[name].latency.samples_ns),
            "sent": gens[name].sent,
            "received": gens[name].received,
            "rx_gbps": gens[name].rx_meter.mean_gbps(),
        } for name, host in network.hosts.items()},
        "events": list(event_log.events),
        "events_scheduled": sim.events_scheduled,
        "timers_scheduled": sim.timers_scheduled,
        "events_cancelled": sim.events_cancelled,
        "frames_carried": network.fabric.frames_carried,
    }


#: CI's shard-parity job sets this to 2: every multi-shard run below
#: then goes over multiprocessing pipes instead of staying in-process.
DEFAULT_WORKERS = int(os.environ.get("SDNFV_SHARD_WORKERS", "0"))

_RUNS: dict[tuple, object] = {}


def sharded_run(shards: int, workers: int | None = None,
                adaptive: bool = True, transport: str = "columnar"):
    """Run (and memoize) the reference scenario at a shard count."""
    if workers is None:
        workers = DEFAULT_WORKERS if shards > 1 else 0
    key = (shards, workers, adaptive, transport)
    if key not in _RUNS:
        _RUNS[key] = ShardedSimulator(make_scenario(), shards=shards,
                                      workers=workers,
                                      adaptive_windows=adaptive,
                                      transport=transport).run()
    return _RUNS[key]


def strip_pool(summary: dict) -> dict:
    return {key: value for key, value in summary.items()
            if key not in POOL_KEYS}


def strip_transport(shard_result: dict) -> dict:
    """Drop the schedule/transport odometers: they legitimately vary
    with the window schedule (window count) and wire format
    (messages/bytes) while every model observable stays identical."""
    return {key: value for key, value in shard_result.items()
            if key != "transport"}


class TestGoldenParity:
    """``shards=1`` is byte-identical to the monolithic kernel."""

    def test_single_shard_matches_monolithic_exactly(self):
        mono = run_monolithic(make_scenario())
        result = sharded_run(shards=1)
        shard = result.shard_results[0]
        # No boundary ever crossed: even pool telemetry must agree.
        assert shard["hosts"] == mono["hosts"]
        assert shard["events"] == mono["events"]
        # Same kernel work, event for event, timer for timer.
        assert shard["events_scheduled"] == mono["events_scheduled"]
        assert shard["timers_scheduled"] == mono["timers_scheduled"]
        assert shard["events_cancelled"] == mono["events_cancelled"]
        assert shard["frames_carried"] == mono["frames_carried"]
        assert shard["boundary_tx"] == 0
        # Sanity: the workload moved real traffic end to end.
        assert result.received > 1000
        assert result.sent == result.received

    def test_result_accessors_cover_every_host(self):
        result = sharded_run(shards=1)
        for name in ("h0", "h1", "h2", "h3"):
            assert result.host_summary(name)["rx_packets"] >= 0
        assert result.deliveries("h3")  # the chain exits at h3
        assert result.deliveries("h1") == []


class TestShardCountInvariance:
    """Per-host observables are identical at every shard count."""

    @pytest.mark.parametrize("shards", [2, 4])
    def test_summaries_deliveries_latency_match_single_shard(self,
                                                             shards):
        base = sharded_run(shards=1)
        split = sharded_run(shards=shards)
        for name in ("h0", "h1", "h2", "h3"):
            assert (strip_pool(split.host_summary(name))
                    == strip_pool(base.host_summary(name))), name
            assert split.deliveries(name) == base.deliveries(name), name
            assert (split.hosts[name]["latency_samples"]
                    == base.hosts[name]["latency_samples"]), name
            assert split.hosts[name]["rx_gbps"] \
                == base.hosts[name]["rx_gbps"], name
        assert split.sent == base.sent
        assert split.received == base.received

    @pytest.mark.parametrize("shards", [2, 4])
    def test_conservation_totals_are_invariant(self, shards):
        base = sharded_run(shards=1).totals()
        split = sharded_run(shards=shards).totals()
        assert split == base

    def test_split_run_really_crossed_boundaries(self):
        split = sharded_run(shards=2)
        assert sum(r["boundary_tx"] for r in split.shard_results) > 0

    def test_merged_event_timeline_is_time_ordered(self):
        split = sharded_run(shards=4)
        stamps = [event.timestamp_ns for event in split.events]
        assert stamps == sorted(stamps)
        assert len(split.events) == len(sharded_run(shards=1).events)


class TestWorkerParity:
    """The multiprocessing conductor is bit-equal to in-process mode."""

    def test_two_workers_bit_equal_to_inline(self):
        inline = sharded_run(shards=2, workers=0)
        piped = sharded_run(shards=2, workers=2)
        assert piped.shard_results == inline.shard_results

    def test_workers_clamped_to_shard_count(self):
        simulator = ShardedSimulator(make_scenario(), shards=2,
                                     workers=8)
        assert simulator.workers == 2


class TestShardPlan:
    def test_compute_partitions_contiguously_and_balanced(self):
        plan = ShardPlan.compute(line_topology(4), 2)
        assert plan.groups == (("h0", "h1"), ("h2", "h3"))
        assert plan.lookahead_ns == LINK_DELAY
        assert plan.owners() == {"h0": 0, "h1": 0, "h2": 1, "h3": 1}

    def test_uneven_split_front_loads_the_remainder(self):
        plan = ShardPlan.compute(line_topology(5), 2)
        assert plan.groups == (("h0", "h1", "h2"), ("h3", "h4"))

    def test_single_shard_has_no_lookahead(self):
        plan = ShardPlan.compute(line_topology(4), 1)
        assert plan.groups == (("h0", "h1", "h2", "h3"),)
        assert plan.lookahead_ns is None

    def test_more_shards_than_hosts_rejected(self):
        with pytest.raises(ValueError, match="at most"):
            ShardPlan.compute(line_topology(2), 3)
        with pytest.raises(ValueError, match="at least one"):
            ShardPlan.compute(line_topology(2), 0)

    def test_zero_delay_crossing_link_rejected(self):
        topology = Topology()
        topology.add_node(NodeSpec(name="h0"))
        topology.add_node(NodeSpec(name="h1"))
        topology.add_link(Link(a="h0", b="h1", delay_ns=0))
        with pytest.raises(ValueError, match="zero-delay"):
            ShardPlan.compute(topology, 2)

    def test_validate_for_rejects_bad_manual_plans(self):
        topology = line_topology(4)
        with pytest.raises(ValueError, match="more than one shard"):
            ShardPlan(groups=(("h0", "h1"), ("h1", "h2", "h3")),
                      lookahead_ns=LINK_DELAY).validate_for(topology)
        with pytest.raises(ValueError, match="every NFV host"):
            ShardPlan(groups=(("h0",), ("h1",)),
                      lookahead_ns=LINK_DELAY).validate_for(topology)
        with pytest.raises(ValueError, match="at most"):
            ShardPlan(groups=(("h0", "h1"), ("h2", "h3")),
                      lookahead_ns=LINK_DELAY + 1).validate_for(topology)

    def test_manual_plan_accepted_and_used(self):
        plan = ShardPlan(groups=(("h0", "h2"), ("h1", "h3")),
                         lookahead_ns=LINK_DELAY)
        plan.validate_for(line_topology(4))
        simulator = ShardedSimulator(make_scenario(), plan=plan)
        assert simulator.plan is plan


class TestScheduleTransportParity:
    """Adaptive windows and the columnar wire format are pure perf
    knobs: all four schedule x transport combinations are byte-identical
    on every merged observable (the uniform reference topology also
    pins that adaptive degenerates to the global-barrier schedule)."""

    @pytest.mark.parametrize("adaptive", [True, False])
    @pytest.mark.parametrize("transport", ["columnar", "pickle"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_all_combinations_byte_identical(self, shards, adaptive,
                                             transport):
        reference = sharded_run(shards=shards)
        run = sharded_run(shards=shards, adaptive=adaptive,
                          transport=transport)
        assert ([strip_transport(result)
                 for result in run.shard_results]
                == [strip_transport(result)
                    for result in reference.shard_results])

    @pytest.mark.parametrize("shards", [2, 4])
    def test_uniform_link_delays_degenerate_to_global_barrier(self,
                                                              shards):
        """On a uniform-delay topology the adaptive schedule advances
        every shard through exactly the global-barrier window count."""
        adaptive = sharded_run(shards=shards, adaptive=True)
        uniform = sharded_run(shards=shards, adaptive=False)
        expected = DURATION // LINK_DELAY  # 10 ms / 500 us windows
        for result in uniform.shard_results:
            assert result["transport"]["windows"] == expected
        for result in adaptive.shard_results:
            assert result["transport"]["windows"] == expected

    def test_columnar_transport_ships_fewer_messages(self):
        columnar = sharded_run(shards=4, transport="columnar")
        pickled = sharded_run(shards=4, transport="pickle")
        c_summary = columnar.transport_summary()
        p_summary = pickled.transport_summary()
        # Same boundary traffic, same batch count...
        assert c_summary["batches"] == p_summary["batches"] > 0
        # ...but a handful of flat buffers per batch instead of one
        # pickled tuple per packet.
        assert p_summary["messages"] > c_summary["messages"]
        assert c_summary["mode"] == "columnar"
        assert p_summary["messages"] == sum(
            result["boundary_tx"] for result in pickled.shard_results)

    def test_transport_counters_account_real_bytes(self):
        run = sharded_run(shards=2)
        summary = run.transport_summary()
        assert summary["bytes"] > 0
        assert summary["windows"] > 0
        assert summary["messages_per_batch"] > 0

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            ShardedSimulator(make_scenario(), shards=2,
                             transport="carrier-pigeon")


HET_FAST = 50 * US
HET_SLOW = 5 * MS
HET_DURATION = 30 * MS


def het_topology() -> Topology:
    """Four hosts: a 50 us intra-DC hop between h1 and h2, 5 ms WAN
    links at both ends — the shape where one global lookahead forces
    microsecond barriers on shards coupled only through the WAN."""
    topology = Topology()
    for index in range(4):
        topology.add_node(NodeSpec(name=f"h{index}", cores=4))
    topology.add_link(Link(a="h0", b="h1", delay_ns=HET_SLOW))
    topology.add_link(Link(a="h1", b="h2", delay_ns=HET_FAST))
    topology.add_link(Link(a="h2", b="h3", delay_ns=HET_SLOW))
    return topology


def het_scenario() -> Scenario:
    return Scenario(
        topology=het_topology(),
        graph=chain_graph(),
        placement={"a": "h0", "b": "h1", "c": "h2", "d": "h3"},
        duration_ns=HET_DURATION,
        traffic=[
            TrafficSpec(host="h0",
                        flow=FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 80),
                        rate_mbps=400.0, stop_ns=6 * MS),
            TrafficSpec(host="h0",
                        flow=FiveTuple("10.0.0.3", "10.0.0.4", 17, 2, 53),
                        rate_mbps=200.0, start_ns=1 * MS, stop_ns=5 * MS),
        ],
    )


_HET_RUNS: dict[tuple, object] = {}


def het_run(shards: int, workers: int | None = None,
            adaptive: bool = True, transport: str = "columnar"):
    if workers is None:
        workers = DEFAULT_WORKERS if shards > 1 else 0
    key = (shards, workers, adaptive, transport)
    if key not in _HET_RUNS:
        _HET_RUNS[key] = ShardedSimulator(het_scenario(), shards=shards,
                                          workers=workers,
                                          adaptive_windows=adaptive,
                                          transport=transport).run()
    return _HET_RUNS[key]


class TestHeterogeneousDelays:
    """Mixed 50 us / 5 ms crossing links: the adaptive schedule must
    change only how often shards barrier, never what the network did."""

    @pytest.mark.parametrize("adaptive", [True, False])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_parity_with_single_shard(self, shards, adaptive):
        base = het_run(shards=1)
        run = het_run(shards=shards, adaptive=adaptive)
        for name in ("h0", "h1", "h2", "h3"):
            assert (strip_pool(run.host_summary(name))
                    == strip_pool(base.host_summary(name))), name
            assert run.deliveries(name) == base.deliveries(name), name
            assert (run.hosts[name]["latency_samples"]
                    == base.hosts[name]["latency_samples"]), name
        assert run.totals() == base.totals()
        assert len(run.events) == len(base.events)
        assert run.received > 500  # traffic really crossed the WAN

    @pytest.mark.parametrize("shards", [2, 4])
    def test_adaptive_identical_to_uniform_schedule(self, shards):
        adaptive = het_run(shards=shards, adaptive=True)
        uniform = het_run(shards=shards, adaptive=False)
        assert ([strip_transport(result)
                 for result in adaptive.shard_results]
                == [strip_transport(result)
                    for result in uniform.shard_results])

    @pytest.mark.parametrize("shards", [2, 4])
    def test_workers_bit_equal_to_inline_on_adaptive_schedule(self,
                                                              shards):
        inline = het_run(shards=shards, workers=0)
        piped = het_run(shards=shards, workers=2)
        assert piped.shard_results == inline.shard_results

    def test_adaptive_barriers_far_less_on_wan_pairs(self):
        """At shards=4 only the h1/h2 pair needs 50 us windows; the
        WAN-coupled end shards advance at 5 ms cadence instead of
        being dragged through every micro-window."""
        adaptive = het_run(shards=4, adaptive=True)
        uniform = het_run(shards=4, adaptive=False)
        windows = [result["transport"]["windows"]
                   for result in adaptive.shard_results]
        per_shard_uniform = HET_DURATION // HET_FAST  # 600 micro-windows
        for result in uniform.shard_results:
            assert result["transport"]["windows"] == per_shard_uniform
        # The fast pair still barriers at ~50 us cadence...
        assert windows[1] >= per_shard_uniform
        assert windows[2] >= per_shard_uniform
        # ...but the WAN-coupled end shards advance in 5 ms strides:
        # two orders of magnitude fewer barriers each.
        assert windows[0] * 50 < per_shard_uniform
        assert windows[3] * 50 < per_shard_uniform
        assert sum(windows) < 4 * per_shard_uniform

    def test_compute_builds_per_pair_matrix(self):
        plan = ShardPlan.compute(het_topology(), 4)
        assert plan.lookahead_ns == HET_FAST
        assert plan.lookahead_matrix == (
            (0, 1, HET_SLOW), (1, 0, HET_SLOW),
            (1, 2, HET_FAST), (2, 1, HET_FAST),
            (2, 3, HET_SLOW), (3, 2, HET_SLOW))
        assert plan.pair_lookaheads()[(1, 2)] == HET_FAST

    def test_matrix_validation_rejects_unsafe_manual_plans(self):
        topology = het_topology()
        groups = (("h0",), ("h1",), ("h2",), ("h3",))
        with pytest.raises(ValueError, match="missing the crossing"):
            ShardPlan(groups=groups, lookahead_ns=HET_FAST,
                      lookahead_matrix=((0, 1, HET_SLOW),)
                      ).validate_for(topology)
        too_fast = (
            (0, 1, HET_SLOW), (1, 0, HET_SLOW),
            (1, 2, HET_FAST), (2, 1, HET_FAST),
            (2, 3, HET_SLOW + 1), (3, 2, HET_SLOW))
        with pytest.raises(ValueError, match="minimum crossing delay"):
            ShardPlan(groups=groups, lookahead_ns=HET_FAST,
                      lookahead_matrix=too_fast).validate_for(topology)

    def test_manual_plan_without_matrix_derives_from_topology(self):
        plan = ShardPlan(groups=(("h0",), ("h1",), ("h2",), ("h3",)),
                         lookahead_ns=HET_FAST)
        simulator = ShardedSimulator(het_scenario(), plan=plan)
        assert simulator.plan is plan
        assert simulator._pair_lookaheads[(1, 2)] == HET_FAST
        assert simulator._pair_lookaheads[(0, 1)] == HET_SLOW


class TestWindowSchedule:
    """The global-barrier edge stream is lazy: long runs with small
    lookaheads must not materialize millions of edges up front."""

    def huge_simulator(self) -> ShardedSimulator:
        scenario = make_scenario()
        scenario.duration_ns = 10**15  # ~11.6 days of simulated time
        return ShardedSimulator(scenario, shards=2,
                                adaptive_windows=False)

    def test_windows_is_a_generator(self):
        simulator = self.huge_simulator()
        windows = simulator._windows()
        assert iter(windows) is windows  # a true lazy iterator
        from itertools import islice
        assert list(islice(windows, 3)) == [
            LINK_DELAY, 2 * LINK_DELAY, 3 * LINK_DELAY]

    def test_rounds_are_lazy_too(self):
        simulator = self.huge_simulator()
        from itertools import islice
        first, second = islice(simulator._rounds(), 2)
        assert first == {0: LINK_DELAY, 1: LINK_DELAY}
        assert second == {0: 2 * LINK_DELAY, 1: 2 * LINK_DELAY}

    def test_final_partial_window_lands_on_duration(self):
        scenario = make_scenario()
        scenario.duration_ns = LINK_DELAY * 3 + 7
        simulator = ShardedSimulator(scenario, shards=2,
                                     adaptive_windows=False)
        assert list(simulator._windows()) == [
            LINK_DELAY, 2 * LINK_DELAY, 3 * LINK_DELAY,
            scenario.duration_ns]


class TestVerifiedShardedRun:
    """Scenario(verify=True): every host runs under the ownership
    verifier's shadow ledger — including the boundary capture/delivery
    hand-off — and the per-host audits come back clean."""

    def test_verified_run_is_clean_and_unchanged(self):
        scenario = het_scenario()
        scenario.verify = True
        verified = ShardedSimulator(scenario, shards=2).run()
        plain = het_run(shards=2, workers=0)
        assert verified.totals() == plain.totals()
        assert verified.verify_reports is not None
        assert set(verified.verify_reports) == {"h0", "h1", "h2", "h3"}
        for name, found in verified.verify_reports.items():
            assert found["issues"] == [], name
            assert found["audit"]["balanced"], name
        # Boundary-crossing packets really went through the shadow
        # ledger: the destination side injected what the source shipped.
        audits = verified.verify_reports
        assert audits["h2"]["audit"]["injected"] > 0

    def test_unverified_run_reports_none(self):
        assert het_run(shards=2, workers=0).verify_reports is None
    def test_unplaced_service_rejected(self):
        scenario = make_scenario()
        del scenario.placement["c"]
        with pytest.raises(ScenarioError, match="no placement"):
            scenario.validate()

    def test_placement_on_unknown_host_rejected(self):
        scenario = make_scenario()
        scenario.placement["c"] = "ghost"
        with pytest.raises(ScenarioError, match="unknown host"):
            scenario.validate()

    def test_traffic_on_unknown_host_rejected(self):
        scenario = make_scenario()
        scenario.traffic[0].host = "ghost"
        with pytest.raises(ScenarioError, match="traffic targets"):
            scenario.validate()

    def test_nonpositive_duration_rejected(self):
        scenario = make_scenario()
        scenario.duration_ns = 0
        with pytest.raises(ScenarioError, match="duration"):
            scenario.validate()

    def test_controller_outage_rejected(self):
        scenario = make_scenario()
        scenario.fault_plan = FaultPlan()
        scenario.fault_plan.add(ControllerOutage(at_ns=MS, down_ns=MS))
        with pytest.raises(ScenarioError, match="ControllerOutage"):
            scenario.validate()

    def test_hostless_fault_rejected(self):
        scenario = make_scenario()
        scenario.fault_plan = FaultPlan()
        scenario.fault_plan.add(NfCrash(at_ns=MS, service="a"))
        with pytest.raises(ScenarioError, match="explicit host"):
            scenario.validate()
