"""Every lint rule gets a fixture pair: one snippet it rejects, one it
accepts — plus engine-level behavior (noqa suppression, selection, CLI
exit codes) and the acceptance gate that the repo lints itself clean."""

from __future__ import annotations

import pathlib
import subprocess
import sys
import textwrap

from repro.analysis.lint import RULES, lint_paths, lint_source

REPO = pathlib.Path(__file__).resolve().parent.parent


def violations(source: str, rule_id: str) -> list:
    found = lint_source(textwrap.dedent(source), select=[rule_id])
    assert all(v.rule_id == rule_id for v in found)
    return found


class TestSim001WallClock:
    def test_rejects_wall_clock_and_ambient_randomness(self):
        bad = """
            import random
            import time

            def jitter():
                return time.time() + random.random()
        """
        found = violations(bad, "SIM001")
        assert len(found) == 2
        assert "time.time" in found[0].message
        assert "random.random" in found[1].message

    def test_rejects_datetime_and_uuid4(self):
        bad = """
            import datetime, uuid

            def stamp():
                return datetime.datetime.now(), uuid.uuid4()
        """
        assert len(violations(bad, "SIM001")) == 2

    def test_accepts_sim_clock_and_seeded_streams(self):
        good = """
            import numpy as np

            def jitter(sim, streams):
                rng = np.random.default_rng(7)
                return sim.now + round(streams.stream("gen").exponential(10))
        """
        assert violations(good, "SIM001") == []


class TestSim002IntegerNanoseconds:
    def test_rejects_float_into_ns_name(self):
        bad = """
            def schedule(self, size, rate):
                self.gap_ns = size * 8.0 / rate
        """
        found = violations(bad, "SIM002")
        assert len(found) == 1
        assert "gap_ns" in found[0].message

    def test_rejects_float_returning_ns_function(self):
        bad = """
            def interval_ns(size, rate) -> float:
                return size * 1000.0 / rate
        """
        assert len(violations(bad, "SIM002")) == 2  # annotation + return

    def test_accepts_rounded_assignment(self):
        good = """
            def schedule(self, size, rate):
                self.gap_ns = max(1, round(size * 8.0 / rate))
                delay_ns = self.gap_ns // 2
                return delay_ns
        """
        assert violations(good, "SIM002") == []


class TestSim003HotPathSlots:
    def test_rejects_hot_path_class_without_slots(self):
        bad = """
            class Packet:
                def __init__(self, size):
                    self.size = size
        """
        found = violations(bad, "SIM003")
        assert len(found) == 1
        assert "__slots__" in found[0].message

    def test_accepts_slots_and_slotted_dataclass(self):
        good = """
            import dataclasses

            class Packet:
                __slots__ = ("size",)

                def __init__(self, size):
                    self.size = size

            @dataclasses.dataclass(slots=True)
            class PacketDescriptor:
                packet: Packet

            class FlowTable:  # not a hot-path class: no slots needed
                def __init__(self):
                    self.rules = {}
        """
        assert violations(good, "SIM003") == []


class TestSim004NfHandlerPurity:
    def test_rejects_blocking_io_in_process(self):
        bad = """
            import time

            class LoggingNf(NetworkFunction):
                def process(self, packet, ctx):
                    print(packet)
                    time.sleep(0.1)
                    return Verdict.default()
        """
        found = violations(bad, "SIM004")
        assert len(found) == 2
        assert "print" in found[0].message
        assert "time.sleep" in found[1].message

    def test_accepts_pure_handler_and_ignores_non_nf_classes(self):
        good = """
            class CountingNf(NetworkFunction):
                def process(self, packet, ctx):
                    self.seen += 1
                    return Verdict.default()

            class ReportWriter:  # not an NF: IO is its job
                def process(self, row):
                    print(row)
        """
        assert violations(good, "SIM004") == []


class TestSim005CrossShardSharing:
    SHARDED = "src/repro/sim/sharded.py"

    def sharded_violations(self, source: str, path: str | None = None):
        found = lint_source(textwrap.dedent(source),
                            path=path or self.SHARDED, select=["SIM005"])
        assert all(v.rule_id == "SIM005" for v in found)
        return found

    def test_rejects_reaching_into_another_shards_objects(self):
        bad = """
            def steal(runtimes, i):
                host = runtimes[i].network.hosts["h0"]
                pool = runtimes[i].gens
                shards[0].manager.install_rule(None)
        """
        found = self.sharded_violations(bad)
        assert len(found) == 3
        assert "runtimes[...].network" in found[0].message
        assert "runtimes[...].gens" in found[1].message
        assert "shards[...].manager" in found[2].message

    def test_accepts_the_serialized_conductor_protocol(self):
        good = """
            def window(runtimes, upto, routed):
                for runtime in runtimes:
                    runtime.advance(upto)
                for shard_id, events in routed.items():
                    runtimes[shard_id].deliver(events)
                return [runtimes[i].collect() for i in range(len(runtimes))]
        """
        assert self.sharded_violations(good) == []

    def test_rule_is_scoped_to_the_sharded_kernel_module(self):
        elsewhere = """
            def fine(runtimes, i):
                return runtimes[i].network
        """
        assert self.sharded_violations(elsewhere,
                                       path="src/repro/core/app.py") == []

    def test_rejects_per_event_pipe_sends_in_boundary_loops(self):
        bad = """
            import pickle

            def drain(pipe, outbox):
                for event in outbox:
                    pipe.send(event)

            def stage(blobs, boundary_events):
                for event in boundary_events:
                    blobs.append(pickle.dumps(event))
        """
        found = self.sharded_violations(bad)
        assert len(found) == 2
        assert "per-event send()" in found[0].message
        assert "per-event dumps()" in found[1].message
        assert "BoundaryBatch" in found[0].message

    def test_accepts_encode_once_then_send_and_peer_loops(self):
        good = """
            import pickle

            def ship(pipe, outbox):
                payload = encode_boundary_events(outbox)
                pipe.send(payload)
                return len(pickle.dumps(payload))

            def conduct(pipes, by_worker):
                for worker in sorted(by_worker):
                    pipes[worker].send(("advance", by_worker[worker]))
        """
        assert self.sharded_violations(good) == []


class TestSim006ColumnarKernelPurity:
    def test_rejects_row_objects_and_per_row_iteration(self):
        bad = """
            from repro.net.batch import columnar_kernel

            class Kernel:
                @columnar_kernel
                def lookup(self, batch):
                    total = 0
                    for packet in batch.packets:
                        total += packet.size
                    rows = batch.materialize()
                    shadow = [packet.flow for packet in batch.packets]
                    descriptor = PacketDescriptor(rows[0])
                    return total, shadow, descriptor
        """
        found = violations(bad, "SIM006")
        assert len(found) == 4
        assert "per-row iteration" in found[0].message
        assert "materialize()" in found[1].message
        assert "comprehension" in found[2].message
        assert "PacketDescriptor()" in found[3].message

    def test_accepts_column_math_and_undecorated_row_access(self):
        good = """
            from repro.net.batch import columnar_kernel

            class Kernel:
                @columnar_kernel
                def lookup(self, batch):
                    sizes = batch.sizes()
                    return batch.count, int(sum(sizes))

                def slow_path(self, batch):  # undecorated: rows are fine
                    return [packet.size for packet in batch.packets]
        """
        assert violations(good, "SIM006") == []


class TestOwn001BufferBalance:
    def test_rejects_leaky_branch(self):
        bad = """
            def drive(pool, host, flow):
                packet = pool.alloc(flow)
                if host.ready:
                    host.inject("eth0", packet)
                # not-ready path: the buffer is never handed off
        """
        found = violations(bad, "OWN001")
        assert len(found) == 1
        assert "leak" in found[0].message

    def test_rejects_double_handoff(self):
        bad = """
            def drive(pool, host, flow):
                packet = pool.alloc(flow)
                host.inject("eth0", packet)
                packet.free()
        """
        found = violations(bad, "OWN001")
        assert len(found) == 1
        assert "more than once" in found[0].message

    def test_accepts_balanced_paths(self):
        good = """
            def drive(pool, host, flow):
                packet = pool.alloc(flow)
                if host.ready:
                    host.inject("eth0", packet)
                else:
                    packet.free()

            def make(pool, flow):
                packet = pool.alloc(flow)
                return packet
        """
        assert violations(good, "OWN001") == []


class TestFlow001IterationSafety:
    def test_rejects_mutation_while_iterating(self):
        bad = """
            def expire(table, now):
                for flow, entry in table.items():
                    if entry.expired(now):
                        del table[flow]
        """
        found = violations(bad, "FLOW001")
        assert len(found) == 1
        assert "mutated while being iterated" in found[0].message

    def test_accepts_snapshot_iteration(self):
        good = """
            def expire(table, now):
                for flow, entry in list(table.items()):
                    if entry.expired(now):
                        del table[flow]
        """
        assert violations(good, "FLOW001") == []


class TestNf001ReadOnlyTruthfulness:
    def test_rejects_read_only_class_that_writes_headers(self):
        bad = """
            import dataclasses

            class SneakyMarker(NetworkFunction):
                read_only = True

                def process(self, packet, ctx):
                    packet.ip = dataclasses.replace(packet.ip, dscp=10)
                    return Verdict.default()
        """
        found = violations(bad, "NF001")
        assert len(found) == 1
        assert "read_only=True" in found[0].message
        assert "dscp" in found[0].message

    def test_rejects_read_only_class_that_drops(self):
        bad = """
            class QuietDropper(NetworkFunction):
                read_only = True

                def process(self, packet, ctx):
                    if packet.flow.src_port == 23:
                        return Verdict.discard()
                    return Verdict.default()
        """
        found = violations(bad, "NF001")
        assert len(found) == 1
        assert "DROP" in found[0].message

    def test_accepts_honest_reader_and_annotation_writer(self):
        good = """
            class Counter(NetworkFunction):
                read_only = True

                def process(self, packet, ctx):
                    self.seen += 1
                    packet.annotations["counted"] = True
                    return Verdict.default()

            class Rewriter(NetworkFunction):
                read_only = False

                def process(self, packet, ctx):
                    packet.payload = b""
                    return Verdict.default()
        """
        assert violations(good, "NF001") == []

    def test_noqa_escape_hatch(self):
        source = textwrap.dedent("""
            class Dropper(NetworkFunction):
                read_only = True  # sdnfv: noqa NF001 (drop is a verdict)

                def process(self, packet, ctx):
                    return Verdict.discard()
        """)
        assert lint_source(source, select=["NF001"]) == []


class TestNf002DeclaredVsInferred:
    def test_rejects_under_declared_profile(self):
        bad = """
            import dataclasses
            from repro.nfs.base import action_profile

            @action_profile(reads=("src_ip",))
            class Marker(NetworkFunction):
                def process(self, packet, ctx):
                    packet.ip = dataclasses.replace(packet.ip, ttl=7)
                    return Verdict.default()
        """
        found = violations(bad, "NF002")
        assert len(found) == 1
        assert "ttl" in found[0].message

    def test_rejects_undeclared_drop_and_send(self):
        bad = """
            from repro.nfs.base import action_profile

            @action_profile(reads=("src_ip",))
            class Diverter(NetworkFunction):
                def process(self, packet, ctx):
                    if packet.flow.src_ip == "10.0.0.1":
                        return Verdict.send_to_service("ids")
                    return Verdict.discard()
        """
        found = violations(bad, "NF002")
        assert len(found) == 1
        assert "SEND" in found[0].message
        assert "DROP" in found[0].message

    def test_accepts_covering_declaration(self):
        good = """
            import dataclasses
            from repro.nfs.base import action_profile

            @action_profile(reads=("src_ip", "dst_ip", "protocol",
                                   "ttl", "dscp"),
                            writes=("ttl",), annotations_written=("hops",))
            class Marker(NetworkFunction):
                def process(self, packet, ctx):
                    packet.ip = dataclasses.replace(packet.ip, ttl=7)
                    packet.annotations["hops"] = 1
                    return Verdict.default()
        """
        assert violations(good, "NF002") == []

    def test_over_declaration_is_allowed(self):
        # Declaring more than the handler does is conservative, not wrong.
        good = """
            from repro.nfs.base import action_profile

            @action_profile(reads=("src_ip", "dst_ip"), drops=True)
            class Reader(NetworkFunction):
                def process(self, packet, ctx):
                    return Verdict.default()
        """
        assert violations(good, "NF002") == []


class TestNf003ConflictingParallelGroups:
    def test_rejects_hand_built_group_with_conflicting_writers(self):
        bad = """
            import dataclasses

            class MarkerA(NetworkFunction):
                def process(self, packet, ctx):
                    packet.ip = dataclasses.replace(packet.ip, dscp=1)
                    return Verdict.default()

            class MarkerB(NetworkFunction):
                def process(self, packet, ctx):
                    packet.ip = dataclasses.replace(packet.ip, dscp=2)
                    return Verdict.default()

            def wire(manager):
                MarkerA("ma")
                MarkerB("mb")
                manager.register_parallel_chain(["ma", "mb"])
        """
        found = violations(bad, "NF003")
        assert len(found) == 1
        assert "write/write" in found[0].message

    def test_rejects_conflicting_flow_entry_parallel_actions(self):
        bad = """
            import dataclasses

            class MarkerA(NetworkFunction):
                def process(self, packet, ctx):
                    packet.ip = dataclasses.replace(packet.ip, dscp=1)
                    return Verdict.default()

            class MarkerB(NetworkFunction):
                def process(self, packet, ctx):
                    packet.ip = dataclasses.replace(packet.ip, dscp=2)
                    return Verdict.default()

            def wire(table):
                MarkerA("ma")
                MarkerB("mb")
                table.install(FlowTableEntry(
                    parallel=True,
                    actions=(ToService("ma"), ToService("mb"))))
        """
        found = violations(bad, "NF003")
        assert len(found) == 1

    def test_accepts_disjoint_writers_and_readers(self):
        good = """
            import dataclasses

            class TtlMarker(NetworkFunction):
                def process(self, packet, ctx):
                    packet.ip = dataclasses.replace(packet.ip, ttl=9)
                    return Verdict.default()

            class Anonymizer(NetworkFunction):
                def process(self, packet, ctx):
                    packet.payload = b""
                    packet.annotations["scrubbed"] = True
                    return Verdict.default()

            def wire(manager):
                TtlMarker("ttl")
                Anonymizer("anon")
                manager.register_parallel_chain(["ttl", "anon"])
        """
        assert violations(good, "NF003") == []

    def test_silent_when_members_unresolvable(self):
        # Dynamic group construction can't be checked statically.
        good = """
            def wire(manager, names):
                manager.register_parallel_chain(names)
                manager.register_parallel_chain(["mystery_service"])
        """
        assert violations(good, "NF003") == []


class TestEngine:
    def test_noqa_suppresses_named_rule_only(self):
        source = textwrap.dedent("""
            import time

            def wall():
                return time.time()  # sdnfv: noqa SIM001 (telemetry)
        """)
        assert lint_source(source) == []
        # A different rule's ID does not suppress SIM001.
        other = source.replace("SIM001", "SIM002")
        assert len(lint_source(other)) == 1

    def test_bare_noqa_suppresses_everything(self):
        source = textwrap.dedent("""
            import time

            def wall():
                return time.time()  # sdnfv: noqa
        """)
        assert lint_source(source) == []

    def test_select_runs_only_named_rules(self):
        source = textwrap.dedent("""
            import time

            class Packet:
                pass

            def wall():
                return time.time()
        """)
        assert {v.rule_id for v in lint_source(source)} == {"SIM001",
                                                            "SIM003"}
        only = lint_source(source, select=["SIM003"])
        assert [v.rule_id for v in only] == ["SIM003"]

    def test_violation_rendering_is_path_line_col(self):
        found = lint_source("import time\nx = time.time()\n",
                            path="pkg/mod.py")
        assert str(found[0]).startswith("pkg/mod.py:2:5: SIM001")

    def test_all_rules_registered(self):
        assert set(RULES) == {"SIM001", "SIM002", "SIM003", "SIM004",
                              "SIM005", "SIM006", "OWN001", "FLOW001",
                              "NF001", "NF002", "NF003"}


class TestSelfLint:
    def test_src_repro_lints_clean(self):
        """The acceptance gate: the repo passes its own lint."""
        assert lint_paths([REPO / "src" / "repro"]) == []

    def test_cli_exit_codes(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nx = time.time()\n")
        script = str(REPO / "tools" / "sdnfv_lint.py")
        ok = subprocess.run([sys.executable, script, str(clean)],
                            capture_output=True, text=True)
        assert ok.returncode == 0
        bad = subprocess.run([sys.executable, script, str(dirty)],
                             capture_output=True, text=True)
        assert bad.returncode == 1
        assert "SIM001" in bad.stdout
        usage = subprocess.run([sys.executable, script],
                               capture_output=True, text=True)
        assert usage.returncode == 2

    def test_cli_json_format(self, tmp_path):
        import json as json_mod
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nx = time.time()\n")
        script = str(REPO / "tools" / "sdnfv_lint.py")
        run = subprocess.run(
            [sys.executable, script, "--format", "json", str(dirty)],
            capture_output=True, text=True)
        assert run.returncode == 1
        payload = json_mod.loads(run.stdout)
        assert payload[0]["rule_id"] == "SIM001"
        assert payload[0]["line"] == 2
        assert payload[0]["path"].endswith("dirty.py")

    def test_cli_sarif_format(self, tmp_path):
        import json as json_mod
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nx = time.time()\n")
        script = str(REPO / "tools" / "sdnfv_lint.py")
        ok = subprocess.run(
            [sys.executable, script, "--format", "sarif", str(clean)],
            capture_output=True, text=True)
        assert ok.returncode == 0
        log = json_mod.loads(ok.stdout)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"] == []
        rule_ids = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
        assert {"SIM001", "NF001", "NF002", "NF003"} <= rule_ids
        bad = subprocess.run(
            [sys.executable, script, "--format", "sarif", str(dirty)],
            capture_output=True, text=True)
        assert bad.returncode == 1
        result = json_mod.loads(bad.stdout)["runs"][0]["results"][0]
        assert result["ruleId"] == "SIM001"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
