"""Service graph tests: construction, validation, compilation, chains."""

import pytest

from repro.core import DROP, EXIT, ServiceGraph
from repro.dataplane import Drop, ToPort, ToService
from repro.net import FlowMatch


def anomaly_graph():
    """The §2.2 anomaly-detection graph (Fig. 3, left)."""
    graph = ServiceGraph("anomaly")
    graph.add_service("firewall", read_only=True)
    graph.add_service("sampler", read_only=True)
    graph.add_service("ddos", read_only=True)
    graph.add_service("ids", read_only=True)
    graph.add_service("scrubber")
    graph.add_edge("firewall", "sampler", default=True)
    graph.add_edge("sampler", EXIT, default=True)  # unsampled traffic
    graph.add_edge("sampler", "ddos")              # sampled traffic
    graph.add_edge("ddos", "ids", default=True)
    graph.add_edge("ids", EXIT, default=True)
    graph.add_edge("ids", "scrubber")
    graph.add_edge("scrubber", EXIT, default=True)
    graph.add_edge("scrubber", DROP)
    graph.set_entry("firewall")
    return graph


def video_graph():
    """A simplified Fig. 4 video-optimizer graph."""
    graph = ServiceGraph("video")
    graph.add_service("vd", read_only=True)
    graph.add_service("pe")
    graph.add_service("tc")
    graph.add_service("cache")
    graph.add_edge("vd", "pe", default=True)
    graph.add_edge("vd", EXIT)
    graph.add_edge("pe", "tc", default=True)
    graph.add_edge("pe", "cache")
    graph.add_edge("tc", "cache", default=True)
    graph.add_edge("cache", EXIT, default=True)
    graph.set_entry("vd")
    return graph


class TestConstruction:
    def test_duplicate_service_rejected(self):
        graph = ServiceGraph("g")
        graph.add_service("a")
        with pytest.raises(ValueError):
            graph.add_service("a")

    def test_reserved_names_rejected(self):
        graph = ServiceGraph("g")
        with pytest.raises(ValueError):
            graph.add_service(EXIT)

    def test_edge_requires_known_vertices(self):
        graph = ServiceGraph("g")
        graph.add_service("a")
        with pytest.raises(ValueError):
            graph.add_edge("a", "ghost")
        with pytest.raises(ValueError):
            graph.add_edge("ghost", "a")

    def test_single_default_per_vertex(self):
        graph = ServiceGraph("g")
        graph.add_service("a")
        graph.add_service("b")
        graph.add_edge("a", "b", default=True)
        with pytest.raises(ValueError):
            graph.add_edge("a", EXIT, default=True)

    def test_duplicate_edge_rejected(self):
        graph = ServiceGraph("g")
        graph.add_service("a")
        graph.add_edge("a", EXIT, default=True)
        with pytest.raises(ValueError):
            graph.add_edge("a", EXIT)

    def test_graph_needs_name(self):
        with pytest.raises(ValueError):
            ServiceGraph("")


class TestValidation:
    def test_valid_graphs_pass(self):
        anomaly_graph().validate()
        video_graph().validate()

    def test_entry_required(self):
        graph = ServiceGraph("g")
        graph.add_service("a")
        graph.add_edge("a", EXIT, default=True)
        with pytest.raises(ValueError, match="entry"):
            graph.validate()

    def test_cycle_detected(self):
        graph = ServiceGraph("g")
        graph.add_service("a")
        graph.add_service("b")
        graph.add_edge("a", "b", default=True)
        graph.add_edge("b", "a", default=True)
        graph.set_entry("a")
        with pytest.raises(ValueError, match="cycle"):
            graph.validate()

    def test_unreachable_service_detected(self):
        graph = ServiceGraph("g")
        graph.add_service("a")
        graph.add_service("island")
        graph.add_edge("a", EXIT, default=True)
        graph.add_edge("island", EXIT, default=True)
        graph.set_entry("a")
        with pytest.raises(ValueError, match="unreachable"):
            graph.validate()

    def test_dead_end_detected(self):
        graph = ServiceGraph("g")
        graph.add_service("a")
        graph.add_service("b")
        graph.add_edge("a", "b", default=True)
        graph.set_entry("a")
        with pytest.raises(ValueError, match="default|exit"):
            graph.validate()

    def test_missing_default_detected(self):
        graph = ServiceGraph("g")
        graph.add_service("a")
        graph.add_edge("a", EXIT)
        graph.set_entry("a")
        with pytest.raises(ValueError, match="default"):
            graph.validate()


class TestQueries:
    def test_out_edges_default_first(self):
        graph = anomaly_graph()
        edges = graph.out_edges("sampler")
        assert edges[0].dst == EXIT and edges[0].default
        assert {edge.dst for edge in edges[1:]} == {"ddos"}

    def test_default_successor(self):
        graph = anomaly_graph()
        assert graph.default_successor("firewall") == "sampler"
        assert graph.default_successor("ddos") == "ids"

    def test_services_excludes_sentinels(self):
        graph = anomaly_graph()
        assert EXIT not in graph.services
        assert DROP not in graph.services

    def test_predecessors(self):
        graph = anomaly_graph()
        assert graph.predecessors("ids") == ["ddos"]


class TestCompilation:
    def test_single_host_rules(self, flow):
        rules = video_graph().compile_rules(ingress_port="eth0",
                                            exit_port="eth1")
        by_scope = {rule.scope: rule for rule in rules}
        assert by_scope["eth0"].actions == (ToService("vd"),)
        assert by_scope["vd"].actions == (ToService("pe"), ToPort("eth1"))
        assert by_scope["pe"].actions == (ToService("tc"),
                                          ToService("cache"))
        assert by_scope["cache"].actions == (ToPort("eth1"),)

    def test_drop_edges_compile_to_drop(self):
        rules = anomaly_graph().compile_rules(ingress_port="eth0",
                                              exit_port="eth1")
        scrubber = next(rule for rule in rules if rule.scope == "scrubber")
        assert scrubber.actions == (ToPort("eth1"), Drop())

    def test_match_propagates_to_all_rules(self, flow):
        match = FlowMatch(dst_port=80)
        rules = video_graph().compile_rules(ingress_port="eth0",
                                            exit_port="eth1", match=match)
        assert all(rule.match == match for rule in rules)

    def test_compile_validates_graph(self):
        graph = ServiceGraph("g")
        graph.add_service("a")
        with pytest.raises(ValueError):
            graph.compile_rules(ingress_port="eth0", exit_port="eth1")

    def test_multi_host_split(self):
        """Fig. 3's two-host deployment: edges crossing hosts become
        port actions; the downstream ingress picks up mid-graph."""
        graph = video_graph()
        placement = {"vd": "host1", "pe": "host1",
                     "tc": "host2", "cache": "host2"}
        ports = {("host1", "host2"): "trunk1",
                 ("host2", "host1"): "trunk2"}
        rules1 = graph.compile_rules(
            ingress_port="eth0", exit_port="eth1", placement=placement,
            host="host1", inter_host_ports=ports)
        by_scope1 = {rule.scope: rule for rule in rules1}
        assert by_scope1["eth0"].actions == (ToService("vd"),)
        # pe's default edge (tc) crosses to host2 via the trunk.
        assert by_scope1["pe"].actions[0] == ToPort("trunk1")
        assert "tc" not in by_scope1

        rules2 = graph.compile_rules(
            ingress_port="trunk2", exit_port="eth1", placement=placement,
            host="host2", inter_host_ports=ports)
        by_scope2 = {rule.scope: rule for rule in rules2}
        #

        # Packets arriving on host2 head to the first local default hop.
        assert by_scope2["trunk2"].actions == (ToService("tc"),)
        assert by_scope2["tc"].actions == (ToService("cache"),)
        assert by_scope2["cache"].actions == (ToPort("eth1"),)


class TestParallelChains:
    def test_ddos_ids_fused(self):
        # firewall→sampler also fuses: every packet leaving the firewall
        # goes to the sampler and both are read-only (the same §3.3
        # condition that fuses ddos→ids).
        chains = anomaly_graph().parallel_chains()
        assert chains == [["firewall", "sampler"], ["ddos", "ids"]]

    def test_non_read_only_blocks_fusion(self):
        graph = ServiceGraph("g")
        graph.add_service("a", read_only=True)
        graph.add_service("b", read_only=False)
        graph.add_edge("a", "b", default=True)
        graph.add_edge("b", EXIT, default=True)
        graph.set_entry("a")
        assert graph.parallel_chains() == []

    def test_branching_blocks_fusion_forward(self):
        """A vertex with two out-edges can't fuse with its successors
        (not every packet goes there) — it may only end a chain."""
        graph = anomaly_graph()
        chains = graph.parallel_chains()
        for chain in chains:
            # sampler branches, so it never appears mid-chain.
            assert "sampler" not in chain[:-1]
        # And no chain continues past the branch into ddos via sampler.
        assert ["sampler", "ddos"] not in [chain[-2:] for chain in chains]

    def test_long_chain_fused_whole(self):
        graph = ServiceGraph("g")
        for name in ("a", "b", "c"):
            graph.add_service(name, read_only=True)
        graph.add_edge("a", "b", default=True)
        graph.add_edge("b", "c", default=True)
        graph.add_edge("c", EXIT, default=True)
        graph.set_entry("a")
        assert graph.parallel_chains() == [["a", "b", "c"]]

    def test_multiple_in_edges_block_fusion(self):
        graph = ServiceGraph("g")
        for name, ro in (("a", True), ("b", True), ("x", True)):
            graph.add_service(name, read_only=ro)
        graph.add_edge("a", "b", default=True)
        graph.add_edge("x", "b", default=True)
        graph.add_edge("b", EXIT, default=True)
        graph.set_entry("a")
        # b has two predecessors: fusing a→b would steal x's traffic.
        assert graph.parallel_chains() == []
