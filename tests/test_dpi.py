"""DPI protocol classifier tests."""

import pytest

from repro.dataplane import FlowTableEntry, NfvHost, ToPort, ToService
from repro.dataplane.actions import NfVerdict
from repro.net import FiveTuple, FlowMatch, HttpRequest, Packet
from repro.net.headers import PROTO_TCP, PROTO_UDP
from repro.net.memcached import MemcachedRequest
from repro.nfs import (
    PROTOCOL_ANNOTATION,
    CounterNf,
    ProtocolClassifier,
    classify_payload,
)
from repro.nfs.base import NfContext
from repro.sim import MS


def _ctx(sim):
    import numpy as np
    return NfContext(sim=sim, service_id="dpi", vm_id="vm-d",
                     submit_message=lambda m: None,
                     rng=np.random.default_rng(0))


class TestClassifyPayload:
    @pytest.mark.parametrize("payload,expected", [
        ("GET /index.html HTTP/1.1", "http"),
        ("HTTP/1.1 200 OK\r\n\r\n", "http"),
        ("POST /api HTTP/1.1", "http"),
        ("get user:42\r\n", "memcached"),
        ("VALUE user:42 0 5\r\nhello\r\nEND\r\n", "memcached"),
        ("\x16\x03\x01\x02\x00", "tls"),
        ("", "unknown"),
        ("random bytes", "unknown"),
    ])
    def test_signatures(self, payload, expected):
        assert classify_payload(payload) == expected


class TestProtocolClassifier:
    def test_flow_keeps_first_classification(self, sim, flow):
        dpi = ProtocolClassifier("dpi")
        ctx = _ctx(sim)
        first = Packet(flow=flow, payload="GET / HTTP/1.1")
        dpi.process(first, ctx)
        # Later opaque data packets inherit the flow's protocol.
        data = Packet(flow=flow, payload="")
        dpi.process(data, ctx)
        assert data.annotations[PROTOCOL_ANNOTATION] == "http"
        assert dpi.protocol_of(flow) == "http"

    def test_unknown_upgrades_when_signature_appears(self, sim, flow):
        dpi = ProtocolClassifier("dpi")
        ctx = _ctx(sim)
        dpi.process(Packet(flow=flow, payload=""), ctx)
        assert dpi.protocol_of(flow) == "unknown"
        dpi.process(Packet(flow=flow,
                           payload="get key1\r\n"), ctx)
        assert dpi.protocol_of(flow) == "memcached"

    def test_steering_sends_to_mapped_service(self, sim, flow):
        dpi = ProtocolClassifier("dpi", steering={"http": "cache"})
        verdict = dpi.process(
            Packet(flow=flow, payload="GET / HTTP/1.1"), _ctx(sim))
        assert verdict.kind is NfVerdict.SEND
        assert verdict.destination == ToService("cache")

    def test_unsteered_protocol_defaults(self, sim, flow):
        dpi = ProtocolClassifier("dpi", steering={"http": "cache"})
        verdict = dpi.process(
            Packet(flow=flow, payload="\x16\x03\x01"), _ctx(sim))
        assert verdict.kind is NfVerdict.DEFAULT
        assert dpi.counts["tls"] == 1

    def test_scan_cost_scales(self, sim, flow):
        dpi = ProtocolClassifier("dpi", scan_ns_per_byte=1.0)
        ctx = _ctx(sim)
        small = dpi.processing_cost_ns(Packet(flow=flow, payload="x"),
                                       ctx)
        big = dpi.processing_cost_ns(
            Packet(flow=flow, payload="x" * 2000), ctx)
        assert big > small

    def test_in_dataplane_with_steering(self, sim):
        """HTTP to the cache path, memcached straight out."""
        host = NfvHost(sim, name="dpi0")
        dpi = ProtocolClassifier("dpi", steering={"http": "cachecounter"})
        cache_counter = CounterNf("cachecounter")
        host.add_nf(dpi)
        host.add_nf(cache_counter)
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToService("dpi"),)))
        host.install_rule(FlowTableEntry(
            scope="dpi", match=FlowMatch.any(),
            actions=(ToPort("eth1"), ToService("cachecounter"))))
        host.install_rule(FlowTableEntry(
            scope="cachecounter", match=FlowMatch.any(),
            actions=(ToPort("eth1"),)))
        out = []
        host.port("eth1").on_egress = out.append
        web = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, 1, 80)
        mc = FiveTuple("10.0.0.1", "10.0.0.3", PROTO_UDP, 2, 11211)
        host.inject("eth0", Packet(
            flow=web, size=256,
            payload=HttpRequest(path="/x").serialize()))
        host.inject("eth0", Packet(
            flow=mc, size=128,
            payload=MemcachedRequest(command="get", key="k").serialize()))
        sim.run(until=10 * MS)
        assert len(out) == 2
        assert cache_counter.packets_seen == 1  # only the HTTP packet
        assert dpi.counts == {"http": 1, "memcached": 1}
