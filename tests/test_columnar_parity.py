"""Columnar parity: the struct-of-arrays burst kernel is behaviorally
invisible.

Two fixed-seed Fig. 7 runs of the same workload — one on the object
pipeline (``columnar=False``, the default), one on the columnar batch
path — must be *indistinguishable* in everything the simulation
observes: packet-for-packet delivery order, every latency sample, every
drop counter, and the kernel's event odometer.  Moving packets as
struct-of-arrays columns may only change how the host iterates, never
what the data plane does.

The same holds for the numpy-optional column backend: with
``SDNFV_NO_NUMPY`` set the stdlib ``array`` fallback must reproduce the
numpy run byte-identically on workloads that draw nothing from the RNG
(uniform pacing, zero wire jitter) — checked via a subprocess.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.dataplane import NfvHost
from repro.dataplane.costs import HostCosts
from repro.net import FiveTuple
from repro.nfs import CounterNf, NoOpNf
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain

WINDOW_NS = 1 * MS

#: The saturation point: burst-32 RX batches fill completely (Fig. 7's
#: max-throughput regime, where the columnar kernel actually batches).
SATURATED_MBPS = 16_000.0

#: Counters allowed to differ: they *describe the columnar path itself*.
COLUMNAR_KEYS = ("columnar_batches", "object_fallbacks", "lookup_batches",
                 "lookup_batch_hits", "batch_splits", "batch_merges")


class SlowNf(NoOpNf):
    """A NoOp with a data-dependent cost override: disqualifies the VM
    batch fast path, forcing the pre-work explode to descriptors."""

    def processing_cost_ns(self, packet, ctx):
        return 400


def run_fig7(columnar: bool, *, rate_mbps: float = SATURATED_MBPS,
             flow_count: int = 1, nf_factory=NoOpNf, replicas: int = 1,
             ring_slots: int = 256, verify: bool = False,
             jitter: bool = True):
    """One deterministic Fig. 7-style run; returns everything observable."""
    sim = Simulator()
    costs = None if jitter else HostCosts(wire_jitter_ns=0)
    host = NfvHost(sim, name="parity", columnar=columnar, costs=costs,
                   verify=verify)
    nfs = []
    for service in ("nf0", "nf1"):
        for _ in range(replicas):
            nfs.append(nf_factory(service))
            host.add_nf(nfs[-1], ring_slots=ring_slots)
    install_chain(host, ["nf0", "nf1"])
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1234, 80)
    gen = PktGen(sim, host, window_ns=MS)
    gen.add_flow(FlowSpec(flow=flow, rate_mbps=rate_mbps, packet_size=64,
                          stop_ns=WINDOW_NS, flow_count=flow_count))

    deliveries: list[tuple[int, int, FiveTuple]] = []
    measured_hook = host.port("eth1").on_egress

    def recording_hook(packet):
        deliveries.append((sim.now, packet.created_at, packet.flow))
        measured_hook(packet)

    host.port("eth1").on_egress = recording_hook
    sim.run(until=WINDOW_NS + MS)
    return {
        "deliveries": deliveries,
        "latency_samples": gen.latency.samples_ns,
        "summary": host.stats.summary(),
        "events_scheduled": sim.events_scheduled,
        "timers_scheduled": sim.timers_scheduled,
        "events_cancelled": sim.events_cancelled,
        "sent": gen.sent,
        "received": gen.received,
        "gbps": gen.rx_meter.mean_gbps(),
        "host": host,
        "nfs": nfs,
    }


def assert_parity(columnar: dict, object_path: dict) -> None:
    """Everything observable matches, modulo the columnar self-counters."""
    assert columnar["deliveries"] == object_path["deliveries"]
    assert columnar["latency_samples"] == object_path["latency_samples"]
    assert columnar["events_scheduled"] == object_path["events_scheduled"]
    assert columnar["timers_scheduled"] == object_path["timers_scheduled"]
    assert columnar["events_cancelled"] == object_path["events_cancelled"]
    assert columnar["sent"] == object_path["sent"]
    assert columnar["received"] == object_path["received"]
    assert columnar["gbps"] == object_path["gbps"]
    columnar_summary = {k: v for k, v in columnar["summary"].items()
                        if k not in COLUMNAR_KEYS}
    object_summary = {k: v for k, v in object_path["summary"].items()
                      if k not in COLUMNAR_KEYS}
    assert columnar_summary == object_summary
    # The object run must not have touched the columnar machinery at all.
    for key in COLUMNAR_KEYS:
        assert object_path["summary"][key] == 0


def test_saturated_columnar_run_is_identical_to_object_run():
    """Burst-32 batches, 8 interleaved flows: splits, merges, and the
    vectorized lookup all engage — and nothing observable moves."""
    columnar = run_fig7(columnar=True, flow_count=8)
    object_path = run_fig7(columnar=False, flow_count=8)
    assert_parity(columnar, object_path)

    summary = columnar["summary"]
    assert summary["columnar_batches"] > 0
    assert summary["lookup_batches"] > 0
    assert summary["lookup_batch_hits"] > 0
    # A pure NoOp chain never needs rich packet objects.
    assert summary["object_fallbacks"] == 0
    assert columnar["received"] > 1000


def test_tight_rings_split_and_merge_batches_identically():
    """Small rings at an over-saturated rate force enqueue splits and
    TX-burst merges — the structural batch ops stay invisible too."""
    columnar = run_fig7(columnar=True, rate_mbps=24_000.0, ring_slots=48)
    object_path = run_fig7(columnar=False, rate_mbps=24_000.0,
                           ring_slots=48)
    assert_parity(columnar, object_path)
    summary = columnar["summary"]
    assert summary["batch_splits"] > 0
    assert summary["batch_merges"] > 0
    assert summary["dropped_ring_full"] > 0


def test_trickle_rate_single_packet_batches_stay_identical():
    """Below saturation every RX burst is one packet — the degenerate
    batch shape must still be exact."""
    columnar = run_fig7(columnar=True, rate_mbps=8_000.0)
    object_path = run_fig7(columnar=False, rate_mbps=8_000.0)
    assert_parity(columnar, object_path)
    assert columnar["summary"]["columnar_batches"] > 0


def test_multi_replica_service_falls_back_to_objects():
    """Load-balanced services take the per-packet explode path (bulk
    dispatch is single-replica only) and still match exactly."""
    columnar = run_fig7(columnar=True, replicas=2)
    object_path = run_fig7(columnar=False, replicas=2)
    assert_parity(columnar, object_path)
    assert columnar["summary"]["object_fallbacks"] > 0


def test_counter_nf_batch_handler_sees_identical_traffic():
    """An NF with a real process_batch keeps byte-identical per-flow
    state across the two paths."""
    columnar = run_fig7(columnar=True, flow_count=4, nf_factory=CounterNf)
    object_path = run_fig7(columnar=False, flow_count=4,
                           nf_factory=CounterNf)
    assert_parity(columnar, object_path)
    for columnar_nf, object_nf in zip(columnar["nfs"], object_path["nfs"],
                                      strict=True):
        assert columnar_nf.packets == object_nf.packets
        assert columnar_nf.bytes == object_nf.bytes
        assert sum(columnar_nf.packets.values()) > 0


def test_custom_cost_nf_explodes_batches_before_the_work_sleep():
    """A processing_cost_ns override disqualifies the VM fast path; the
    per-descriptor explode must charge the same costs at the same
    instants as the object pipeline."""
    columnar = run_fig7(columnar=True, nf_factory=SlowNf)
    object_path = run_fig7(columnar=False, nf_factory=SlowNf)
    assert_parity(columnar, object_path)
    assert columnar["summary"]["object_fallbacks"] > 0


def test_columnar_run_passes_the_ownership_verifier():
    """Batch moves keep every buffer handed off exactly once."""
    result = run_fig7(columnar=True, flow_count=8, verify=True)
    result["host"].verifier.assert_clean()
    assert result["summary"]["columnar_batches"] > 0


# ----------------------------------------------------------------------
# numpy-absent parity (stdlib ``array`` column backend)
# ----------------------------------------------------------------------

#: A self-contained jitter-free columnar run printed as JSON: uniform
#: pacing + wire_jitter_ns=0 draw nothing from the RNG, so the numpy
#: and fallback backends must agree bit-for-bit.
_RUNNER = """
import json
from repro._compat import HAVE_NUMPY
from repro.dataplane import FlowTableEntry, NfvHost, ToPort, ToService
from repro.dataplane.costs import HostCosts
from repro.net import FiveTuple, FlowMatch
from repro.nfs import NoOpNf
from repro.sim import MS, Simulator
from repro.workloads import FlowSpec, PktGen

sim = Simulator()
host = NfvHost(sim, name="parity", columnar=True,
               costs=HostCosts(wire_jitter_ns=0))
for service in ("nf0", "nf1"):
    host.add_nf(NoOpNf(service), ring_slots=256)
match = FlowMatch.any()
host.install_rule(FlowTableEntry(scope="eth0", match=match,
                                 actions=(ToService("nf0"),)))
host.install_rule(FlowTableEntry(scope="nf0", match=match,
                                 actions=(ToService("nf1"),)))
host.install_rule(FlowTableEntry(scope="nf1", match=match,
                                 actions=(ToPort("eth1"),)))
flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, 1234, 80)
gen = PktGen(sim, host, window_ns=MS)
gen.add_flow(FlowSpec(flow=flow, rate_mbps=16_000.0, packet_size=64,
                      stop_ns=MS, flow_count=8))
deliveries = []
measured = host.port("eth1").on_egress
def hook(packet):
    deliveries.append((sim.now, packet.created_at, str(packet.flow)))
    measured(packet)
host.port("eth1").on_egress = hook
sim.run(until=2 * MS)
print(json.dumps({
    "have_numpy": HAVE_NUMPY,
    "deliveries": deliveries,
    "latency_samples": gen.latency.samples_ns,
    "summary": host.stats.summary(),
    "odometer": [sim.events_scheduled, sim.timers_scheduled,
                 sim.events_cancelled],
    "sent": gen.sent,
    "received": gen.received,
}))
"""


def _run_subprocess(no_numpy: bool) -> dict:
    env = dict(os.environ)
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(repo, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if no_numpy:
        env["SDNFV_NO_NUMPY"] = "1"
    else:
        env.pop("SDNFV_NO_NUMPY", None)
    done = subprocess.run([sys.executable, "-c", _RUNNER], env=env,
                          capture_output=True, text=True, timeout=600)
    assert done.returncode == 0, done.stderr
    return json.loads(done.stdout)


def test_stdlib_array_backend_matches_numpy_backend_exactly():
    with_numpy = _run_subprocess(no_numpy=False)
    without_numpy = _run_subprocess(no_numpy=True)
    assert without_numpy["have_numpy"] is False
    assert without_numpy["deliveries"] == with_numpy["deliveries"]
    assert without_numpy["latency_samples"] == with_numpy["latency_samples"]
    assert without_numpy["summary"] == with_numpy["summary"]
    assert without_numpy["odometer"] == with_numpy["odometer"]
    assert without_numpy["sent"] == with_numpy["sent"]
    assert without_numpy["received"] == with_numpy["received"]
    assert without_numpy["summary"]["columnar_batches"] > 0
    assert without_numpy["received"] > 1000
