"""Tests for the extension features: rule timeouts, the analytic latency
predictor (cross-checked against the DES), NAT, and trace replay."""

import pytest

from repro.dataplane import (
    FlowTableEntry,
    HostCosts,
    NfvHost,
    ToPort,
    ToService,
)
from repro.dataplane.analysis import (
    predict_rtt_ns,
    predict_throughput_gbps,
    stage_rates_pps,
)
from repro.dataplane.flow_table import FlowTable
from repro.net import FiveTuple, FlowMatch, Packet
from repro.net.headers import PROTO_TCP, PROTO_UDP
from repro.nfs import NatError, NoOpNf, SourceNat
from repro.nfs.base import NfContext
from repro.sim import MS, Simulator, US
from repro.workloads import (
    FlowSpec,
    PktGen,
    TraceRecord,
    TraceReplayer,
    trace_from_csv,
    trace_to_csv,
)

from tests.conftest import install_chain


class TestRuleTimeouts:
    def _rule(self, **kw):
        return FlowTableEntry(scope="svc", match=FlowMatch.any(),
                              actions=(ToPort("eth1"),), **kw)

    def test_hard_timeout_expires(self):
        table = FlowTable()
        rule = self._rule(hard_timeout_ns=1000)
        table.install(rule)
        assert table.expire(now_ns=500) == []
        expired = table.expire(now_ns=1000)
        assert expired == [rule]
        assert len(table) == 0

    def test_idle_timeout_refreshed_by_lookup(self, flow):
        table = FlowTable()
        rule = self._rule(idle_timeout_ns=1000)
        table.install(rule)
        table.lookup("svc", flow, now_ns=800)  # refresh
        assert table.expire(now_ns=1500) == []
        assert table.expire(now_ns=1800) == [rule]

    def test_zero_timeouts_never_expire(self):
        table = FlowTable()
        table.install(self._rule())
        assert table.expire(now_ns=10**15) == []
        assert len(table) == 1

    def test_manager_expiry_loop(self, sim, flow):
        host = NfvHost(sim, name="exp0")
        host.add_nf(NoOpNf("svc"))
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.exact(flow),
            actions=(ToService("svc"),), hard_timeout_ns=5 * MS))
        host.install_rule(FlowTableEntry(
            scope="svc", match=FlowMatch.any(),
            actions=(ToPort("eth1"),)))
        host.manager.start_rule_expiry(interval_ns=1 * MS)
        assert len(host.flow_table) == 2
        sim.run(until=10 * MS)
        # The per-flow ingress rule aged out; the wildcard stayed.
        assert len(host.flow_table) == 1
        assert host.flow_table.lookup("eth0", flow) is None

    def test_expiry_interval_validated(self, sim, host):
        with pytest.raises(ValueError):
            host.manager.start_rule_expiry(0)


class TestAnalyticPredictions:
    """The closed forms must agree with the discrete-event simulation."""

    def _simulate(self, build, packets=400):
        sim = Simulator()
        costs = HostCosts(wire_jitter_ns=0)  # deterministic for the check
        host = build(sim, costs)
        flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, 1, 80)
        gen = PktGen(sim, host)
        gen.add_flow(FlowSpec(flow=flow, rate_mbps=100.0,
                              packet_size=1000, stop_ns=40 * MS))
        sim.run(until=80 * MS)
        return gen.latency.mean_us()

    def test_rtt_prediction_dpdk(self):
        from repro.baselines import make_dpdk_forwarder
        measured = self._simulate(
            lambda sim, costs: make_dpdk_forwarder(sim, costs=costs))
        predicted = predict_rtt_ns(HostCosts(), sequential_vms=0,
                                   first_packet=False) / 1000
        assert measured == pytest.approx(predicted, abs=0.2)

    @pytest.mark.parametrize("vms", [1, 2, 3])
    def test_rtt_prediction_sequential(self, vms):
        def build(sim, costs):
            host = NfvHost(sim, name=f"an{vms}", costs=costs)
            services = [f"s{i}" for i in range(vms)]
            for service in services:
                host.add_nf(NoOpNf(service))
            install_chain(host, services)
            return host

        measured = self._simulate(build)
        predicted = predict_rtt_ns(HostCosts(), sequential_vms=vms,
                                   first_packet=False) / 1000
        assert measured == pytest.approx(predicted, abs=0.3)

    def test_rtt_prediction_parallel(self):
        def build(sim, costs):
            host = NfvHost(sim, name="anp", costs=costs)
            for service in ("p0", "p1"):
                host.add_nf(NoOpNf(service))
            install_chain(host, ["p0", "p1"])
            host.manager.register_parallel_chain(["p0", "p1"])
            return host

        measured = self._simulate(build)
        predicted = predict_rtt_ns(HostCosts(), parallel_vms=2,
                                   first_packet=False) / 1000
        assert measured == pytest.approx(predicted, abs=0.4)

    def test_rtt_rejects_mixed_modes(self):
        with pytest.raises(ValueError):
            predict_rtt_ns(HostCosts(), sequential_vms=1, parallel_vms=2)

    def test_throughput_prediction_matches_fig7_point(self):
        # The Fig. 7 headline: ~5.9 Gbps at 64 B through one VM.
        predicted = predict_throughput_gbps(HostCosts(), packet_size=64,
                                            sequential_vms=1)
        assert predicted == pytest.approx(5.87, abs=0.3)
        # Large packets are line-limited.
        assert predict_throughput_gbps(
            HostCosts(), packet_size=1024) == pytest.approx(10.0, rel=0.05)

    def test_stage_rates_identify_vm_bottleneck(self):
        rates = stage_rates_pps(HostCosts(), sequential_vms=1)
        assert rates["vm"] < rates["rx"]
        assert rates["vm"] < rates["tx"]


class TestSourceNat:
    def _ctx(self, sim):
        import numpy as np
        return NfContext(sim=sim, service_id="nat", vm_id="vm-t",
                         submit_message=lambda m: None,
                         rng=np.random.default_rng(0))

    def test_outbound_translation_stable_per_flow(self, sim):
        nat = SourceNat("nat", public_ip="203.0.113.1")
        ctx = self._ctx(sim)
        flow = FiveTuple("192.168.1.5", "8.8.8.8", PROTO_UDP, 5555, 53)
        first = Packet(flow=flow, size=128)
        nat.process(first, ctx)
        assert first.flow.src_ip == "203.0.113.1"
        public_port = first.flow.src_port
        second = Packet(flow=flow, size=128)
        nat.process(second, ctx)
        assert second.flow.src_port == public_port
        assert nat.active_bindings == 1

    def test_distinct_flows_get_distinct_ports(self, sim):
        nat = SourceNat("nat", public_ip="203.0.113.1")
        ctx = self._ctx(sim)
        ports = set()
        for i in range(10):
            flow = FiveTuple("192.168.1.5", "8.8.8.8", PROTO_UDP,
                             5000 + i, 53)
            packet = Packet(flow=flow, size=128)
            nat.process(packet, ctx)
            ports.add(packet.flow.src_port)
        assert len(ports) == 10

    def test_reply_reverse_translated(self, sim):
        nat = SourceNat("nat", public_ip="203.0.113.1")
        ctx = self._ctx(sim)
        flow = FiveTuple("192.168.1.5", "8.8.8.8", PROTO_UDP, 5555, 53)
        outbound = Packet(flow=flow, size=128)
        nat.process(outbound, ctx)
        reply_flow = outbound.flow.reversed()
        reply = Packet(flow=reply_flow, size=128)
        nat.process(reply, ctx)
        assert reply.flow.dst_ip == "192.168.1.5"
        assert reply.flow.dst_port == 5555
        assert nat.reverse_translations == 1

    def test_pool_exhaustion(self, sim):
        nat = SourceNat("nat", public_ip="203.0.113.1",
                        port_range=(100, 101))
        ctx = self._ctx(sim)
        for port in (1, 2):
            packet = Packet(flow=FiveTuple("192.168.1.5", "8.8.8.8",
                                           PROTO_UDP, port, 53), size=128)
            if port == 1:
                nat.process(packet, ctx)
            else:
                with pytest.raises(NatError):
                    nat.process(packet, ctx)

    def test_release_frees_binding(self, sim):
        nat = SourceNat("nat", public_ip="203.0.113.1")
        ctx = self._ctx(sim)
        flow = FiveTuple("192.168.1.5", "8.8.8.8", PROTO_UDP, 5555, 53)
        nat.process(Packet(flow=flow, size=128), ctx)
        nat.release(flow)
        assert nat.active_bindings == 0

    def test_nat_in_dataplane_chain(self, sim):
        host = NfvHost(sim, name="nat0")
        nat = SourceNat("nat", public_ip="203.0.113.1")
        host.add_nf(nat)
        install_chain(host, ["nat"])
        out = []
        host.port("eth1").on_egress = out.append
        flow = FiveTuple("192.168.1.9", "8.8.4.4", PROTO_UDP, 777, 53)
        host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=5 * MS)
        assert len(out) == 1
        assert out[0].flow.src_ip == "203.0.113.1"
        assert out[0].ip.src_ip == "203.0.113.1"


class TestTraceReplay:
    def _records(self):
        flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, 1, 80)
        return [TraceRecord(timestamp_ns=i * 100 * US, flow=flow,
                            size=128, payload=f"pkt{i}")
                for i in range(5)]

    def test_csv_round_trip(self):
        records = self._records()
        text = trace_to_csv(records)
        assert trace_from_csv(text) == records

    def test_record_validation(self):
        flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, 1, 80)
        with pytest.raises(ValueError):
            TraceRecord(timestamp_ns=-1, flow=flow)
        with pytest.raises(ValueError):
            TraceRecord(timestamp_ns=0, flow=flow, size=10)

    def test_replay_preserves_schedule(self, sim):
        from repro.baselines import make_dpdk_forwarder
        host = make_dpdk_forwarder(sim)
        arrivals = []
        host.port("eth1").on_egress = (
            lambda p: arrivals.append((sim.now, p.payload)))
        replayer = TraceReplayer(sim, host, self._records())
        sim.run(until=10 * MS)
        assert replayer.injected == 5
        assert [payload for _t, payload in arrivals] == [
            f"pkt{i}" for i in range(5)]
        gaps = [b[0] - a[0] for a, b in zip(arrivals, arrivals[1:])]
        assert all(gap == pytest.approx(100 * US, abs=5 * US)
                   for gap in gaps)

    def test_speedup_compresses_time(self, sim):
        from repro.baselines import make_dpdk_forwarder
        host = make_dpdk_forwarder(sim)
        replayer = TraceReplayer(sim, host, self._records(), speedup=4.0)
        sim.run(replayer.done)
        assert sim.now == pytest.approx(4 * 100 * US / 4.0, rel=0.01)

    def test_unsorted_records_sorted(self, sim):
        from repro.baselines import make_dpdk_forwarder
        host = make_dpdk_forwarder(sim)
        records = list(reversed(self._records()))
        replayer = TraceReplayer(sim, host, records)
        sim.run(replayer.done)
        assert replayer.injected == 5

    def test_speedup_validation(self, sim, host):
        with pytest.raises(ValueError):
            TraceReplayer(sim, host, [], speedup=0)
