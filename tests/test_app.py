"""SDNFV Application tests: deployment, northbound, validation, messages."""

import pytest

from repro.control import NfvOrchestrator, SdnController
from repro.core import HierarchySnapshot, SdnfvApp, ServiceGraph
from repro.core.service_graph import EXIT
from repro.core.state import StateKind, StateTier, classify_state
from repro.dataplane import (
    ChangeDefault,
    NfvHost,
    SkipMe,
    ToService,
    UserMessage,
)
from repro.net import FlowMatch, Packet
from repro.nfs import CounterNf, NoOpNf
from repro.sim import MS, S

from tests.test_service_graph import anomaly_graph, video_graph


@pytest.fixture
def app_env(sim):
    controller = SdnController(sim)
    orchestrator = NfvOrchestrator(sim)
    app = SdnfvApp(sim, controller=controller, orchestrator=orchestrator)
    host = NfvHost(sim, name="h0", controller=controller)
    app.register_host(host)
    return app, controller, orchestrator, host


class TestDeployment:
    def test_proactive_deploy_installs_rules_via_controller(self, sim,
                                                            app_env):
        app, controller, _orch, host = app_env
        host.add_nf(NoOpNf("vd"))
        host.add_nf(NoOpNf("pe"))
        host.add_nf(NoOpNf("tc"))
        host.add_nf(NoOpNf("cache"))
        app.deploy(video_graph())
        assert len(host.flow_table) == 0  # still in flight
        sim.run(until=controller.idle_lookup_ns + 1 * MS)
        assert len(host.flow_table) == 5  # eth0 + 4 services
        assert controller.stats.requests == 1

    def test_deploy_registers_parallel_chains(self, sim, app_env):
        app, _controller, _orch, host = app_env
        for name in ("firewall", "sampler", "ddos", "ids"):
            host.add_nf(CounterNf(name))
        host.add_nf(CounterNf("scrubber"))
        app.deploy(anomaly_graph())
        assert host.manager._parallel_chains.get("ddos") == ["ddos", "ids"]

    def test_end_to_end_traffic_through_deployed_graph(self, sim, app_env,
                                                       flow):
        app, controller, _orch, host = app_env
        for name in ("vd", "pe", "tc", "cache"):
            host.add_nf(NoOpNf(name))
        app.deploy(video_graph())
        out = []
        host.port("eth1").on_egress = out.append
        sim.run(until=50 * MS)
        host.inject("eth0", Packet(flow=flow, size=256))
        sim.run(until=100 * MS)
        assert len(out) == 1
        # Default path: vd -> pe -> tc -> cache -> out.
        for name in ("vd", "pe", "tc", "cache"):
            assert host.stats.per_service_packets[name] == 1

    def test_without_controller_rules_install_directly(self, sim):
        app = SdnfvApp(sim)
        host = NfvHost(sim, name="h0")
        app.register_host(host)
        for name in ("vd", "pe", "tc", "cache"):
            host.add_nf(NoOpNf(name))
        app.deploy(video_graph())
        assert len(host.flow_table) == 5

    def test_duplicate_host_rejected(self, sim, app_env):
        app, _c, _o, host = app_env
        with pytest.raises(ValueError):
            app.register_host(host)


class TestOnDemandRules:
    def test_miss_pulls_rules_from_deployment(self, sim, flow):
        controller = SdnController(sim)
        app = SdnfvApp(sim, controller=controller)
        host = NfvHost(sim, name="h0", controller=controller)
        app.register_host(host)
        for name in ("vd", "pe", "tc", "cache"):
            host.add_nf(NoOpNf(name))
        app.deploy(video_graph(), proactive=False)
        assert len(host.flow_table) == 0
        out = []
        host.port("eth1").on_egress = out.append
        host.inject("eth0", Packet(flow=flow, size=256))
        sim.run(until=100 * MS)
        assert len(out) == 1
        assert len(host.flow_table) == 5

    def test_uncovered_flow_gets_no_rules(self, sim, flow, udp_flow):
        controller = SdnController(sim)
        app = SdnfvApp(sim, controller=controller)
        host = NfvHost(sim, name="h0", controller=controller)
        app.register_host(host)
        host.add_nf(NoOpNf("vd"))
        graph = ServiceGraph("web-only")
        graph.add_service("vd")
        graph.add_edge("vd", EXIT, default=True)
        graph.set_entry("vd")
        app.deploy(graph, match=FlowMatch(protocol=6), proactive=False)
        host.inject("eth0", Packet(flow=udp_flow, size=128))
        sim.run(until=100 * MS)
        assert host.stats.dropped_no_rule == 1


class TestValidation:
    def _untrusted_env(self, sim):
        app = SdnfvApp(sim, trust_nfs=False)
        host = NfvHost(sim, name="h0")
        app.register_host(host)
        for name in ("vd", "pe", "tc", "cache"):
            host.add_nf(NoOpNf(name))
        app.deploy(video_graph())
        return app, host

    def test_change_default_along_graph_edge_allowed(self, sim, flow):
        app, host = self._untrusted_env(sim)
        host.manager.submit_nf_message(ChangeDefault(
            sender_service="pe", flows=FlowMatch.exact(flow),
            service="pe", target="cache"))
        sim.run(until=10 * MS)
        assert not app.rejected_messages
        assert host.flow_table.lookup(
            "pe", flow).default_action == ToService("cache")

    def test_change_default_off_graph_rejected(self, sim, flow):
        app, host = self._untrusted_env(sim)
        host.manager.submit_nf_message(ChangeDefault(
            sender_service="cache", flows=FlowMatch.exact(flow),
            service="cache", target="vd"))  # no cache->vd edge
        sim.run(until=10 * MS)
        assert len(app.rejected_messages) == 1
        assert host.manager.rejected_messages == 1

    def test_port_target_requires_exit_edge(self, sim, flow):
        app, host = self._untrusted_env(sim)
        # vd has an EXIT edge: allowed.
        host.manager.submit_nf_message(ChangeDefault(
            sender_service="vd", flows=FlowMatch.exact(flow),
            service="vd", target="port:eth1"))
        # tc has no EXIT edge: rejected.
        host.manager.submit_nf_message(ChangeDefault(
            sender_service="tc", flows=FlowMatch.exact(flow),
            service="tc", target="port:eth1"))
        sim.run(until=10 * MS)
        assert len(app.rejected_messages) == 1

    def test_skipme_for_unknown_service_rejected(self, sim):
        app, host = self._untrusted_env(sim)
        host.manager.submit_nf_message(SkipMe(
            sender_service="vd", service="never-deployed"))
        sim.run(until=10 * MS)
        assert len(app.rejected_messages) == 1

    def test_user_messages_always_pass_validation(self, sim):
        app, host = self._untrusted_env(sim)
        host.manager.submit_nf_message(UserMessage(
            sender_service="vd", key="stats", value=1))
        sim.run(until=10 * MS)
        assert not app.rejected_messages

    def test_validation_latency_defers_application(self, sim, flow):
        app = SdnfvApp(sim, trust_nfs=False, validation_latency_ns=5 * MS)
        host = NfvHost(sim, name="h0")
        app.register_host(host)
        for name in ("vd", "pe", "tc", "cache"):
            host.add_nf(NoOpNf(name))
        app.deploy(video_graph())
        host.manager.submit_nf_message(ChangeDefault(
            sender_service="pe", flows=FlowMatch.exact(flow),
            service="pe", target="cache"))
        sim.run(until=1 * MS)
        assert host.flow_table.lookup(
            "pe", flow).default_action == ToService("tc")
        sim.run(until=20 * MS)
        assert host.flow_table.lookup(
            "pe", flow).default_action == ToService("cache")


class TestMessagesUpward:
    def test_user_message_reaches_app_and_callbacks(self, sim, app_env):
        app, _controller, _orch, host = app_env
        seen = []
        app.on_message("ddos_alarm", lambda h, m: seen.append((h, m)))
        host.manager.submit_nf_message(UserMessage(
            sender_service="det", key="ddos_alarm", value={"rate": 5.0}))
        sim.run(until=10 * MS)
        assert seen and seen[0][0] == "h0"
        assert app.messages_received

    def test_alarm_can_trigger_vm_launch(self, sim, app_env, flow):
        """The §5.2 pattern: alarm → orchestrator boots a scrubber."""
        app, _controller, orchestrator, host = app_env

        def boot_scrubber(host_name, message):
            app.launch_nf(host_name, lambda: NoOpNf("scrubber"))

        app.on_message("ddos_alarm", boot_scrubber)
        host.manager.submit_nf_message(UserMessage(
            sender_service="det", key="ddos_alarm", value={}))
        sim.run(until=8 * S)
        assert "scrubber" in host.manager.vms_by_service
        assert orchestrator.launches[0].service_id == "scrubber"

    def test_broadcast_message_applies_on_all_hosts(self, sim, app_env,
                                                    flow):
        app, controller, _orch, host = app_env
        host2 = NfvHost(sim, name="h1", controller=controller)
        app.register_host(host2)
        for target in (host, host2):
            target.add_nf(NoOpNf("vd"))
            target.add_nf(NoOpNf("pe"))
            target.add_nf(NoOpNf("tc"))
            target.add_nf(NoOpNf("cache"))
        app.deploy(video_graph(), proactive=True)
        sim.run(until=200 * MS)
        app.broadcast_message(ChangeDefault(
            sender_service="pe", flows=FlowMatch.any(),
            service="pe", target="cache"))
        for target in (host, host2):
            assert target.flow_table.lookup(
                "pe", flow).default_action == ToService("cache")


class TestStateHierarchy:
    def test_classification_table(self):
        kind, tier = classify_state(internal=True)
        assert kind is StateKind.NF_INTERNAL and tier is StateTier.NF
        kind, tier = classify_state(internal=True, host_scoped=True)
        assert tier is StateTier.NF_MANAGER
        kind, tier = classify_state(internal=False)
        assert kind is StateKind.EXTERNAL_PARTITIONED
        kind, tier = classify_state(internal=False, coherent=True)
        assert tier is StateTier.SDNFV_APP

    def test_snapshot_gathers_all_tiers(self, sim, app_env, flow):
        app, _controller, _orch, host = app_env
        host.add_nf(NoOpNf("vd"))
        snapshot = HierarchySnapshot.gather(app)
        assert "h0" in snapshot.hosts
        assert snapshot.hosts["h0"].services == ["vd"]
        assert snapshot.controller is not None
        rx, tx = snapshot.total_packets()
        assert rx == tx == 0
