"""Unit tests for every network function in the library.

NFs are tested directly against a stub context (no full host needed),
plus a few checks of their message-sending behaviour.
"""

import pytest

import numpy as np

from repro.dataplane.actions import NfVerdict, ToPort, ToService
from repro.dataplane.messages import ChangeDefault, RequestMe, UserMessage
from repro.net import FiveTuple, FlowMatch, HttpRequest, HttpResponse, Packet
from repro.net.headers import PROTO_TCP, PROTO_UDP
from repro.net.memcached import MemcachedRequest
from repro.nfs import (
    AntFlowDetector,
    ComputeNf,
    CounterNf,
    DdosDetector,
    DdosScrubber,
    Firewall,
    FirewallRule,
    HttpCache,
    IntrusionDetector,
    MemcachedProxy,
    NoOpNf,
    PolicyEngine,
    QualityDetector,
    Sampler,
    Scrubber,
    TrafficShaper,
    Transcoder,
    VideoFlowDetector,
)
from repro.nfs.base import NetworkFunction, NfContext
from repro.nfs.ddos import DDOS_ALARM_KEY
from repro.sim import S
from repro.workloads.sessions import video_reply_payload


class StubCtx(NfContext):
    """NfContext against a message list instead of a manager."""

    def __init__(self, sim, service_id="svc", seed=0):
        self.messages = []
        super().__init__(sim=sim, service_id=service_id, vm_id="vm-test",
                         submit_message=self.messages.append,
                         rng=np.random.default_rng(seed))


@pytest.fixture
def ctx(sim):
    def make(service_id="svc"):
        return StubCtx(sim, service_id=service_id)
    return make


def pkt(flow, size=128, payload=""):
    return Packet(flow=flow, size=size, payload=payload)


class TestBase:
    def test_service_id_required(self):
        with pytest.raises(ValueError):
            NoOpNf("")

    def test_process_must_be_overridden(self, sim, flow, ctx):
        nf = NetworkFunction("base")
        with pytest.raises(NotImplementedError):
            nf.process(pkt(flow), ctx())

    def test_handle_packet_checks_verdict_type(self, sim, flow, ctx):
        class BadNf(NetworkFunction):
            def process(self, packet, ctx):
                return "not a verdict"

        with pytest.raises(TypeError):
            BadNf("bad").handle_packet(pkt(flow), ctx())

    def test_packets_seen_counted(self, sim, flow, ctx):
        nf = NoOpNf("noop")
        for _ in range(3):
            nf.handle_packet(pkt(flow), ctx())
        assert nf.packets_seen == 3


class TestNoOpAndCounter:
    def test_noop_default_verdict(self, sim, flow, ctx):
        assert NoOpNf("n").process(pkt(flow), ctx()).kind is (
            NfVerdict.DEFAULT)

    def test_counter_accumulates_per_flow(self, sim, flow, udp_flow, ctx):
        nf = CounterNf("c")
        context = ctx()
        nf.process(pkt(flow, size=100), context)
        nf.process(pkt(flow, size=100), context)
        nf.process(pkt(udp_flow, size=64), context)
        assert nf.packets[flow] == 2
        assert nf.bytes[udp_flow] == 64
        assert nf.totals() == (3, 264)


class TestCompute:
    def test_constant_cost(self, sim, flow, ctx):
        nf = ComputeNf("c", cost_ns=5000)
        assert nf.processing_cost_ns(pkt(flow), ctx()) == 5000

    def test_jittered_cost_in_range(self, sim, flow, ctx):
        nf = ComputeNf("c", cost_ns=5000, jitter_ns=1000)
        context = ctx()
        costs = {nf.processing_cost_ns(pkt(flow), context)
                 for _ in range(50)}
        assert all(4000 <= cost <= 6000 for cost in costs)
        assert len(costs) > 1

    def test_jitter_cannot_exceed_cost(self):
        with pytest.raises(ValueError):
            ComputeNf("c", cost_ns=100, jitter_ns=200)


class TestFirewall:
    def test_default_allow(self, sim, flow, ctx):
        nf = Firewall("fw")
        assert nf.process(pkt(flow), ctx()).kind is NfVerdict.DEFAULT
        assert nf.allowed == 1

    def test_deny_rule_discards(self, sim, flow, ctx):
        nf = Firewall("fw", rules=[FirewallRule(
            match=FlowMatch(dst_port=80), allow=False)])
        assert nf.process(pkt(flow), ctx()).kind is NfVerdict.DISCARD
        assert nf.denied == 1

    def test_first_match_wins(self, sim, flow, ctx):
        nf = Firewall("fw", rules=[
            FirewallRule(match=FlowMatch(src_ip="10.0.0.1"), allow=True),
            FirewallRule(match=FlowMatch(dst_port=80), allow=False),
        ])
        assert nf.process(pkt(flow), ctx()).kind is NfVerdict.DEFAULT

    def test_default_deny_posture(self, sim, flow, ctx):
        nf = Firewall("fw", default_allow=False)
        assert nf.process(pkt(flow), ctx()).kind is NfVerdict.DISCARD


class TestSampler:
    def test_random_sampling_rate(self, sim, flow, ctx):
        nf = Sampler("s", analysis_service="ids", sample_rate=0.3)
        context = ctx()
        for _ in range(1000):
            nf.process(pkt(flow), context)
        assert 200 < nf.sampled < 400
        assert nf.sampled + nf.passed == 1000

    def test_sampled_packets_sent_to_analysis(self, sim, flow, ctx):
        nf = Sampler("s", analysis_service="ids", sample_rate=1.0)
        verdict = nf.process(pkt(flow), ctx())
        assert verdict.destination == ToService("ids")

    def test_header_match_selection(self, sim, flow, udp_flow, ctx):
        nf = Sampler("s", analysis_service="ids",
                     header_match=FlowMatch(protocol=PROTO_TCP))
        context = ctx()
        assert nf.process(pkt(flow), context).kind is NfVerdict.SEND
        assert nf.process(pkt(udp_flow), context).kind is (
            NfVerdict.DEFAULT)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Sampler("s", analysis_service="ids", sample_rate=1.5)


class TestIds:
    def test_clean_payload_passes(self, sim, flow, ctx):
        nf = IntrusionDetector("ids")
        verdict = nf.process(pkt(flow, payload="hello world"), ctx())
        assert verdict.kind is NfVerdict.DEFAULT
        assert nf.alerts == 0

    def test_sql_exploit_detected_and_diverted(self, sim, flow, ctx):
        nf = IntrusionDetector("ids", alert_service="scrubber")
        verdict = nf.process(
            pkt(flow, payload="GET /?q=' OR 1=1 -- HTTP/1.1"), ctx())
        assert verdict.destination == ToService("scrubber")
        assert nf.alerts == 1

    def test_flow_stays_flagged(self, sim, flow, ctx):
        nf = IntrusionDetector("ids", alert_service="scrubber")
        context = ctx()
        nf.process(pkt(flow, payload="UNION SELECT password"), context)
        clean_follow_up = nf.process(pkt(flow, payload="innocent"),
                                     context)
        assert clean_follow_up.destination == ToService("scrubber")

    def test_detection_without_alert_service_annotates(self, sim, flow,
                                                       ctx):
        nf = IntrusionDetector("ids")
        packet = pkt(flow, payload="<script>alert(1)</script>")
        verdict = nf.process(packet, ctx())
        assert verdict.kind is NfVerdict.DEFAULT
        assert packet.annotations["ids_alert"]

    def test_scan_cost_scales_with_payload(self, sim, flow, ctx):
        nf = IntrusionDetector("ids", scan_ns_per_byte=1.0)
        small = nf.processing_cost_ns(pkt(flow, payload="x" * 100), ctx())
        large = nf.processing_cost_ns(pkt(flow, payload="x" * 1000),
                                      ctx())
        assert large > small


class TestDdos:
    def _attack_packets(self, count, prefix="66.66"):
        return [pkt(FiveTuple(f"{prefix}.{i % 250 + 1}.1", "10.3.0.1",
                              PROTO_UDP, 1000 + i, 80), size=1024)
                for i in range(count)]

    def test_alarm_raised_once_over_threshold(self, sim, flow):
        context = StubCtx(sim, service_id="ddos")
        nf = DdosDetector("ddos", threshold_gbps=0.001,
                          window_ns=S)
        for packet in self._attack_packets(200):
            nf.process(packet, context)
        alarms = [m for m in context.messages
                  if isinstance(m, UserMessage)
                  and m.key == DDOS_ALARM_KEY]
        assert len(alarms) == 1
        assert alarms[0].value["match"].matches(
            self._attack_packets(1)[0].flow)

    def test_below_threshold_silent(self, sim):
        context = StubCtx(sim, service_id="ddos")
        nf = DdosDetector("ddos", threshold_gbps=100.0, window_ns=S)
        for packet in self._attack_packets(50):
            nf.process(packet, context)
        assert not context.messages

    def test_aggregates_across_flows_in_prefix(self, sim):
        """Many small flows, none individually large, still trip it."""
        context = StubCtx(sim, service_id="ddos")
        nf = DdosDetector("ddos", threshold_gbps=0.0005, prefix_bits=16,
                          window_ns=S)
        for packet in self._attack_packets(100):
            nf.process(packet, context)
        assert nf.alarms_sent == 1

    def test_scrubber_drops_attack_passes_normal(self, sim, flow):
        context = StubCtx(sim, service_id="scrub")
        nf = DdosScrubber("scrub", attack_matches=[
            FlowMatch(src_ip="66.66.0.0", src_prefix_bits=16)],
            request_on_register=False)
        attack = self._attack_packets(3)
        for packet in attack:
            assert nf.process(packet, context).kind is NfVerdict.DISCARD
        assert nf.process(pkt(flow), context).kind is NfVerdict.DEFAULT
        assert nf.scrubbed == 3 and nf.passed == 1

    def test_scrubber_requests_traffic_on_register(self, sim):
        context = StubCtx(sim, service_id="scrub")
        nf = DdosScrubber("scrub")
        nf.on_register(context)
        assert any(isinstance(m, RequestMe) and m.service == "scrub"
                   for m in context.messages)


class TestScrubber:
    def test_confirmed_malicious_dropped(self, sim, flow, ctx):
        nf = Scrubber("scrub")
        verdict = nf.process(pkt(flow, payload="DROP TABLE users"), ctx())
        assert verdict.kind is NfVerdict.DISCARD
        assert nf.confirmed == 1

    def test_false_positive_forwarded(self, sim, flow, ctx):
        nf = Scrubber("scrub")
        verdict = nf.process(pkt(flow, payload="perfectly fine"), ctx())
        assert verdict.kind is NfVerdict.DEFAULT
        assert nf.false_positives == 1


class TestVideoNfs:
    def test_detector_classifies_from_http(self, sim, flow, ctx):
        nf = VideoFlowDetector("vd")
        packet = pkt(flow, payload=video_reply_payload())
        nf.process(packet, ctx())
        assert nf.is_video_flow(flow) is True
        assert packet.annotations.get("video")
        assert nf.video_flows == 1

    def test_detector_non_video(self, sim, flow, ctx):
        nf = VideoFlowDetector("vd")
        payload = HttpResponse(
            headers={"Content-Type": "text/html"}).serialize()
        nf.process(pkt(flow, payload=payload), ctx())
        assert nf.is_video_flow(flow) is False

    def test_detector_remembers_flow_state(self, sim, flow, ctx):
        nf = VideoFlowDetector("vd")
        context = ctx()
        nf.process(pkt(flow, payload=video_reply_payload()), context)
        data_packet = pkt(flow, payload="")  # mid-flow data
        nf.process(data_packet, context)
        assert data_packet.annotations.get("video")

    def test_policy_engine_releases_flows_when_not_throttling(
            self, sim, flow):
        context = StubCtx(sim, service_id="pe")
        nf = PolicyEngine("pe", detector_service="vd",
                          transcoder_service="tc", exit_port="eth1")
        nf.on_register(context)
        verdict = nf.process(pkt(flow), context)
        assert verdict.destination == ToPort("eth1")
        changes = [m for m in context.messages
                   if isinstance(m, ChangeDefault)]
        assert len(changes) == 1
        assert changes[0].service == "vd"
        assert changes[0].target == "port:eth1"
        # Second packet of the same flow: no duplicate message.
        nf.process(pkt(flow), context)
        assert len([m for m in context.messages
                    if isinstance(m, ChangeDefault)]) == 1

    def test_policy_engine_throttles_to_transcoder(self, sim, flow):
        context = StubCtx(sim, service_id="pe")
        nf = PolicyEngine("pe", detector_service="vd",
                          transcoder_service="tc", exit_port="eth1",
                          throttle=True)
        nf.on_register(context)
        verdict = nf.process(pkt(flow), context)
        assert verdict.destination == ToService("tc")

    def test_policy_flip_sends_request_me(self, sim, flow):
        context = StubCtx(sim, service_id="pe")
        nf = PolicyEngine("pe", detector_service="vd",
                          transcoder_service="tc", exit_port="eth1")
        nf.on_register(context)
        nf.process(pkt(flow), context)
        nf.set_throttle(True)
        requests = [m for m in context.messages
                    if isinstance(m, RequestMe)]
        assert len(requests) == 1 and requests[0].service == "pe"
        assert not nf.flows_released  # released set cleared for re-decide

    def test_policy_flip_idempotent(self, sim):
        context = StubCtx(sim, service_id="pe")
        nf = PolicyEngine("pe", detector_service="vd",
                          transcoder_service="tc", exit_port="eth1")
        nf.on_register(context)
        nf.set_throttle(True)
        nf.set_throttle(True)
        assert len(context.messages) == 1

    def test_quality_detector_threshold(self, sim, flow, ctx):
        nf = QualityDetector("qd", min_bitrate_kbps=800)
        good = pkt(flow)
        good.annotations["bitrate_kbps"] = 2000
        nf.process(good, ctx())
        assert good.annotations["transcode_ok"]
        bad = pkt(flow)
        bad.annotations["bitrate_kbps"] = 1000
        nf.process(bad, ctx())
        assert not bad.annotations["transcode_ok"]

    def test_transcoder_halves_flow(self, sim, flow, ctx):
        nf = Transcoder("tc", keep_ratio=0.5)
        context = ctx()
        verdicts = [nf.process(pkt(flow), context) for _ in range(10)]
        kept = sum(1 for v in verdicts if v.kind is NfVerdict.DEFAULT)
        assert kept == 5
        assert nf.dropped == 5

    def test_transcoder_keep_ratio_bounds(self):
        with pytest.raises(ValueError):
            Transcoder("tc", keep_ratio=0.0)

    def test_transcoder_per_flow_credit(self, sim, flow, udp_flow, ctx):
        nf = Transcoder("tc", keep_ratio=0.5)
        context = ctx()
        first_a = nf.process(pkt(flow), context)
        first_b = nf.process(pkt(udp_flow), context)
        # Each flow's first packet is dropped independently (credit 0.5).
        assert first_a.kind is NfVerdict.DISCARD
        assert first_b.kind is NfVerdict.DISCARD

    def test_transcoder_lowers_bitrate_annotation(self, sim, flow, ctx):
        nf = Transcoder("tc", keep_ratio=1.0)
        packet = pkt(flow)
        packet.annotations["bitrate_kbps"] = 2000
        nf.process(packet, ctx())
        assert packet.annotations["bitrate_kbps"] == 1000


class TestHttpCache:
    def _request(self, path="/a.mp4"):
        return HttpRequest(method="GET", path=path,
                           host="cdn.example").serialize()

    def _response(self, path="/a.mp4"):
        return HttpResponse(headers={"Content-Type": "video/mp4"},
                            body="DATA").serialize()

    def test_miss_then_hit(self, sim, flow, ctx):
        nf = HttpCache("cache", reply_port="eth0")
        context = ctx()
        request = pkt(flow, payload=self._request())
        assert nf.process(request, context).kind is NfVerdict.DEFAULT
        assert nf.misses == 1
        response = pkt(flow.reversed(), payload=self._response())
        response.annotations["request_key"] = ("cdn.example", "/a.mp4")
        nf.process(response, context)
        hit = pkt(flow, payload=self._request())
        verdict = nf.process(hit, context)
        assert verdict.destination == ToPort("eth0")
        assert nf.hits == 1
        assert hit.annotations["served_from_cache"]

    def test_lru_eviction(self, sim, flow, ctx):
        nf = HttpCache("cache", capacity=2)
        context = ctx()
        for path in ("/1", "/2", "/3"):
            response = pkt(flow, payload=self._response(path))
            response.annotations["request_key"] = ("cdn.example", path)
            nf.process(response, context)
        assert nf.lookup("cdn.example", "/1") is None
        assert nf.lookup("cdn.example", "/3") is not None

    def test_non_http_passthrough(self, sim, flow, ctx):
        nf = HttpCache("cache")
        assert nf.process(pkt(flow, payload="binary"),
                          ctx()).kind is NfVerdict.DEFAULT


class TestShaper:
    def test_conformant_traffic_passes(self, sim, flow):
        context = StubCtx(sim, service_id="shaper")
        nf = TrafficShaper("shaper", rate_mbps=1000.0, burst_kb=64)
        verdict = nf.process(pkt(flow, size=500), context)
        assert verdict.kind is NfVerdict.DEFAULT

    def test_burst_beyond_bucket_policed(self, sim, flow):
        context = StubCtx(sim, service_id="shaper")
        nf = TrafficShaper("shaper", rate_mbps=1.0, burst_kb=1.0)
        verdicts = [nf.process(pkt(flow, size=500), context)
                    for _ in range(10)]
        assert any(v.kind is NfVerdict.DISCARD for v in verdicts)
        assert nf.policed > 0

    def test_tokens_refill_over_time(self, sim, flow):
        nf = TrafficShaper("shaper", rate_mbps=100.0, burst_kb=2.0)
        context = StubCtx(sim, service_id="shaper")
        while nf.process(pkt(flow, size=1000),
                         context).kind is NfVerdict.DEFAULT:
            pass
        sim._queue.clear()
        sim.now = 10 * S  # let the bucket refill
        assert nf.process(pkt(flow, size=1000),
                          context).kind is NfVerdict.DEFAULT

    def test_per_flow_buckets_independent(self, sim, flow, udp_flow):
        context = StubCtx(sim, service_id="shaper")
        nf = TrafficShaper("shaper", rate_mbps=1.0, burst_kb=1.0,
                           per_flow=True)
        while nf.process(pkt(flow, size=1000),
                         context).kind is NfVerdict.DEFAULT:
            pass
        # The other flow still has a full bucket.
        assert nf.process(pkt(udp_flow, size=500),
                          context).kind is NfVerdict.DEFAULT


class TestAntDetector:
    def _drive(self, sim, nf, context, flow, size, gap_ns, duration_ns):
        start = sim.now
        while sim.now - start < duration_ns:
            nf.process(pkt(flow, size=size), context)
            sim.now += gap_ns  # direct clock drive for a unit test

    def test_ant_reroutes_to_fast_path(self, sim, flow):
        context = StubCtx(sim, service_id="ant")
        nf = AntFlowDetector("ant", fast_target="port:fast",
                             slow_target="port:slow",
                             window_ns=S, ant_max_packet_size=256,
                             ant_max_rate_mbps=10.0)
        self._drive(sim, nf, context, flow, size=64,
                    gap_ns=1_000_000, duration_ns=3 * S)
        changes = [m for m in context.messages
                   if isinstance(m, ChangeDefault)]
        assert changes and changes[-1].target == "port:fast"
        assert nf.classification[flow] == "ant"

    def test_elephant_stays_on_slow_path(self, sim, flow):
        context = StubCtx(sim, service_id="ant")
        nf = AntFlowDetector("ant", fast_target="port:fast",
                             slow_target="port:slow", window_ns=S,
                             ant_max_packet_size=256,
                             ant_max_rate_mbps=1.0)
        self._drive(sim, nf, context, flow, size=1024,
                    gap_ns=10_000, duration_ns=2 * S)
        assert nf.classification[flow] == "elephant"
        changes = [m for m in context.messages
                   if isinstance(m, ChangeDefault)]
        assert changes[-1].target == "port:slow"

    def test_phase_change_reclassifies(self, sim, flow):
        """The Fig. 8 scenario: elephant -> ant -> elephant."""
        context = StubCtx(sim, service_id="ant")
        nf = AntFlowDetector("ant", fast_target="port:fast",
                             slow_target="port:slow", window_ns=S,
                             ant_max_packet_size=256,
                             ant_max_rate_mbps=5.0)
        self._drive(sim, nf, context, flow, size=64,
                    gap_ns=5_000, duration_ns=2 * S)   # fast: elephant
        self._drive(sim, nf, context, flow, size=64,
                    gap_ns=2_000_000, duration_ns=3 * S)  # slow: ant
        self._drive(sim, nf, context, flow, size=64,
                    gap_ns=5_000, duration_ns=3 * S)   # fast again
        assert nf.reclassifications >= 3
        targets = [m.target for m in context.messages
                   if isinstance(m, ChangeDefault)]
        assert "port:fast" in targets and targets[-1] == "port:slow"


class TestMemcachedProxy:
    def test_rewrites_destination_by_key(self, sim, flow, ctx):
        servers = [("10.8.0.10", 11211), ("10.8.0.11", 11211)]
        nf = MemcachedProxy("mc", servers=servers)
        request = MemcachedRequest(command="get", key="user:1")
        packet = pkt(flow, payload=request.serialize())
        verdict = nf.process(packet, ctx())
        assert verdict.kind is NfVerdict.DEFAULT
        assert (packet.flow.dst_ip, packet.flow.dst_port) in servers
        assert packet.annotations["memcached_key"] == "user:1"

    def test_same_key_same_server(self, sim, flow, ctx):
        nf = MemcachedProxy("mc", servers=[("a", 1), ("b", 2), ("c", 3)])
        assert (nf.server_for_key("hello")
                == nf.server_for_key("hello"))

    def test_keys_spread_across_servers(self, sim, ctx):
        nf = MemcachedProxy("mc", servers=[("a", 1), ("b", 2), ("c", 3)])
        servers = {nf.server_for_key(f"key{i}") for i in range(100)}
        assert len(servers) == 3

    def test_unparseable_payload_passes_through(self, sim, flow, ctx):
        nf = MemcachedProxy("mc", servers=[("a", 1)])
        packet = pkt(flow, payload="not memcached")
        verdict = nf.process(packet, ctx())
        assert verdict.kind is NfVerdict.DEFAULT
        assert nf.parse_errors == 1
        assert packet.flow == flow  # untouched

    def test_needs_servers(self):
        with pytest.raises(ValueError):
            MemcachedProxy("mc", servers=[])

    def test_parse_cost_override(self):
        nf = MemcachedProxy("mc", servers=[("a", 1)], parse_cost_ns=0)
        assert nf.per_packet_cost_ns == 0
