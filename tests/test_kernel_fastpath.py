"""The kernel fast path: timer lane, event recycling, lazy cancellation.

These lock in the zero-allocation hot-path mechanics: ``call_later``
timers share the heap and sequence counter with the event lane (so
timestamp tie-breaks stay globally FIFO and ``events_scheduled`` stays
an honest odometer), ``sleep()`` wakeups are recycled through a bounded
free list, and abandoned timeouts are discarded unprocessed instead of
being dispatched long after anyone cares.
"""

import pytest

from repro.sim import Simulator, Store
from repro.sim.events import Event, Interrupt


class TestTimerLane:
    def test_call_later_fires_with_argument(self, sim):
        seen = []
        sim.call_later(25, seen.append, "tick")
        sim.run()
        assert sim.now == 25
        assert seen == ["tick"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.call_later(-1, lambda _: None)

    def test_timers_and_events_interleave_fifo(self, sim):
        """Same-timestamp entries fire in schedule order across lanes."""
        order = []
        sim.timeout(10).callbacks.append(lambda e: order.append("event-a"))
        sim.call_later(10, order.append, "timer-b")
        sim.timeout(10).callbacks.append(lambda e: order.append("event-c"))
        sim.call_later(10, order.append, "timer-d")
        sim.run()
        assert order == ["event-a", "timer-b", "event-c", "timer-d"]

    def test_timers_counted_in_events_scheduled(self, sim):
        """Satellite check: the odometer counts both lanes."""
        before = sim.events_scheduled
        sim.call_later(5, lambda _: None)
        sim.call_later(7, lambda _: None)
        sim.timeout(9)
        assert sim.events_scheduled == before + 3
        assert sim.timers_scheduled == 2

    def test_schedule_convenience_wrapper(self, sim):
        seen = []
        sim.schedule(30, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [30]

    def test_timer_lane_rearms_itself(self, sim):
        """A self-rearming timer (the pktgen/NIC-drain shape)."""
        ticks = []

        def tick(count):
            ticks.append(sim.now)
            if count > 1:
                sim.call_later(10, tick, count - 1)

        sim.call_later(10, tick, 3)
        sim.run()
        assert ticks == [10, 20, 30]


class TestEventRecycling:
    def test_sleep_event_is_reused(self, sim):
        """Steady-state sleeps recycle one Event object."""
        seen = []

        def sleeper():
            for _ in range(5):
                event = sim.sleep(10)
                seen.append(id(event))
                yield event

        sim.process(sleeper())
        sim.run()
        # The in-flight event is released only after its callback (which
        # issues the next sleep) returns, so steady state ping-pongs
        # between exactly two recycled objects — never one per sleep.
        assert len(set(seen)) == 2

    def test_free_list_is_bounded(self, sim):
        events = [sim.sleep(1) for _ in range(1000)]
        assert len(events) == 1000
        sim.run()
        assert len(sim._event_pool) <= Simulator._EVENT_POOL_LIMIT

    def test_recycled_event_resets_state(self, sim):
        values = []

        def sleeper():
            values.append((yield sim.sleep(5)))
            values.append((yield sim.sleep(5)))

        sim.process(sleeper())
        sim.run()
        assert values == [None, None]

    def test_negative_sleep_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.sleep(-3)

    def test_recycled_store_reuses_events(self, sim):
        store = Store(sim, recycle=True)
        ids = set()

        def producer():
            for i in range(6):
                yield store.put(i)
                yield sim.sleep(1)

        def consumer():
            for _ in range(6):
                event = store.get()
                ids.add(id(event))
                yield event

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        # The free list turns the churn of 6 gets into a couple of
        # live objects, not one per get.
        assert len(ids) < 6


class TestLazyCancellation:
    def test_cancelled_event_discarded_unprocessed(self, sim):
        fired = []
        timeout = sim.timeout(10)
        timeout.callbacks.append(lambda e: fired.append("fired"))
        timeout.callbacks.clear()
        timeout.cancel()
        sim.run()
        assert fired == []
        assert sim.events_cancelled == 1

    def test_resubscribe_uncancels(self, sim):
        fired = []
        timeout = sim.timeout(10)
        timeout.cancel()
        timeout.callbacks.append(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [10]
        assert sim.events_cancelled == 0

    def test_interrupted_waits_do_not_bloat_the_heap(self, sim):
        """Satellite regression: many interrupted long waits (the ring
        poll / deadline shape) are discarded, not dispatched."""
        waiters = []

        def wait_forever():
            try:
                yield sim.timeout(10_000_000)
            except Interrupt:
                pass

        for _ in range(200):
            waiters.append(sim.process(wait_forever()))

        def interrupter():
            yield sim.timeout(5)
            for process in waiters:
                process.interrupt()

        sim.process(interrupter())
        sim.run()
        # Every abandoned timeout was discarded unprocessed (the heap
        # entry is popped to advance the clock, but never dispatched).
        assert sim.events_cancelled == 200
        assert not sim._queue

    def test_anyof_deadline_pruned_after_reply_wins(self, sim):
        reply = Event(sim)
        deadline = sim.timeout(1_000_000)
        race = sim.any_of([reply, deadline])
        sim.call_later(10, lambda _: reply.succeed("ok"), None)
        assert sim.run(until=race) == {reply: "ok"}
        sim.run()
        # The losing deadline was detached and lazily cancelled.
        assert sim.events_cancelled == 1
