"""Workload generator tests, driven against a DPDK forwarder host."""

import pytest

from repro.baselines import make_dpdk_forwarder
from repro.dataplane import NfvHost
from repro.nfs import MemcachedProxy, NoOpNf, VideoFlowDetector
from repro.sim import MS, S
from repro.workloads import (
    DdosRampWorkload,
    FlowChurnWorkload,
    FlowSpec,
    MemcachedWorkload,
    PktGen,
    VideoSessionWorkload,
)

from tests.conftest import install_chain


class TestFlowSpec:
    def test_validation(self, flow):
        with pytest.raises(ValueError):
            FlowSpec(flow=flow, rate_mbps=0)
        with pytest.raises(ValueError):
            FlowSpec(flow=flow, rate_mbps=1, packet_size=10)
        with pytest.raises(ValueError):
            FlowSpec(flow=flow, rate_mbps=1, pacing="bursty")

    def test_interval_matches_rate(self, flow):
        spec = FlowSpec(flow=flow, rate_mbps=100.0, packet_size=1000)
        # 1024 B wire frame = 8192 bits; at 100 Mb/s -> 81.92 µs.
        assert spec.mean_gap() == pytest.approx(81_920)

    def test_payload_callable(self, flow):
        spec = FlowSpec(flow=flow, rate_mbps=1,
                        payload=lambda seq: f"pkt{seq}")
        assert spec.payload_for(3) == "pkt3"


class TestPktGen:
    def test_rtt_measurement_against_dpdk(self, sim, flow):
        host = make_dpdk_forwarder(sim)
        gen = PktGen(sim, host)
        gen.add_flow(FlowSpec(flow=flow, rate_mbps=100.0,
                              packet_size=1000, stop_ns=10 * MS))
        sim.run(until=20 * MS)
        assert gen.received == gen.sent > 0
        # Table 2: 0VM ≈ 26.66 µs ± jitter.
        assert 23.0 <= gen.latency.mean_us() <= 30.0

    def test_offered_vs_achieved_rates(self, sim, flow):
        host = make_dpdk_forwarder(sim)
        gen = PktGen(sim, host)
        gen.add_flow(FlowSpec(flow=flow, rate_mbps=500.0,
                              packet_size=1000, stop_ns=20 * MS))
        sim.run(until=40 * MS)
        assert gen.achieved_gbps() == pytest.approx(0.5, rel=0.15)

    def test_rate_change_mid_run(self, sim, flow):
        host = make_dpdk_forwarder(sim)
        gen = PktGen(sim, host)
        spec = gen.add_flow(FlowSpec(flow=flow, rate_mbps=10.0,
                                     packet_size=1000))
        sim.run(until=10 * MS)
        low_count = gen.sent
        spec.rate_mbps = 1000.0
        sim.run(until=20 * MS)
        assert gen.sent - low_count > low_count * 5

    def test_per_flow_latency_tracking(self, sim, flow, udp_flow):
        host = make_dpdk_forwarder(sim)
        gen = PktGen(sim, host)
        tracked = gen.track_flow(flow)
        gen.add_flow(FlowSpec(flow=flow, rate_mbps=50.0, stop_ns=5 * MS))
        gen.add_flow(FlowSpec(flow=udp_flow, rate_mbps=50.0,
                              stop_ns=5 * MS))
        sim.run(until=10 * MS)
        assert 0 < len(tracked) < gen.received

    def test_stop_halts_generation(self, sim, flow):
        host = make_dpdk_forwarder(sim)
        gen = PktGen(sim, host)
        gen.add_flow(FlowSpec(flow=flow, rate_mbps=100.0))
        sim.run(until=5 * MS)
        gen.stop()
        count = gen.sent
        sim.run(until=10 * MS)
        assert gen.sent <= count + 1


class TestFlowChurn:
    def test_two_packets_per_flow_and_completion_count(self, sim):
        host = NfvHost(sim, name="churn-host")
        host.add_nf(NoOpNf("vd"))
        install_chain(host, ["vd"])
        workload = FlowChurnWorkload(sim, host, new_flows_per_second=2000)
        sim.run(until=100 * MS)
        assert workload.flows_started > 100
        # Everything completes: no bottleneck at this rate.
        assert workload.completed_flows >= workload.flows_started * 0.8
        assert host.stats.rx_packets >= workload.flows_started * 1.5

    def test_rate_validation(self, sim, host):
        with pytest.raises(ValueError):
            FlowChurnWorkload(sim, host, new_flows_per_second=0)


class TestVideoSessions:
    def test_sessions_stream_and_replace(self, sim):
        host = NfvHost(sim, name="video-host")
        host.add_nf(VideoFlowDetector("vd"))
        install_chain(host, ["vd"])
        workload = VideoSessionWorkload(
            sim, host, concurrent_flows=20, mean_lifetime_ns=50 * MS,
            per_flow_mbps=2.0, packet_size=512)
        sim.run(until=300 * MS)
        assert workload.sessions_started > 20  # replacements happened
        assert workload.out_meter.total_packets > 0

    def test_first_packet_carries_video_header(self, sim):
        host = NfvHost(sim, name="video-host2")
        detector = VideoFlowDetector("vd")
        host.add_nf(detector)
        install_chain(host, ["vd"])
        VideoSessionWorkload(sim, host, concurrent_flows=5,
                             mean_lifetime_ns=S, per_flow_mbps=1.0)
        sim.run(until=100 * MS)
        assert detector.video_flows >= 5


class TestDdosRamp:
    def test_ramp_profile(self, sim, host):
        workload = DdosRampWorkload(
            sim, host, normal_mbps=10.0, attack_start_ns=1 * S,
            attack_ramp_mbps_per_s=5.0, attack_max_mbps=20.0)
        assert workload.attack_rate_mbps(0) == 0.0
        assert workload.attack_rate_mbps(2 * S) == pytest.approx(5.0)
        assert workload.attack_rate_mbps(100 * S) == 20.0

    def test_attack_uses_many_sources_in_prefix(self, sim):
        host = make_dpdk_forwarder(sim)
        workload = DdosRampWorkload(
            sim, host, normal_mbps=5.0, attack_start_ns=10 * MS,
            attack_ramp_mbps_per_s=2000.0, attack_max_mbps=50.0,
            packet_size=256)
        sim.run(until=200 * MS)
        assert workload.in_meter.total_packets > 0
        sources = {flow.src_ip for flow in workload._attack_flows}
        assert len(sources) == len(workload._attack_flows)
        assert all(ip.startswith("66.66.") for ip in sources)


class TestMemcachedWorkload:
    def test_requests_proxied_and_rtt_recorded(self, sim):
        host = NfvHost(sim, name="mc-host")
        host.add_nf(MemcachedProxy(
            "mc", servers=[("10.8.0.10", 11211), ("10.8.0.11", 11211)]))
        install_chain(host, ["mc"])
        workload = MemcachedWorkload(sim, host,
                                     requests_per_second=50_000)
        sim.run(until=50 * MS)
        assert workload.forwarded > 0
        # RTT = proxy traversal (µs-scale) + server RTT (90 µs).
        assert workload.latency.mean_us() > 90.0
        assert workload.latency.mean_us() < 150.0

    def test_zipf_keys_skewed(self, sim):
        host = NfvHost(sim, name="mc-host2")
        proxy = MemcachedProxy("mc", servers=[("10.8.0.10", 11211)])
        host.add_nf(proxy)
        install_chain(host, ["mc"])
        MemcachedWorkload(sim, host, requests_per_second=100_000,
                          key_space=100)
        sim.run(until=50 * MS)
        assert proxy.requests_forwarded > 100
