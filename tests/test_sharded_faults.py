"""Cross-shard fault injection: a fault lands on its owning shard and
produces the same observables as the monolithic (``shards=1``) run.

The reference scenario splits 4 hosts over 2 shards as (h0, h1) and
(h2, h3); both faults target hosts owned by the *second* shard, so the
injection must be routed across the partition boundary and still fire
at the exact same nanosecond with the exact same effect.
"""

import pytest

from repro.faults.plan import FaultPlan, LinkFlap, NfCrash
from repro.sim import MS
from repro.sim.sharded import ShardedSimulator

from tests.test_sharded_parity import (
    het_scenario,
    make_scenario,
    strip_pool,
)

HOSTS = ("h0", "h1", "h2", "h3")


def faulted_scenario():
    scenario = make_scenario()
    plan = FaultPlan()
    # Both targets live on shard 1 of the 2-shard split.  The flap
    # fires first, on the port where h2's frames *arrive* at h3 (drops
    # happen at the receiving NIC); the crash then starves the rest of
    # the run at h2.
    plan.add(LinkFlap(at_ns=2 * MS, port="to-h2", host="h3",
                      down_ns=MS))
    plan.add(NfCrash(at_ns=4 * MS, service="c", host="h2"))
    scenario.fault_plan = plan
    return scenario


@pytest.fixture(scope="module")
def runs():
    from tests.test_sharded_parity import DEFAULT_WORKERS
    base = ShardedSimulator(faulted_scenario(), shards=1).run()
    split = ShardedSimulator(faulted_scenario(), shards=2,
                             workers=DEFAULT_WORKERS).run()
    return base, split


class TestCrossShardFaults:
    def test_faults_fire_on_the_owning_shard(self, runs):
        _base, split = runs
        assert split.plan.groups == (("h0", "h1"), ("h2", "h3"))
        assert split.shard_results[0]["fired_faults"] == []
        fired = split.shard_results[1]["fired_faults"]
        assert [(kind, host) for _, kind, host, _ in fired] \
            == [("LinkFlap", "h3"), ("NfCrash", "h2")]

    def test_fired_timetable_matches_single_shard(self, runs):
        base, split = runs
        assert split.fired_faults == base.fired_faults
        assert len(split.fired_faults) == 2

    def test_fault_observables_match_single_shard(self, runs):
        base, split = runs
        for name in HOSTS:
            assert (strip_pool(split.host_summary(name))
                    == strip_pool(base.host_summary(name))), name
            assert split.deliveries(name) == base.deliveries(name), name
        assert split.totals() == base.totals()

    def test_faults_actually_damaged_the_chain(self, runs):
        base, _split = runs
        # The flap eats frames arriving at h3 while the link is down...
        assert base.host_summary("h3")["nic_link_dropped"] > 0
        # ...and the crash leaves "c" a dead ring that fills and drops,
        # so the run delivers less than the fault-free reference.
        assert base.host_summary("h2")["dropped_ring_full"] > 0
        from tests.test_sharded_parity import sharded_run
        assert base.received < sharded_run(shards=1).received

    def test_eventlog_records_injections_identically(self, runs):
        base, split = runs
        for name in HOSTS:
            base_events = [event for event in base.events
                           if event.host == name]
            split_events = [event for event in split.events
                            if event.host == name]
            assert split_events == base_events, name
        injected = [event for event in split.events
                    if event.category == "fault_injected"]
        assert [(event.get("kind"), event.host)
                for event in injected] \
            == [("LinkFlap", "h3"), ("NfCrash", "h2")]


def flapped_het_scenario():
    """The mixed 50 us / 5 ms chain with the *slow* crossing link
    (h2-h3, 5 ms WAN) flapped while end-to-end traffic is in flight —
    the adaptive schedule advances h3's shard in long WAN strides, and
    the flap must still land at the exact same nanosecond."""
    scenario = het_scenario()
    plan = FaultPlan()
    # End-to-end path delay is ~10 ms, so frames reach h3's "to-h2"
    # port from ~10 ms on; a 5 ms outage starting at 11 ms eats a slice
    # of the delivery stream mid-run.
    plan.add(LinkFlap(at_ns=11 * MS, port="to-h2", host="h3",
                      down_ns=5 * MS))
    scenario.fault_plan = plan
    return scenario


class TestFaultOnSlowLinkUnderAdaptiveSchedule:
    @pytest.fixture(scope="class")
    def het_runs(self):
        from tests.test_sharded_parity import DEFAULT_WORKERS
        base = ShardedSimulator(flapped_het_scenario(), shards=1).run()
        adaptive = ShardedSimulator(flapped_het_scenario(), shards=4,
                                    workers=DEFAULT_WORKERS,
                                    adaptive_windows=True).run()
        return base, adaptive

    def test_flap_fires_on_owning_shard_at_exact_time(self, het_runs):
        _base, adaptive = het_runs
        fired = [fault for result in adaptive.shard_results
                 for fault in result["fired_faults"]]
        assert [(when, kind, host) for when, kind, host, _ in fired] \
            == [(11 * MS, "LinkFlap", "h3")]
        assert adaptive.shard_results[3]["fired_faults"] != []

    def test_observables_match_single_shard(self, het_runs):
        base, adaptive = het_runs
        for name in HOSTS:
            assert (strip_pool(adaptive.host_summary(name))
                    == strip_pool(base.host_summary(name))), name
            assert adaptive.deliveries(name) \
                == base.deliveries(name), name
        assert adaptive.totals() == base.totals()
        assert adaptive.fired_faults == base.fired_faults

    def test_flap_really_dropped_wan_frames(self, het_runs):
        base, _adaptive = het_runs
        assert base.host_summary("h3")["nic_link_dropped"] > 0
        # The outage cost deliveries relative to the fault-free run.
        from tests.test_sharded_parity import het_run
        assert base.received < het_run(shards=1).received
