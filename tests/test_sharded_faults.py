"""Cross-shard fault injection: a fault lands on its owning shard and
produces the same observables as the monolithic (``shards=1``) run.

The reference scenario splits 4 hosts over 2 shards as (h0, h1) and
(h2, h3); both faults target hosts owned by the *second* shard, so the
injection must be routed across the partition boundary and still fire
at the exact same nanosecond with the exact same effect.
"""

import pytest

from repro.faults.plan import FaultPlan, LinkFlap, NfCrash
from repro.sim import MS
from repro.sim.sharded import ShardedSimulator

from tests.test_sharded_parity import make_scenario, strip_pool

HOSTS = ("h0", "h1", "h2", "h3")


def faulted_scenario():
    scenario = make_scenario()
    plan = FaultPlan()
    # Both targets live on shard 1 of the 2-shard split.  The flap
    # fires first, on the port where h2's frames *arrive* at h3 (drops
    # happen at the receiving NIC); the crash then starves the rest of
    # the run at h2.
    plan.add(LinkFlap(at_ns=2 * MS, port="to-h2", host="h3",
                      down_ns=MS))
    plan.add(NfCrash(at_ns=4 * MS, service="c", host="h2"))
    scenario.fault_plan = plan
    return scenario


@pytest.fixture(scope="module")
def runs():
    from tests.test_sharded_parity import DEFAULT_WORKERS
    base = ShardedSimulator(faulted_scenario(), shards=1).run()
    split = ShardedSimulator(faulted_scenario(), shards=2,
                             workers=DEFAULT_WORKERS).run()
    return base, split


class TestCrossShardFaults:
    def test_faults_fire_on_the_owning_shard(self, runs):
        _base, split = runs
        assert split.plan.groups == (("h0", "h1"), ("h2", "h3"))
        assert split.shard_results[0]["fired_faults"] == []
        fired = split.shard_results[1]["fired_faults"]
        assert [(kind, host) for _, kind, host, _ in fired] \
            == [("LinkFlap", "h3"), ("NfCrash", "h2")]

    def test_fired_timetable_matches_single_shard(self, runs):
        base, split = runs
        assert split.fired_faults == base.fired_faults
        assert len(split.fired_faults) == 2

    def test_fault_observables_match_single_shard(self, runs):
        base, split = runs
        for name in HOSTS:
            assert (strip_pool(split.host_summary(name))
                    == strip_pool(base.host_summary(name))), name
            assert split.deliveries(name) == base.deliveries(name), name
        assert split.totals() == base.totals()

    def test_faults_actually_damaged_the_chain(self, runs):
        base, _split = runs
        # The flap eats frames arriving at h3 while the link is down...
        assert base.host_summary("h3")["nic_link_dropped"] > 0
        # ...and the crash leaves "c" a dead ring that fills and drops,
        # so the run delivers less than the fault-free reference.
        assert base.host_summary("h2")["dropped_ring_full"] > 0
        from tests.test_sharded_parity import sharded_run
        assert base.received < sharded_run(shards=1).received

    def test_eventlog_records_injections_identically(self, runs):
        base, split = runs
        for name in HOSTS:
            base_events = [event for event in base.events
                           if event.host == name]
            split_events = [event for event in split.events
                            if event.host == name]
            assert split_events == base_events, name
        injected = [event for event in split.events
                    if event.category == "fault_injected"]
        assert [(event.get("kind"), event.host)
                for event in injected] \
            == [("LinkFlap", "h3"), ("NfCrash", "h2")]
