"""Shared fixtures: simulators, hosts, flows, and a standard chain setup."""

from __future__ import annotations

import pytest

from repro.dataplane import FlowTableEntry, NfvHost, ToPort, ToService
from repro.net import FiveTuple, FlowMatch
from repro.net.headers import PROTO_TCP, PROTO_UDP
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def flow() -> FiveTuple:
    return FiveTuple(src_ip="10.0.0.1", dst_ip="10.0.0.2",
                     protocol=PROTO_TCP, src_port=1234, dst_port=80)


@pytest.fixture
def udp_flow() -> FiveTuple:
    return FiveTuple(src_ip="10.0.0.5", dst_ip="10.0.0.6",
                     protocol=PROTO_UDP, src_port=5000, dst_port=53)


@pytest.fixture
def host(sim: Simulator) -> NfvHost:
    """A bare two-port host with no rules and no NFs."""
    return NfvHost(sim, name="host0")


def install_chain(host: NfvHost, services: list[str],
                  in_port: str = "eth0", out_port: str = "eth1",
                  match: FlowMatch | None = None) -> None:
    """Install a linear service chain in_port -> s1 -> ... -> out_port."""
    match = match or FlowMatch.any()
    hops = [ToService(service) for service in services] + [ToPort(out_port)]
    host.install_rule(FlowTableEntry(scope=in_port, match=match,
                                     actions=(hops[0],)))
    for service, nxt in zip(services, hops[1:], strict=True):
        host.install_rule(FlowTableEntry(scope=service, match=match,
                                         actions=(nxt,)))


def drain(sim: Simulator, until_ns: int) -> None:
    """Run the simulator for a bounded window."""
    sim.run(until=until_ns)
