"""Store semantics: FIFO, capacity, blocking, and property-based checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, Store


@pytest.fixture
def store(sim):
    return Store(sim, capacity=3)


class TestBasics:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_put_then_get_fifo(self, sim, store):
        for item in (1, 2, 3):
            store.put(item)
        received = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        sim.process(consumer())
        sim.run()
        assert received == [1, 2, 3]

    def test_len_tracks_items(self, sim, store):
        assert len(store) == 0
        store.try_put("x")
        assert len(store) == 1
        store.try_get()
        assert len(store) == 0

    def test_try_put_drops_when_full(self, sim, store):
        assert all(store.try_put(i) for i in range(3))
        assert store.is_full
        assert not store.try_put(99)
        assert len(store) == 3

    def test_try_get_empty_returns_none(self, store):
        assert store.try_get() is None


class TestBlocking:
    def test_get_blocks_until_put(self, sim, store):
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        sim.process(consumer())

        def producer():
            yield sim.timeout(42)
            yield store.put("late")

        sim.process(producer())
        sim.run()
        assert got == [(42, "late")]

    def test_put_blocks_until_space(self, sim, store):
        for i in range(3):
            store.try_put(i)
        done = []

        def producer():
            yield store.put("extra")
            done.append(sim.now)

        sim.process(producer())

        def consumer():
            yield sim.timeout(10)
            store.try_get()

        sim.process(consumer())
        sim.run()
        assert done == [10]
        assert list(store.items) == [1, 2, "extra"]

    def test_direct_handoff_preserves_getter_order(self, sim, store):
        received = []

        def consumer(tag):
            item = yield store.get()
            received.append((tag, item))

        sim.process(consumer("first"))
        sim.process(consumer("second"))

        def producer():
            yield sim.timeout(1)
            store.try_put("a")
            store.try_put("b")

        sim.process(producer())
        sim.run()
        assert received == [("first", "a"), ("second", "b")]

    def test_waiting_putters_admitted_in_order(self, sim):
        store = Store(sim, capacity=1)
        store.try_put("occupant")

        def producer(item):
            yield store.put(item)

        sim.process(producer("p1"))
        sim.process(producer("p2"))
        drained = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                drained.append(item)

        sim.process(consumer())
        sim.run()
        assert drained == ["occupant", "p1", "p2"]


class TestProperties:
    @given(ops=st.lists(
        st.one_of(st.tuples(st.just("put"), st.integers()),
                  st.tuples(st.just("get"), st.none())),
        max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_fifo_and_capacity_invariants(self, ops):
        """try_put/try_get behave exactly like a bounded deque."""
        import collections
        sim = Simulator()
        store = Store(sim, capacity=5)
        reference: collections.deque = collections.deque(maxlen=None)
        for op, value in ops:
            if op == "put":
                accepted = store.try_put(value)
                assert accepted == (len(reference) < 5)
                if accepted:
                    reference.append(value)
            else:
                item = store.try_get()
                expected = reference.popleft() if reference else None
                assert item == expected
            assert len(store) == len(reference) <= 5

    @given(items=st.lists(st.integers(), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_everything_put_is_got_in_order(self, items):
        sim = Simulator()
        store = Store(sim, capacity=len(items))
        received = []

        def producer():
            for item in items:
                yield store.put(item)
                yield sim.timeout(1)

        def consumer():
            for _ in items:
                item = yield store.get()
                received.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == items
