"""Unit tests for dataplane pieces: rings, verdicts, balancers, costs,
descriptors, stats."""

import pytest

from repro.dataplane import (
    HostCosts,
    HostStats,
    NfVerdict,
    PacketDescriptor,
    RingBuffer,
    ToPort,
    ToService,
    Verdict,
    resolve_parallel_verdicts,
)
from repro.dataplane.load_balancer import (
    LoadBalancePolicy,
    ServiceLoadBalancer,
)
from repro.net import Packet


class TestRingBuffer:
    def test_positive_slots_required(self, sim):
        with pytest.raises(ValueError):
            RingBuffer(sim, name="r", slots=0)

    def test_enqueue_dequeue_counts(self, sim):
        ring = RingBuffer(sim, name="r", slots=2)
        assert ring.try_enqueue("a")
        assert ring.try_enqueue("b")
        assert ring.enqueued == 2
        assert ring.occupancy == 2

    def test_drop_on_full(self, sim):
        ring = RingBuffer(sim, name="r", slots=1)
        assert ring.try_enqueue("a")
        assert not ring.try_enqueue("b")
        assert ring.dropped == 1
        assert ring.is_full

    def test_blocking_get(self, sim):
        ring = RingBuffer(sim, name="r", slots=4)
        received = []

        def consumer():
            item = yield ring.get()
            received.append(item)

        sim.process(consumer())
        sim.schedule(10, lambda: ring.try_enqueue("late"))
        sim.run()
        assert received == ["late"]


class TestVerdicts:
    def test_send_requires_destination(self):
        with pytest.raises(ValueError):
            Verdict(NfVerdict.SEND)

    def test_non_send_refuses_destination(self):
        with pytest.raises(ValueError):
            Verdict(NfVerdict.DEFAULT, ToPort("eth1"))

    def test_constructors(self):
        assert Verdict.discard().kind is NfVerdict.DISCARD
        assert Verdict.default().kind is NfVerdict.DEFAULT
        assert (Verdict.send_to_service("ids").destination
                == ToService("ids"))
        assert Verdict.send_to_port("eth1").destination == ToPort("eth1")


class TestParallelConflicts:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            resolve_parallel_verdicts([])

    def test_discard_beats_everything(self):
        verdicts = [(0, Verdict.default()),
                    (1, Verdict.discard()),
                    (2, Verdict.send_to_port("eth1"))]
        assert resolve_parallel_verdicts(verdicts).kind is NfVerdict.DISCARD

    def test_transmit_out_beats_service_send_and_default(self):
        verdicts = [(0, Verdict.default()),
                    (1, Verdict.send_to_service("scrubber")),
                    (2, Verdict.send_to_port("eth1"))]
        winner = resolve_parallel_verdicts(verdicts)
        assert winner.destination == ToPort("eth1")

    def test_send_beats_default(self):
        verdicts = [(0, Verdict.default()),
                    (1, Verdict.send_to_service("scrubber"))]
        winner = resolve_parallel_verdicts(verdicts)
        assert winner.destination == ToService("scrubber")

    def test_all_default(self):
        verdicts = [(0, Verdict.default()), (1, Verdict.default())]
        assert resolve_parallel_verdicts(verdicts).kind is NfVerdict.DEFAULT

    def test_vm_priority_policy(self):
        verdicts = [(3, Verdict.discard()), (1, Verdict.default())]
        winner = resolve_parallel_verdicts(verdicts, policy="vm_priority")
        assert winner.kind is NfVerdict.DEFAULT

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            resolve_parallel_verdicts([(0, Verdict.default())],
                                      policy="coin_flip")


class _FakeVm:
    def __init__(self, occupancy):
        class _Ring:
            pass
        self.rx_ring = _Ring()
        self.rx_ring.occupancy = occupancy


class TestLoadBalancer:
    def test_single_replica_short_circuits(self, flow):
        balancer = ServiceLoadBalancer(LoadBalancePolicy.LEAST_QUEUE)
        vm = _FakeVm(5)
        chosen, cost = balancer.choose([vm], flow)
        assert chosen is vm and cost == 0

    def test_round_robin_rotates(self, flow):
        balancer = ServiceLoadBalancer(LoadBalancePolicy.ROUND_ROBIN)
        vms = [_FakeVm(0), _FakeVm(0), _FakeVm(0)]
        picks = [balancer.choose(vms, flow)[0] for _ in range(6)]
        assert picks == vms + vms

    def test_least_queue_picks_minimum_and_charges_scan(self, flow):
        balancer = ServiceLoadBalancer(LoadBalancePolicy.LEAST_QUEUE)
        vms = [_FakeVm(9), _FakeVm(2), _FakeVm(7)]
        chosen, cost = balancer.choose(vms, flow)
        assert chosen is vms[1]
        assert cost == 15  # §5.1: 15 ns queue scan

    def test_flow_hash_is_sticky(self, flow, udp_flow):
        balancer = ServiceLoadBalancer(LoadBalancePolicy.FLOW_HASH)
        vms = [_FakeVm(0), _FakeVm(0), _FakeVm(0), _FakeVm(0)]
        first = balancer.choose(vms, flow)[0]
        for _ in range(5):
            assert balancer.choose(vms, flow)[0] is first

    def test_no_replicas_rejected(self, flow):
        balancer = ServiceLoadBalancer()
        with pytest.raises(ValueError):
            balancer.choose([], flow)


class TestHostCosts:
    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            HostCosts(rx_service_ns=-1)

    def test_paper_micro_costs(self):
        costs = HostCosts()
        assert costs.flow_lookup_ns == 30
        assert costs.queue_scan_ns == 15
        assert costs.sdn_lookup_ns == 31_000_000

    def test_sequential_visit_near_1_1us(self):
        visit = HostCosts().sequential_visit_ns()
        assert 1_000 <= visit <= 1_250  # Table 2: ≈1.1 µs per hop

    def test_parallel_extra_near_0_25us(self):
        extra = HostCosts().parallel_extra_visit_ns()
        assert 200 <= extra <= 320  # Table 2: ≈0.25 µs per extra VM


class TestDescriptors:
    def test_cache_validity_tracks_generation(self, flow):
        descriptor = PacketDescriptor(packet=Packet(flow=flow),
                                      scope="eth0")
        assert not descriptor.cache_valid(0)
        sentinel = object()
        descriptor.cache_lookup(sentinel, generation=7)
        assert descriptor.cache_valid(7)
        assert not descriptor.cache_valid(8)

    def test_fork_shares_packet(self, flow):
        packet = Packet(flow=flow)
        descriptor = PacketDescriptor(packet=packet, scope="eth0",
                                      ingress_at=123)
        member = descriptor.fork(scope="ids", group_id=9, group_index=1)
        assert member.packet is packet
        assert member.group_id == 9
        assert member.group_index == 1
        assert member.ingress_at == 123
        assert member.verdict is None


class TestHostStats:
    def test_record_and_summary(self):
        stats = HostStats()
        stats.record_rx(100)
        stats.record_tx("eth1", 100)
        stats.record_service("ids")
        summary = stats.summary()
        assert summary["rx_packets"] == 1
        assert summary["tx_bytes"] == 100
        assert stats.per_service_packets["ids"] == 1
        assert stats.per_port_tx_bytes["eth1"] == 100
