"""Flow table semantics: scoping, precedence, specialization, generations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane import Drop, FlowTable, FlowTableEntry, ToPort, ToService
from repro.net import FiveTuple, FlowMatch
from repro.net.headers import PROTO_TCP


@pytest.fixture
def table():
    return FlowTable()


def entry(scope="svc", match=None, actions=None, **kw):
    if actions is None:
        actions = (ToPort("eth1"),)
    return FlowTableEntry(scope=scope, match=match or FlowMatch.any(),
                          actions=actions, **kw)


class TestEntry:
    def test_needs_actions(self):
        with pytest.raises(ValueError):
            entry(actions=())

    def test_default_is_first(self):
        rule = entry(actions=(ToService("a"), ToService("b")))
        assert rule.default_action == ToService("a")

    def test_allows_listed_actions_and_drop(self):
        rule = entry(actions=(ToService("a"), ToPort("eth1")))
        assert rule.allows(ToService("a"))
        assert rule.allows(ToPort("eth1"))
        assert rule.allows(Drop())
        assert not rule.allows(ToService("other"))

    def test_with_default_moves_existing_action_to_front(self):
        rule = entry(actions=(ToService("a"), ToService("b")))
        updated = rule.with_default(ToService("b"))
        assert updated.actions == (ToService("b"), ToService("a"))

    def test_with_default_prepends_new_action(self):
        rule = entry(actions=(ToService("a"),))
        updated = rule.with_default(ToPort("fast"))
        assert updated.actions == (ToPort("fast"), ToService("a"))

    def test_parallel_requires_multiple_service_actions(self):
        with pytest.raises(ValueError):
            entry(actions=(ToService("a"),), parallel=True)
        with pytest.raises(ValueError):
            entry(actions=(ToService("a"), ToPort("eth1")), parallel=True)
        entry(actions=(ToService("a"), ToService("b")), parallel=True)


class TestLookup:
    def test_miss_returns_none_and_counts(self, table, flow):
        assert table.lookup("svc", flow) is None
        assert table.misses == 1
        assert table.lookups == 1

    def test_scope_isolation(self, table, flow):
        table.install(entry(scope="svc_a"))
        assert table.lookup("svc_b", flow) is None
        assert table.lookup("svc_a", flow) is not None

    def test_exact_beats_wildcard(self, table, flow):
        table.install(entry(actions=(ToPort("wild"),)))
        table.install(entry(match=FlowMatch.exact(flow),
                            actions=(ToPort("exact"),)))
        assert table.lookup("svc", flow).default_action == ToPort("exact")

    def test_higher_priority_wildcard_wins(self, table, flow):
        table.install(entry(actions=(ToPort("low"),), priority=0))
        table.install(entry(match=FlowMatch(protocol=PROTO_TCP),
                            actions=(ToPort("high"),), priority=5))
        assert table.lookup("svc", flow).default_action == ToPort("high")

    def test_specificity_breaks_priority_ties(self, table, flow):
        table.install(entry(actions=(ToPort("any"),)))
        table.install(entry(match=FlowMatch(dst_port=80),
                            actions=(ToPort("port80"),)))
        assert table.lookup("svc", flow).default_action == ToPort("port80")

    def test_insertion_order_breaks_full_ties(self, table, flow):
        table.install(entry(match=FlowMatch(dst_port=80),
                            actions=(ToPort("first"),)))
        table.install(entry(match=FlowMatch(protocol=PROTO_TCP),
                            actions=(ToPort("second"),)))
        assert table.lookup("svc", flow).default_action == ToPort("second")

    def test_non_matching_wildcard_skipped(self, table, flow):
        table.install(entry(match=FlowMatch(dst_port=443),
                            actions=(ToPort("https"),)))
        assert table.lookup("svc", flow) is None


class TestMutation:
    def test_install_replaces_same_match(self, table, flow):
        table.install(entry(actions=(ToPort("old"),)))
        table.install(entry(actions=(ToPort("new"),)))
        assert len(table) == 1
        assert table.lookup("svc", flow).default_action == ToPort("new")

    def test_remove_exact(self, table, flow):
        table.install(entry(match=FlowMatch.exact(flow)))
        assert table.remove("svc", FlowMatch.exact(flow))
        assert table.lookup("svc", flow) is None
        assert not table.remove("svc", FlowMatch.exact(flow))

    def test_remove_wildcard(self, table, flow):
        table.install(entry())
        assert table.remove("svc", FlowMatch.any())
        assert len(table) == 0

    def test_generation_bumps_on_every_mutation(self, table, flow):
        start = table.generation
        table.install(entry())
        assert table.generation == start + 1
        table.remove("svc", FlowMatch.any())
        assert table.generation == start + 2
        table.clear()
        assert table.generation == start + 3

    def test_lookup_does_not_bump_generation(self, table, flow):
        table.install(entry())
        generation = table.generation
        table.lookup("svc", flow)
        assert table.generation == generation


class TestSpecialize:
    def test_clones_wildcard_into_exact(self, table, flow):
        table.install(entry(actions=(ToService("a"), ToService("b"))))
        exact = table.specialize("svc", flow)
        assert exact.match == FlowMatch.exact(flow)
        assert exact.actions == (ToService("a"), ToService("b"))
        assert len(table) == 2

    def test_existing_exact_returned_unchanged(self, table, flow):
        table.install(entry(match=FlowMatch.exact(flow)))
        first = table.specialize("svc", flow)
        second = table.specialize("svc", flow)
        assert first is second
        assert len(table) == 1

    def test_specialize_without_match_returns_none(self, table, flow):
        assert table.specialize("svc", flow) is None

    def test_specialized_flow_diverges_from_wildcard(self, table, flow,
                                                     udp_flow):
        table.install(entry(actions=(ToService("a"), ToService("b"))))
        exact = table.specialize("svc", flow)
        table.install(exact.with_default(ToService("b")))
        assert table.lookup("svc", flow).default_action == ToService("b")
        assert table.lookup("svc", udp_flow).default_action == ToService("a")


class TestIntrospection:
    def test_entries_and_scopes(self, table, flow):
        table.install(entry(scope="a"))
        table.install(entry(scope="b", match=FlowMatch.exact(flow)))
        assert table.scopes() == {"a", "b"}
        assert len(table.entries()) == 2
        assert len(table.entries("a")) == 1

    def test_dump_renders(self, table, flow):
        table.install(entry(scope="eth0", actions=(ToService("vd"),)))
        table.install(entry(
            scope="vd", match=FlowMatch(src_ip="10.0.0.1"),
            actions=(ToService("pe"), ToPort("eth1"))))
        text = table.dump()
        assert "eth0" in text and "svc:vd" in text
        assert "src=10.0.0.1" in text


ips = st.sampled_from(["10.0.0.1", "10.0.0.2", "10.1.0.1"])
ports_st = st.sampled_from([80, 443, 8080])
flows_st = st.builds(FiveTuple, src_ip=ips, dst_ip=ips,
                     protocol=st.just(PROTO_TCP),
                     src_port=ports_st, dst_port=ports_st)


class TestProperties:
    @given(flows=st.lists(flows_st, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_lookup_result_always_matches_flow(self, flows):
        table = FlowTable()
        table.install(entry(match=FlowMatch(dst_port=80)))
        table.install(entry(match=FlowMatch(src_ip="10.0.0.1")))
        for flow in flows:
            rule = table.lookup("svc", flow)
            if rule is not None:
                assert rule.match.matches(flow)
            else:
                assert flow.dst_port != 80 and flow.src_ip != "10.0.0.1"

    @given(flows=st.lists(flows_st, min_size=1, max_size=10, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_specialization_never_changes_behaviour(self, flows):
        """Specializing a flow must not alter any flow's default action."""
        table = FlowTable()
        table.install(entry(actions=(ToService("x"), ToService("y"))))
        before = {flow: table.lookup("svc", flow).default_action
                  for flow in flows}
        for flow in flows:
            table.specialize("svc", flow)
        after = {flow: table.lookup("svc", flow).default_action
                 for flow in flows}
        assert before == after
