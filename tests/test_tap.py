"""Packet tap tests: capture, chaining, and the capture→replay loop."""

import pytest

from repro.baselines import make_dpdk_forwarder
from repro.dataplane import NfvHost
from repro.dataplane.tap import PacketTap
from repro.net import Packet
from repro.nfs import NoOpNf
from repro.sim import MS, Simulator
from repro.workloads import (
    FlowSpec,
    PktGen,
    TraceReplayer,
    trace_from_csv,
    trace_to_csv,
)

from tests.conftest import install_chain


class TestCapture:
    def test_egress_tap_records_frames(self, sim, flow):
        host = make_dpdk_forwarder(sim)
        tap = PacketTap.on_egress(sim, host, "eth1")
        for i in range(5):
            host.inject("eth0", Packet(flow=flow, size=128,
                                       payload=f"p{i}"))
        sim.run(until=5 * MS)
        assert len(tap) == 5
        assert [record.payload for record in tap.records] == [
            f"p{i}" for i in range(5)]

    def test_egress_tap_chains_existing_observer(self, sim, flow):
        host = make_dpdk_forwarder(sim)
        seen = []
        host.port("eth1").on_egress = seen.append
        tap = PacketTap.on_egress(sim, host, "eth1")
        host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=5 * MS)
        assert len(tap) == 1 and len(seen) == 1

    def test_ingress_tap_skips_dropped_frames(self, sim, flow):
        host = NfvHost(sim, name="tap0")
        # No rules: everything still enters the RX ring and is counted,
        # so test drop behaviour via ring exhaustion instead: shrink it.
        host.manager.ports["eth0"].ingress.capacity = 2
        tap = PacketTap.on_ingress(sim, host, "eth0")
        for _ in range(5):
            host.inject("eth0", Packet(flow=flow, size=128))
        # Only the ring-capacity-admitted frames are captured.
        assert len(tap) == 2

    def test_capacity_bound(self, sim, flow):
        host = make_dpdk_forwarder(sim)
        tap = PacketTap.on_egress(sim, host, "eth1", max_records=3)
        for _ in range(6):
            host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=5 * MS)
        assert len(tap) == 3 and tap.truncated == 3

    def test_to_trace_rebases_time(self, sim, flow):
        host = make_dpdk_forwarder(sim)
        tap = PacketTap.on_egress(sim, host, "eth1")

        def late_sender():
            yield sim.timeout(10 * MS)
            host.inject("eth0", Packet(flow=flow, size=128))
            yield sim.timeout(1 * MS)
            host.inject("eth0", Packet(flow=flow, size=128))

        sim.process(late_sender())
        sim.run(until=20 * MS)
        trace = tap.to_trace()
        assert trace[0].timestamp_ns == 0
        assert trace[1].timestamp_ns == pytest.approx(1 * MS, abs=10_000)

    def test_empty_trace(self, sim):
        tap = PacketTap(sim)
        assert tap.to_trace() == []
        with pytest.raises(ValueError):
            PacketTap(sim, max_records=0)


class TestCaptureReplayLoop:
    def test_captured_traffic_replays_identically(self, sim, flow):
        """Capture the output of a sampler chain, serialize to CSV,
        replay the CSV into a second host, and get the same stream."""
        host_a = NfvHost(sim, name="origin")
        host_a.add_nf(NoOpNf("svc"))
        install_chain(host_a, ["svc"])
        tap = PacketTap.on_egress(sim, host_a, "eth1")
        gen = PktGen(sim, host_a, measure_ports=())
        gen.add_flow(FlowSpec(flow=flow, rate_mbps=100.0,
                              packet_size=256, stop_ns=5 * MS,
                              payload=lambda seq: f"seq{seq}"))
        sim.run(until=10 * MS)
        captured = tap.to_trace()
        assert captured

        csv_text = trace_to_csv(captured)
        restored = trace_from_csv(csv_text)

        sim2 = Simulator()
        host_b = make_dpdk_forwarder(sim2)
        replay_out = []
        host_b.port("eth1").on_egress = (
            lambda p: replay_out.append(p.payload))
        TraceReplayer(sim2, host_b, restored)
        sim2.run(until=20 * MS)
        assert replay_out == [record.payload for record in captured]
