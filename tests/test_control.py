"""SDN controller and NFV orchestrator tests."""

import pytest

from repro.control import NfvOrchestrator, SdnController
from repro.control.openflow import FlowModMessage, PacketInMessage
from repro.control.orchestrator import VM_BOOT_NS
from repro.dataplane import FlowTableEntry, NfvHost, ToPort
from repro.net import FlowMatch, Packet
from repro.nfs import NoOpNf
from repro.sim import MS, S, US

from tests.conftest import install_chain


class StaticApp:
    """Northbound app returning a fixed forwarding rule."""

    def __init__(self, out_port="eth1"):
        self.out_port = out_port
        self.queries = []

    def rules_for(self, host, scope, flow):
        self.queries.append((host, scope, flow))
        return [FlowTableEntry(scope=scope, match=FlowMatch.exact(flow),
                               actions=(ToPort(self.out_port),))]


class TestControllerQueue:
    def test_idle_lookup_is_31ms(self, sim):
        controller = SdnController(sim)
        assert controller.idle_lookup_ns == 31 * MS

    def test_flow_request_round_trip_time(self, sim, flow):
        controller = SdnController(sim, northbound=StaticApp())
        reply = controller.flow_request("h0", "eth0", flow)
        sim.run(reply)
        assert sim.now == controller.idle_lookup_ns
        assert len(reply.value) == 1

    def test_requests_queue_behind_each_other(self, sim, flow):
        controller = SdnController(sim, service_time_ns=1 * MS,
                                   propagation_ns=0,
                                   northbound=StaticApp())
        replies = [controller.flow_request("h0", "eth0", flow)
                   for _ in range(5)]
        done_times = []
        for reply in replies:
            reply.callbacks.append(lambda e: done_times.append(sim.now))
        sim.run()
        assert done_times == [1 * MS, 2 * MS, 3 * MS, 4 * MS, 5 * MS]
        assert controller.stats.requests == 5
        assert controller.stats.max_queue >= 1

    def test_capacity_per_second(self, sim):
        controller = SdnController(sim, service_time_ns=500 * US)
        assert controller.capacity_per_second == 2000

    def test_no_northbound_returns_empty(self, sim, flow):
        controller = SdnController(sim)
        reply = controller.flow_request("h0", "eth0", flow)
        assert sim.run(reply) == []

    def test_push_rules_installs_on_host(self, sim, flow):
        controller = SdnController(sim, propagation_ns=100 * US)
        host = NfvHost(sim, name="h0")
        done = controller.push_rules(host.manager, [FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToPort("eth1"),))])
        sim.run(done)
        assert len(host.flow_table) == 1

    def test_submit_work_runs_in_controller(self, sim):
        controller = SdnController(sim, service_time_ns=2 * MS,
                                   propagation_ns=1 * MS)
        result = controller.submit_work(lambda: "computed")
        assert sim.run(result) == "computed"
        assert sim.now == 4 * MS

    def test_service_time_positive(self, sim):
        with pytest.raises(ValueError):
            SdnController(sim, service_time_ns=0)

    def test_utilization(self, sim, flow):
        controller = SdnController(sim, service_time_ns=1 * MS,
                                   propagation_ns=0)
        for _ in range(3):
            controller.flow_request("h0", "eth0", flow)
        sim.run()
        assert controller.stats.utilization(sim.now) > 0.9


class TestMissPathIntegration:
    def test_miss_consults_controller_then_forwards(self, sim, flow):
        app = StaticApp()
        controller = SdnController(sim, northbound=app)
        host = NfvHost(sim, name="h0", controller=controller)
        out = []
        host.port("eth1").on_egress = out.append
        for _ in range(4):
            host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=100 * MS)
        assert len(out) == 4
        # One controller consultation for the whole flow (packets 2-4
        # were buffered behind the pending request).
        assert len(app.queries) == 1
        assert host.stats.sdn_requests == 1

    def test_installed_rule_serves_later_packets_locally(self, sim, flow):
        app = StaticApp()
        controller = SdnController(sim, northbound=app)
        host = NfvHost(sim, name="h0", controller=controller)
        out = []
        host.port("eth1").on_egress = out.append
        host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=100 * MS)
        t_first = sim.now
        host.inject("eth0", Packet(flow=flow, size=128, created_at=sim.now))
        sim.run(until=t_first + 10 * MS)
        assert len(out) == 2
        assert len(app.queries) == 1  # no second consultation

    def test_distinct_flows_consult_separately(self, sim, flow, udp_flow):
        app = StaticApp()
        controller = SdnController(sim, northbound=app)
        host = NfvHost(sim, name="h0", controller=controller)
        host.inject("eth0", Packet(flow=flow, size=128))
        host.inject("eth0", Packet(flow=udp_flow, size=128))
        sim.run(until=100 * MS)
        assert len(app.queries) == 2


class TestOpenflowMessages:
    def test_flow_mod_requires_entries(self):
        with pytest.raises(ValueError):
            FlowModMessage(host="h0", entries=())

    def test_packet_in_carries_header_only(self, flow):
        message = PacketInMessage(host="h0", scope="eth0", flow=flow)
        assert message.flow == flow
        assert not hasattr(message, "payload")


class TestOrchestrator:
    def test_boot_delay_is_7_75_seconds(self, sim):
        orchestrator = NfvOrchestrator(sim)
        host = NfvHost(sim, name="h0")
        orchestrator.register_host(host)
        ready = orchestrator.launch_nf("h0", lambda: NoOpNf("svc"))
        vm = sim.run(ready)
        assert sim.now == VM_BOOT_NS == 7_750_000_000
        assert vm.service_id == "svc"
        assert host.manager.vms_by_service["svc"] == [vm]

    def test_faster_launch_modes(self, sim):
        orchestrator = NfvOrchestrator(sim)
        host = NfvHost(sim, name="h0")
        orchestrator.register_host(host)
        ready = orchestrator.launch_nf(host, lambda: NoOpNf("svc"),
                                       mode="standby_process")
        sim.run(ready)
        assert sim.now < S  # §5.2: "starting a new process in a stand-by VM"

    def test_launch_records_audit_trail(self, sim):
        orchestrator = NfvOrchestrator(sim)
        host = NfvHost(sim, name="h0")
        orchestrator.register_host(host)
        sim.run(orchestrator.launch_nf(host, lambda: NoOpNf("svc")))
        record = orchestrator.launches[0]
        assert record.host == "h0"
        assert record.ready_at - record.requested_at == VM_BOOT_NS

    def test_unknown_mode_rejected(self, sim):
        orchestrator = NfvOrchestrator(sim)
        host = NfvHost(sim, name="h0")
        with pytest.raises(ValueError):
            orchestrator.launch_nf(host, lambda: NoOpNf("svc"),
                                   mode="teleport")
        with pytest.raises(ValueError):
            NfvOrchestrator(sim, default_mode="teleport")

    def test_duplicate_host_rejected(self, sim):
        orchestrator = NfvOrchestrator(sim)
        host = NfvHost(sim, name="h0")
        orchestrator.register_host(host)
        with pytest.raises(ValueError):
            orchestrator.register_host(host)

    def test_late_vm_serves_traffic_after_boot(self, sim, flow):
        """Packets to a not-yet-booted service drop, then flow after."""
        orchestrator = NfvOrchestrator(sim)
        host = NfvHost(sim, name="h0")
        orchestrator.register_host(host)
        install_chain(host, ["svc"])
        out = []
        host.port("eth1").on_egress = out.append
        orchestrator.launch_nf(host, lambda: NoOpNf("svc"))
        host.inject("eth0", Packet(flow=flow, size=128))  # before boot
        sim.run(until=VM_BOOT_NS + 1 * MS)
        assert host.stats.dropped_no_vm == 1
        host.inject("eth0", Packet(flow=flow, size=128))  # after boot
        sim.run(until=sim.now + 10 * MS)
        assert len(out) == 1
