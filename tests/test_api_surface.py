"""The blessed surface stays importable *and* documented.

``repro.api.__all__`` is a promise: every name resolves to a real
object, and every name appears in ``docs/api_guide.md`` so a reader can
find out what it is without reading source.
"""

import pathlib

import repro.api

DOCS = (pathlib.Path(__file__).resolve().parent.parent
        / "docs" / "api_guide.md")


def test_every_exported_name_is_importable():
    for name in repro.api.__all__:
        assert getattr(repro.api, name, None) is not None, name


def test_all_is_sorted_within_sections_and_duplicate_free():
    names = repro.api.__all__
    assert len(names) == len(set(names))


def test_every_exported_name_is_documented():
    guide = DOCS.read_text()
    missing = [name for name in repro.api.__all__ if name not in guide]
    assert missing == [], f"undocumented exports: {missing}"


def test_sharded_entry_points_are_exported():
    # The unified deploy path and the sharded kernel, by name.
    assert callable(repro.api.SdnfvApp.deploy)
    for name in ("ShardedSimulator", "ShardPlan", "Scenario",
                 "TrafficSpec", "build_network"):
        assert name in repro.api.__all__
