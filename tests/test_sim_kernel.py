"""Tests for the discrete-event kernel: events, processes, scheduling."""

import pytest

from repro.sim import MS, NS, S, US
from repro.sim.events import Interrupt
from repro.sim.simulator import EmptySchedule


class TestUnits:
    def test_scale(self):
        assert US == 1000 * NS
        assert MS == 1000 * US
        assert S == 1000 * MS

    def test_seconds_roundtrip(self):
        from repro.sim import ns_to_seconds, seconds_to_ns
        assert seconds_to_ns(7.75) == 7_750_000_000
        assert ns_to_seconds(seconds_to_ns(1.25)) == 1.25


class TestTimeouts:
    def test_timeout_fires_at_delay(self, sim):
        fired = []
        sim.timeout(50).callbacks.append(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [50]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_timeout_carries_value(self, sim):
        timeout = sim.timeout(10, value="payload")
        sim.run()
        assert timeout.value == "payload"

    def test_same_time_fifo_order(self, sim):
        order = []
        for tag in "abc":
            sim.timeout(5).callbacks.append(
                lambda e, t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_monotonic_across_mixed_delays(self, sim):
        stamps = []
        for delay in (30, 10, 20):
            sim.timeout(delay).callbacks.append(
                lambda e: stamps.append(sim.now))
        sim.run()
        assert stamps == [10, 20, 30]


class TestRun:
    def test_run_until_timestamp_stops_clock(self, sim):
        sim.timeout(100)
        sim.run(until=40)
        assert sim.now == 40

    def test_run_until_leaves_future_events(self, sim):
        fired = []
        sim.timeout(100).callbacks.append(lambda e: fired.append(True))
        sim.run(until=50)
        assert not fired
        sim.run()
        assert fired == [True]

    def test_run_until_past_raises(self, sim):
        sim.timeout(100)
        sim.run(until=50)
        with pytest.raises(ValueError):
            sim.run(until=10)

    def test_run_until_event_returns_value(self, sim):
        def worker():
            yield sim.timeout(5)
            return 99

        process = sim.process(worker())
        assert sim.run(process) == 99

    def test_run_until_event_never_fires(self, sim):
        event = sim.event()
        with pytest.raises(RuntimeError, match="ran out of events"):
            sim.run(event)

    def test_empty_run_is_noop(self, sim):
        sim.run()
        assert sim.now == 0

    def test_peek(self, sim):
        assert sim.peek() is None
        sim.timeout(30)
        assert sim.peek() == 30


class TestEvents:
    def test_succeed_then_value(self, sim):
        event = sim.event()
        event.succeed(42)
        sim.run()
        assert event.processed and event.value == 42

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(RuntimeError):
            sim.event().value

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_unhandled_failure_propagates(self, sim):
        sim.event().fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_defused_failure_is_silent(self, sim):
        event = sim.event()
        event.fail(ValueError("boom"))
        event.defuse()
        sim.run()
        assert event.triggered and not event.ok


class TestProcesses:
    def test_return_value(self, sim):
        def worker():
            yield sim.timeout(1)
            return "done"

        process = sim.process(worker())
        sim.run()
        assert process.value == "done"

    def test_sequential_timeouts_accumulate(self, sim):
        times = []

        def worker():
            for _ in range(3):
                yield sim.timeout(10)
                times.append(sim.now)

        sim.process(worker())
        sim.run()
        assert times == [10, 20, 30]

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_yield_non_event_raises_in_process(self, sim):
        def worker():
            yield 42

        process = sim.process(worker())
        with pytest.raises(RuntimeError, match="non-event"):
            sim.run()
        assert process.triggered

    def test_exception_in_process_fails_process(self, sim):
        def worker():
            yield sim.timeout(1)
            raise KeyError("inner")

        process = sim.process(worker())
        with pytest.raises(KeyError):
            sim.run()
        assert not process.ok

    def test_waiting_on_failed_event_raises_inside(self, sim):
        event = sim.event()
        caught = []

        def worker():
            try:
                yield event
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(worker())
        event.fail(ValueError("bad"))
        sim.run()
        assert caught == ["bad"]

    def test_wait_on_already_processed_event(self, sim):
        event = sim.event()
        event.succeed("early")
        sim.run()

        def worker():
            value = yield event
            return value

        process = sim.process(worker())
        sim.run()
        assert process.value == "early"

    def test_process_is_waitable_event(self, sim):
        def inner():
            yield sim.timeout(7)
            return "inner-result"

        def outer():
            result = yield sim.process(inner())
            return result + "!"

        process = sim.process(outer())
        sim.run()
        assert process.value == "inner-result!"
        assert sim.now == 7


class TestInterrupts:
    def test_interrupt_wakes_process(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(1000)
            except Interrupt as interrupt:
                log.append((sim.now, interrupt.cause))

        process = sim.process(sleeper())
        sim.schedule(10, lambda: process.interrupt("wake"))
        sim.run()
        assert log == [(10, "wake")]

    def test_interrupt_finished_process_rejected(self, sim):
        def quick():
            yield sim.timeout(1)

        process = sim.process(quick())
        sim.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_stale_wakeup_after_interrupt_ignored(self, sim):
        """The original timeout firing later must not resume the process."""
        resumed = []

        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(5)
            resumed.append(sim.now)

        process = sim.process(sleeper())
        sim.schedule(10, lambda: process.interrupt())
        sim.run()
        assert resumed == [15]


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        t1, t2 = sim.timeout(10), sim.timeout(30)

        def worker():
            yield sim.all_of([t1, t2])
            return sim.now

        process = sim.process(worker())
        sim.run()
        assert process.value == 30

    def test_any_of_fires_on_first(self, sim):
        t1, t2 = sim.timeout(10), sim.timeout(30)

        def worker():
            yield sim.any_of([t1, t2])
            return sim.now

        process = sim.process(worker())
        sim.run()
        assert process.value == 10

    def test_any_of_result_contains_fired_event(self, sim):
        t1 = sim.timeout(10, value="first")
        t2 = sim.timeout(30, value="second")

        def worker():
            result = yield sim.any_of([t1, t2])
            return result

        process = sim.process(worker())
        sim.run(until=20)
        assert process.value == {t1: "first"}


class TestSchedule:
    def test_schedule_callback(self, sim):
        called = []
        sim.schedule(25, lambda: called.append(sim.now))
        sim.run()
        assert called == [25]

    def test_step_empty_raises(self, sim):
        with pytest.raises(EmptySchedule):
            sim._step()
