"""Property-based tests for FlowMatch algebra: matches vs subsumes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FiveTuple, FlowMatch
from repro.net.headers import PROTO_TCP, PROTO_UDP

ips = st.sampled_from(["10.0.0.1", "10.0.0.2", "10.1.0.1", "192.168.5.9"])
ports = st.sampled_from([80, 443, 8080, 11211])
protocols = st.sampled_from([PROTO_TCP, PROTO_UDP])

flows = st.builds(FiveTuple, src_ip=ips, dst_ip=ips, protocol=protocols,
                  src_port=ports, dst_port=ports)


@st.composite
def matches(draw):
    src_ip = draw(st.one_of(st.none(), ips))
    prefix = 32
    if src_ip is not None:
        prefix = draw(st.sampled_from([8, 16, 24, 32]))
    return FlowMatch(
        src_ip=src_ip,
        dst_ip=draw(st.one_of(st.none(), ips)),
        protocol=draw(st.one_of(st.none(), protocols)),
        src_port=draw(st.one_of(st.none(), ports)),
        dst_port=draw(st.one_of(st.none(), ports)),
        src_prefix_bits=prefix,
    )


class TestSubsumptionAlgebra:
    @given(match=matches())
    @settings(max_examples=100, deadline=None)
    def test_reflexive(self, match):
        assert match.subsumes(match)

    @given(a=matches(), b=matches(), flow=flows)
    @settings(max_examples=300, deadline=None)
    def test_subsumption_implies_match_containment(self, a, b, flow):
        """If A subsumes B, every flow B matches, A matches too."""
        if a.subsumes(b) and b.matches(flow):
            assert a.matches(flow)

    @given(a=matches(), b=matches(), c=matches())
    @settings(max_examples=200, deadline=None)
    def test_transitive(self, a, b, c):
        if a.subsumes(b) and b.subsumes(c):
            assert a.subsumes(c)

    @given(match=matches())
    @settings(max_examples=100, deadline=None)
    def test_any_is_top(self, match):
        assert FlowMatch.any().subsumes(match)

    @given(flow=flows, match=matches())
    @settings(max_examples=200, deadline=None)
    def test_exact_is_bottom(self, flow, match):
        exact = FlowMatch.exact(flow)
        if match.matches(flow):
            assert match.subsumes(exact)
        else:
            assert not match.subsumes(exact)

    @given(flow=flows)
    @settings(max_examples=100, deadline=None)
    def test_specificity_antitone_with_subsumption(self, flow):
        """Strictly removing a constraint can only widen the match."""
        exact = FlowMatch.exact(flow)
        widened = FlowMatch(src_ip=flow.src_ip, dst_ip=flow.dst_ip,
                            protocol=flow.protocol,
                            src_port=flow.src_port, dst_port=None)
        assert widened.subsumes(exact)
        assert widened.specificity < exact.specificity
