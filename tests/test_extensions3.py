"""Third extension wave: network builder, FlowMonitor, socket scaling,
rule expiry under churn, and MILP/compile property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EXIT, SdnfvApp, ServiceGraph
from repro.core.placement import (
    FlowRequest,
    MilpSolver,
    PlacementProblem,
)
from repro.core.placement.milp import InfeasiblePlacement
from repro.dataplane import FlowTableEntry, NfvHost, ToPort, ToService
from repro.dataplane.load_balancer import LoadBalancePolicy
from repro.net import FiveTuple, FlowMatch, Packet
from repro.net.headers import PROTO_TCP
from repro.nfs import FLOW_STATS_KEY, FlowMonitor, NoOpNf
from repro.sim import MS, Simulator
from repro.topology import (
    Link,
    NodeSpec,
    Topology,
    build_network,
)
from repro.workloads import FlowSpec, PktGen

from tests.conftest import install_chain


def line_of_hosts(count=3):
    topology = Topology()
    names = [f"h{i}" for i in range(count)]
    for name in names:
        topology.add_node(NodeSpec(name=name, cores=2))
    for a, b in zip(names, names[1:]):
        topology.add_link(Link(a=a, b=b, delay_ns=50_000))
    return topology, names


class TestBuildNetwork:
    def test_hosts_and_trunks_created(self, sim):
        topology, names = line_of_hosts(3)
        network = build_network(sim, topology)
        assert set(network.hosts) == set(names)
        # Middle host has trunks to both neighbours.
        middle = network.host("h1")
        assert "to-h0" in middle.manager.ports
        assert "to-h2" in middle.manager.ports

    def test_next_hop_port_map_covers_all_pairs(self, sim):
        topology, names = line_of_hosts(3)
        network = build_network(sim, topology)
        assert network.inter_host_ports[("h0", "h1")] == "to-h1"
        # Non-adjacent pair routes via the next hop.
        assert network.inter_host_ports[("h0", "h2")] == "to-h1"

    def test_adjacent_traffic_crosses(self, sim, flow):
        topology, _names = line_of_hosts(2)
        network = build_network(sim, topology)
        src, dst = network.host("h0"), network.host("h1")
        src.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToPort("to-h1"),)))
        dst.install_rule(FlowTableEntry(
            scope="to-h0", match=FlowMatch.any(),
            actions=(ToPort("eth1"),)))
        out = []
        dst.port("eth1").on_egress = out.append
        src.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=5 * MS)
        assert len(out) == 1

    def test_transit_rules_for_multi_hop(self, sim, flow):
        topology, _names = line_of_hosts(3)
        network = build_network(sim, topology)
        path = network.install_transit(FlowMatch.any(), "h0", "h2")
        assert path == ["h0", "h1", "h2"]
        network.host("h0").install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToPort("to-h1"),)))
        network.host("h2").install_rule(FlowTableEntry(
            scope="to-h1", match=FlowMatch.any(),
            actions=(ToPort("eth1"),)))
        out = []
        network.host("h2").port("eth1").on_egress = out.append
        network.host("h0").inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=5 * MS)
        assert len(out) == 1

    def test_graph_deployed_over_built_network(self, sim, flow):
        """SdnfvApp.deploy consumes the builder's port map directly."""
        topology, _names = line_of_hosts(2)
        network = build_network(sim, topology)
        app = SdnfvApp(sim)
        for host in network.hosts.values():
            app.register_host(host)
        network.host("h0").add_nf(NoOpNf("a"))
        network.host("h1").add_nf(NoOpNf("b"))
        graph = ServiceGraph("wide")
        graph.add_service("a", read_only=True)
        graph.add_service("b", read_only=True)
        graph.add_edge("a", "b", default=True)
        graph.add_edge("b", EXIT, default=True)
        graph.set_entry("a")
        app.deploy(graph, ingress_port="eth0", exit_port="eth1",
                   placement={"a": "h0", "b": "h1"},
                   inter_host_ports=network.inter_host_ports)
        # Wire the trunk arrival to the mid-graph ingress rule: packets
        # from h0 land on h1's to-h0 port.
        rules = graph.compile_rules(
            ingress_port="to-h0", exit_port="eth1",
            placement={"a": "h0", "b": "h1"}, host="h1",
            inter_host_ports=network.inter_host_ports)
        network.host("h1").install_rules(rules)
        out = []
        network.host("h1").port("eth1").on_egress = out.append
        network.host("h0").inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=5 * MS)
        assert len(out) == 1


class TestFlowMonitor:
    def test_reports_emitted_per_window(self, sim, flow, udp_flow):
        host = NfvHost(sim, name="mon0")
        monitor = FlowMonitor("monitor", report_interval_ns=10 * MS)
        host.add_nf(monitor)
        install_chain(host, ["monitor"])
        reports = []
        host.manager.message_handlers["monitor"] = (
            lambda message: reports.append(message.value))
        gen = PktGen(sim, host)
        gen.add_flow(FlowSpec(flow=flow, rate_mbps=100.0,
                              packet_size=512, stop_ns=50 * MS))
        gen.add_flow(FlowSpec(flow=udp_flow, rate_mbps=10.0,
                              packet_size=512, stop_ns=50 * MS))
        sim.run(until=80 * MS)
        assert monitor.reports_sent >= 3
        report = reports[-1]
        assert report.flows == 2
        assert report.top_flow == flow  # the 100 Mbps flow dominates
        assert report.total_mbps == pytest.approx(110.0, rel=0.25)

    def test_report_reaches_app(self, sim, flow):
        app = SdnfvApp(sim)
        host = NfvHost(sim, name="mon1")
        app.register_host(host)
        host.add_nf(FlowMonitor("monitor", report_interval_ns=5 * MS))
        install_chain(host, ["monitor"])
        received = []
        app.on_message(FLOW_STATS_KEY,
                       lambda host_name, m: received.append(m.value))
        gen = PktGen(sim, host)
        gen.add_flow(FlowSpec(flow=flow, rate_mbps=50.0,
                              packet_size=512, stop_ns=30 * MS))
        sim.run(until=50 * MS)
        assert received and received[0].packets > 0

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            FlowMonitor("m", report_interval_ns=0)


class TestTwoSocketScaling:
    def test_second_socket_doubles_small_packet_rate(self):
        """§5.1: 'enabling the second CPU socket can double performance
        since the NIC splits the traffic evenly between the two' —
        emulated as two service replicas fed by flow-hash splitting."""
        def throughput(replicas: int) -> float:
            sim = Simulator()
            host = NfvHost(sim, name=f"sock{replicas}",
                           load_balance=LoadBalancePolicy.FLOW_HASH,
                           tx_threads=2 * replicas)
            for _ in range(replicas):
                host.add_nf(NoOpNf("svc"), ring_slots=2048)
            install_chain(host, ["svc"])
            gen = PktGen(sim, host, window_ns=MS)
            # Many flows so the hash splits evenly, offered at 2x the
            # single-replica capacity.
            for i in range(32):
                flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP,
                                 1000 + i, 80)
                gen.add_flow(FlowSpec(flow=flow, rate_mbps=320.0,
                                      packet_size=64, stop_ns=6 * MS))
            sim.run(until=6 * MS)
            return gen.rx_meter.mean_gbps(3 * MS, 6 * MS)

        single = throughput(1)
        double = throughput(2)
        assert double > 1.6 * single

class TestRuleChurnExpiry:
    def test_table_bounded_under_flow_churn(self, sim):
        """Per-flow rules with idle timeouts keep the table bounded."""
        host = NfvHost(sim, name="churn0")
        host.add_nf(NoOpNf("svc"))
        host.install_rule(FlowTableEntry(
            scope="svc", match=FlowMatch.any(),
            actions=(ToPort("eth1"),)))
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToService("svc"),)))
        host.manager.start_rule_expiry(interval_ns=5 * MS)

        def churn():
            for i in range(200):
                flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP,
                                 1000 + i, 80)
                # Specialized per-flow rule with a short idle timeout,
                # as an on-demand controller would install.
                host.manager.install_rule(FlowTableEntry(
                    scope="eth0", match=FlowMatch.exact(flow),
                    actions=(ToService("svc"),),
                    idle_timeout_ns=10 * MS))
                host.inject("eth0", Packet(flow=flow, size=128))
                yield sim.timeout(500_000)

        sim.process(churn())
        sim.run(until=300 * MS)
        # All 200 per-flow rules would linger forever without expiry;
        # with it only the two wildcard rules survive.
        assert len(host.flow_table) == 2
        assert host.stats.tx_packets == 200


small_problems = st.integers(min_value=0, max_value=10_000)


class TestMilpProperties:
    @given(seed=small_problems)
    @settings(max_examples=10, deadline=None)
    def test_solutions_satisfy_all_constraints(self, seed):
        """Any feasible MILP answer respects cores, capacity, routing."""
        import numpy as np
        rng = np.random.default_rng(seed)
        topology = Topology()
        names = [f"n{i}" for i in range(4)]
        for name in names:
            topology.add_node(NodeSpec(name=name, cores=2))
        edges = [("n0", "n1"), ("n1", "n2"), ("n2", "n3"), ("n0", "n2")]
        for a, b in edges:
            topology.add_link(Link(a=a, b=b, capacity_gbps=1.0))
        flow_count = int(rng.integers(1, 4))
        chain_length = int(rng.integers(1, 3))
        chain = tuple(f"j{i}" for i in range(chain_length))
        flows = [FlowRequest(
            flow_id=f"f{i}",
            entry=names[int(rng.integers(0, 4))],
            exit=names[int(rng.integers(0, 4))],
            chain=chain, bandwidth_gbps=0.1)
            for i in range(flow_count)]
        problem = PlacementProblem(
            topology=topology, flows=flows,
            flows_per_core={service: 3 for service in chain})
        try:
            result = MilpSolver(time_limit_s=20).solve(problem)
        except InfeasiblePlacement:
            return  # nothing to verify
        # Cores per node.
        per_node: dict = {}
        for (node, _service), count in result.instances.items():
            per_node[node] = per_node.get(node, 0) + count
        assert all(used <= 2 for used in per_node.values())
        # Instance capacity.
        loads: dict = {}
        for flow in flows:
            nodes = result.assignments[flow.flow_id]
            for service, node in zip(flow.chain, nodes):
                loads[(node, service)] = loads.get((node, service), 0) + 1
        for key, load in loads.items():
            assert load <= result.instances.get(key, 0) * 3
        # Routes connect the chain.
        for flow in flows:
            segments = result.routes[flow.flow_id]
            assert segments[0][0] == flow.entry
            assert segments[-1][-1] == flow.exit
            for path in segments:
                for a, b in zip(path, path[1:]):
                    assert topology.has_link(a, b)


graph_shapes = st.lists(st.booleans(), min_size=1, max_size=5)


class TestCompileProperties:
    @given(read_only_flags=graph_shapes)
    @settings(max_examples=30, deadline=None)
    def test_compiled_rules_cover_every_vertex(self, read_only_flags):
        graph = ServiceGraph("prop")
        names = [f"v{i}" for i in range(len(read_only_flags))]
        for name, read_only in zip(names, read_only_flags):
            graph.add_service(name, read_only=read_only)
        for a, b in zip(names, names[1:]):
            graph.add_edge(a, b, default=True)
        graph.add_edge(names[-1], EXIT, default=True)
        graph.set_entry(names[0])
        rules = graph.compile_rules(ingress_port="eth0",
                                    exit_port="eth1")
        scopes = {rule.scope for rule in rules}
        assert scopes == set(names) | {"eth0"}
        # Each vertex rule's default matches its default edge.
        by_scope = {rule.scope: rule for rule in rules}
        for a, b in zip(names, names[1:]):
            assert by_scope[a].default_action == ToService(b)
        assert by_scope[names[-1]].default_action == ToPort("eth1")
        # Parallel chains only contain read-only runs.
        for chain in graph.parallel_chains():
            assert all(graph.is_read_only(service) for service in chain)
