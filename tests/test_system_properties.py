"""System-wide property-based tests: invariants under randomized chains,
verdicts, and traffic patterns."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane import (
    FlowTableEntry,
    NfvHost,
    ToPort,
    ToService,
    Verdict,
)
from repro.net import FiveTuple, FlowMatch, Packet
from repro.net.headers import PROTO_TCP
from repro.nfs.base import NetworkFunction
from repro.sim import MS, S, Simulator

from tests.conftest import install_chain


class RandomVerdictNf(NetworkFunction):
    """Returns a scripted sequence of verdicts (cycled)."""

    read_only = True

    def __init__(self, service_id, script):
        super().__init__(service_id)
        self.script = script
        self._position = 0

    def process(self, packet, ctx):
        verdict = self.script[self._position % len(self.script)]
        self._position += 1
        return verdict


verdict_strategy = st.sampled_from([
    Verdict.default(),
    Verdict.discard(),
    Verdict.send_to_port("eth1"),
])


@st.composite
def chain_scenarios(draw):
    chain_length = draw(st.integers(min_value=1, max_value=4))
    scripts = [draw(st.lists(verdict_strategy, min_size=1, max_size=4))
               for _ in range(chain_length)]
    packet_count = draw(st.integers(min_value=1, max_value=30))
    return chain_length, scripts, packet_count


class TestPacketConservation:
    @given(scenario=chain_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_every_packet_accounted_for(self, scenario):
        """rx == tx + all drop counters, for any chain and verdicts."""
        chain_length, scripts, packet_count = scenario
        sim = Simulator()
        host = NfvHost(sim, name="prop0")
        services = [f"s{i}" for i in range(chain_length)]
        for service, script in zip(services, scripts):
            host.add_nf(RandomVerdictNf(service, script))
        install_chain(host, services)
        flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, 1, 80)
        for _ in range(packet_count):
            host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=1 * S)
        stats = host.stats
        accounted = (stats.tx_packets + stats.dropped_by_nf
                     + stats.dropped_ring_full + stats.dropped_no_rule
                     + stats.dropped_no_vm)
        assert stats.rx_packets == packet_count
        assert accounted == packet_count

    @given(scenario=chain_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_refcounts_return_to_zero(self, scenario):
        """Zero-copy accounting: every buffer fully released, even with
        parallel fan-out."""
        chain_length, scripts, packet_count = scenario
        sim = Simulator()
        host = NfvHost(sim, name="prop1")
        services = [f"s{i}" for i in range(chain_length)]
        for service, script in zip(services, scripts):
            host.add_nf(RandomVerdictNf(service, script))
        install_chain(host, services)
        if chain_length > 1:
            host.manager.register_parallel_chain(services)
        flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, 2, 80)
        packets = [Packet(flow=flow, size=128)
                   for _ in range(packet_count)]
        for packet in packets:
            host.inject("eth0", packet)
        sim.run(until=1 * S)
        assert all(packet.ref_count == 0 for packet in packets)


class TestCrossLayerMessageProperties:
    @given(port_count=st.integers(min_value=2, max_value=4),
           flow_ports=st.lists(st.integers(min_value=1, max_value=5000),
                               min_size=1, max_size=8, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_change_default_isolation(self, port_count, flow_ports):
        """Per-flow ChangeDefault never affects other flows."""
        from repro.dataplane import ChangeDefault
        sim = Simulator()
        ports = ["eth0"] + [f"out{i}" for i in range(port_count)]
        host = NfvHost(sim, name="prop2", ports=ports)
        from repro.nfs import NoOpNf
        host.add_nf(NoOpNf("svc"))
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToService("svc"),)))
        host.install_rule(FlowTableEntry(
            scope="svc", match=FlowMatch.any(),
            actions=tuple(ToPort(p) for p in ports[1:])))
        flows = [FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, port, 80)
                 for port in flow_ports]
        # Redirect only the first flow.
        host.manager.apply_message(ChangeDefault(
            sender_service="svc", flows=FlowMatch.exact(flows[0]),
            service="svc", target=f"port:{ports[-1]}"))
        for flow in flows:
            entry = host.flow_table.lookup("svc", flow)
            if flow == flows[0]:
                assert entry.default_action == ToPort(ports[-1])
            else:
                assert entry.default_action == ToPort(ports[1])

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_request_me_then_skip_me_round_trip(self, seed):
        """RequestMe followed by SkipMe restores the original default."""
        from repro.dataplane import RequestMe, SkipMe
        from repro.nfs import NoOpNf
        sim = Simulator()
        host = NfvHost(sim, name="prop3")
        host.add_nf(NoOpNf("det"))
        host.add_nf(NoOpNf("scrub"))
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToService("det"),)))
        host.install_rule(FlowTableEntry(
            scope="det", match=FlowMatch.any(),
            actions=(ToPort("eth1"), ToService("scrub"))))
        host.install_rule(FlowTableEntry(
            scope="scrub", match=FlowMatch.any(),
            actions=(ToPort("eth1"),)))
        flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP,
                         seed % 60_000 + 1, 80)
        host.manager.apply_message(RequestMe(
            sender_service="scrub", service="scrub"))
        assert host.flow_table.lookup(
            "det", flow).default_action == ToService("scrub")
        host.manager.apply_message(SkipMe(
            sender_service="scrub", service="scrub"))
        assert host.flow_table.lookup(
            "det", flow).default_action == ToPort("eth1")


class TestVmPriorityConflicts:
    def test_vm_priority_policy_through_manager(self, sim, flow):
        """§4.2's alternative conflict policy: the highest-priority VM's
        verdict wins even against a discard."""
        class Dropper(NetworkFunction):
            read_only = True

            def process(self, packet, ctx):
                return Verdict.discard()

        class Passer(NetworkFunction):
            read_only = True

            def process(self, packet, ctx):
                return Verdict.default()

        host = NfvHost(sim, name="prio0",
                       conflict_policy="vm_priority")
        host.add_nf(Dropper("drop_nf"), priority=5)   # low priority
        host.add_nf(Passer("pass_nf"), priority=0)    # high priority
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToService("drop_nf"), ToService("pass_nf")),
            parallel=True))
        host.install_rule(FlowTableEntry(
            scope="pass_nf", match=FlowMatch.any(),
            actions=(ToPort("eth1"),)))
        out = []
        host.port("eth1").on_egress = out.append
        for _ in range(3):
            host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=10 * MS)
        # The passer outranks the dropper, so packets survive.
        assert len(out) == 3
