"""Tests for the second extension wave: multi-worker controller, IMIX,
mid-chain miss handling, and remaining coverage gaps."""

import pytest

from repro.control import SdnController
from repro.dataplane import FlowTableEntry, NfvHost, ToPort, ToService
from repro.net import FlowMatch, Packet
from repro.nfs import NoOpNf
from repro.sim import MS, US
from repro.sim.randomness import RandomStreams, exponential_ns
from repro.workloads import FlowSpec, ImixProfile, ImixSource, PktGen



class TestMultiWorkerController:
    def test_workers_validation(self, sim):
        with pytest.raises(ValueError):
            SdnController(sim, workers=0)

    def test_capacity_scales_with_workers(self, sim):
        single = SdnController(sim, service_time_ns=500 * US)
        quad = SdnController(sim, service_time_ns=500 * US, workers=4)
        assert quad.capacity_per_second == 4 * single.capacity_per_second

    def test_parallel_service_under_load(self, sim, flow):
        controller = SdnController(sim, service_time_ns=1 * MS,
                                   propagation_ns=0, workers=4)
        done_times = []
        for _ in range(8):
            reply = controller.flow_request("h0", "eth0", flow)
            reply.callbacks.append(lambda e: done_times.append(sim.now))
        sim.run()
        # 8 requests / 4 workers / 1 ms each: finishes in 2 ms, not 8.
        assert max(done_times) == 2 * MS

    def test_faster_controller_same_trend(self, sim):
        """§2.1: 'we expect a similar trend even with higher performance
        SDN Controllers' — a 4x controller shifts Fig. 1's knee 4x but
        the collapse shape is identical."""
        from repro.baselines import OvsControllerModel
        slow = OvsControllerModel(controller_rps=10_000)
        fast = OvsControllerModel(controller_rps=40_000)
        # Where the controller binds, a 4x controller means 4x throughput
        # — the knee moves, the collapse remains.
        for pct in (5.0, 25.0):
            ratio = (fast.max_throughput_gbps(pct / 100, 256)
                     / slow.max_throughput_gbps(pct / 100, 256))
            assert ratio == pytest.approx(4.0, rel=0.01)
        # And the fast controller still collapses at higher punt rates.
        assert (fast.max_throughput_gbps(0.25, 256)
                < fast.max_throughput_gbps(0.0, 256) / 5)


class TestMidChainMiss:
    def test_tx_miss_consults_controller(self, sim, flow):
        """A rule present at ingress but missing for the NF's scope is
        resolved through the flow controller from the TX side."""
        class ChainApp:
            def rules_for(self, host, scope, flow):
                if scope == "svc":
                    return [FlowTableEntry(
                        scope="svc", match=FlowMatch.exact(flow),
                        actions=(ToPort("eth1"),))]
                return []

        controller = SdnController(sim, northbound=ChainApp())
        host = NfvHost(sim, name="mid0", controller=controller)
        host.add_nf(NoOpNf("svc"))
        # Only the ingress rule is pre-installed.
        host.install_rule(FlowTableEntry(
            scope="eth0", match=FlowMatch.any(),
            actions=(ToService("svc"),)))
        out = []
        host.port("eth1").on_egress = out.append
        host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=100 * MS)
        assert len(out) == 1
        assert host.stats.sdn_requests == 1


class TestImix:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ImixProfile(buckets=())
        with pytest.raises(ValueError):
            ImixProfile(buckets=((32, 1),))
        with pytest.raises(ValueError):
            ImixProfile(buckets=((64, 0),))

    def test_simple_imix_mean(self):
        profile = ImixProfile()
        # (64*7 + 576*4 + 1500*1) / 12 = 354.33 B
        assert profile.mean_size() == pytest.approx(354.33, abs=0.5)

    def test_sample_distribution(self):
        profile = ImixProfile()
        rng = RandomStreams(seed=1).stream("t")
        samples = [profile.sample(rng) for _ in range(6000)]
        small = samples.count(64) / len(samples)
        large = samples.count(1500) / len(samples)
        assert small == pytest.approx(7 / 12, abs=0.04)
        assert large == pytest.approx(1 / 12, abs=0.03)

    def test_source_hits_target_rate(self, sim, flow):
        from repro.baselines import make_dpdk_forwarder
        from repro.metrics import ThroughputMeter
        host = make_dpdk_forwarder(sim)
        meter = ThroughputMeter(window_ns=MS)
        host.port("eth1").on_egress = (
            lambda p: meter.record(sim.now, p.size))
        ImixSource(sim, host, flow=flow, rate_mbps=500.0,
                   stop_ns=20 * MS)
        sim.run(until=30 * MS)
        assert meter.mean_gbps(2 * MS, 20 * MS) == pytest.approx(
            0.5, rel=0.1)

    def test_rate_validation(self, sim, host, flow):
        with pytest.raises(ValueError):
            ImixSource(sim, host, flow=flow, rate_mbps=0)


class TestRandomness:
    def test_streams_deterministic_per_seed(self):
        a = RandomStreams(seed=7).stream("x").random()
        b = RandomStreams(seed=7).stream("x").random()
        assert a == b

    def test_streams_independent_by_name(self):
        streams = RandomStreams(seed=7)
        assert streams.stream("x").random() != streams.stream(
            "y").random()

    def test_stream_cached(self):
        streams = RandomStreams(seed=7)
        assert streams.stream("x") is streams.stream("x")

    def test_exponential_ns_minimum(self):
        rng = RandomStreams(seed=0).stream("e")
        draws = [exponential_ns(rng, mean=0.001) for _ in range(50)]
        assert all(draw >= 1 for draw in draws)


class TestPktGenPoisson:
    def test_poisson_pacing_varies_gaps(self, sim, flow):
        from repro.baselines import make_dpdk_forwarder
        host = make_dpdk_forwarder(sim)
        gen = PktGen(sim, host)
        arrivals = []
        measure = host.port("eth1").on_egress  # PktGen's own hook

        def observe(packet):
            arrivals.append(sim.now)
            measure(packet)

        host.port("eth1").on_egress = observe
        gen.add_flow(FlowSpec(flow=flow, rate_mbps=200.0,
                              packet_size=512, pacing="poisson",
                              stop_ns=20 * MS))
        sim.run(until=30 * MS)
        gaps = {b - a for a, b in zip(arrivals, arrivals[1:])}
        assert len(gaps) > 10  # genuinely random spacing

    def test_poisson_mean_rate_preserved(self, sim, flow):
        from repro.baselines import make_dpdk_forwarder
        host = make_dpdk_forwarder(sim)
        gen = PktGen(sim, host)
        gen.add_flow(FlowSpec(flow=flow, rate_mbps=400.0,
                              packet_size=512, pacing="poisson",
                              stop_ns=40 * MS))
        sim.run(until=60 * MS)
        assert gen.offered_gbps() == pytest.approx(0.4, rel=0.15)
