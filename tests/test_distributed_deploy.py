"""Network-wide deployment: service graphs spanning arbitrary
topologies through the unified ``SdnfvApp.deploy(..., network=)`` path
(plus the deprecated ``deploy_distributed`` shim)."""

import pytest

from repro.core import (
    EXIT,
    DistributedDeploymentError,
    SdnfvApp,
    ServiceGraph,
    deploy_distributed,
)
from repro.net import FiveTuple, Packet
from repro.net.headers import PROTO_TCP
from repro.nfs import CounterNf
from repro.sim import MS
from repro.topology import Link, NodeSpec, Topology, build_network


def topology_of(count, extra_links=()):
    topology = Topology()
    names = [f"h{i}" for i in range(count)]
    for name in names:
        topology.add_node(NodeSpec(name=name, cores=4))
    for a, b in zip(names, names[1:]):
        topology.add_link(Link(a=a, b=b, delay_ns=20_000))
    for a, b in extra_links:
        topology.add_link(Link(a=a, b=b, delay_ns=20_000))
    return topology


def linear_graph(services):
    graph = ServiceGraph("dist")
    for name in services:
        graph.add_service(name, read_only=True)
    for a, b in zip(services, services[1:]):
        graph.add_edge(a, b, default=True)
    graph.add_edge(services[-1], EXIT, default=True)
    graph.set_entry(services[0])
    return graph


@pytest.fixture
def env(sim):
    def build(host_count, extra_links=()):
        network = build_network(sim, topology_of(host_count, extra_links))
        app = SdnfvApp(sim)
        for host in network.hosts.values():
            app.register_host(host)
        return app, network
    return build


def run_chain(sim, network, placement, services, count=5):
    nfs = {}
    for service in services:
        nf = CounterNf(service)
        nfs[service] = nf
        network.hosts[placement[service]].add_nf(nf)
    exit_host = network.hosts[placement[services[-1]]]
    out = []
    exit_host.port("eth1").on_egress = out.append
    entry_host = network.hosts[placement[services[0]]]
    flow = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, 1, 80)
    for _ in range(count):
        entry_host.inject("eth0", Packet(flow=flow, size=256))
    sim.run(until=50 * MS)
    return out, nfs


class TestAdjacentHosts:
    def test_two_host_chain(self, sim, env):
        app, network = env(2)
        services = ["a", "b"]
        placement = {"a": "h0", "b": "h1"}
        graph = linear_graph(services)
        app.deploy(graph, placement=placement, network=network)
        out, nfs = run_chain(sim, network, placement, services)
        assert len(out) == 5
        assert nfs["a"].packets_seen == 5
        assert nfs["b"].packets_seen == 5
        assert app.deployments


class TestMultiHopPlacement:
    def test_non_adjacent_hosts_get_transit(self, sim, env):
        """a on h0, b on h2 with h1 purely in transit."""
        app, network = env(3)
        services = ["a", "b"]
        placement = {"a": "h0", "b": "h2"}
        app.deploy(linear_graph(services), placement=placement,
                   network=network)
        out, nfs = run_chain(sim, network, placement, services)
        assert len(out) == 5
        # h1 forwarded but hosted no NF work.
        transit = network.hosts["h1"]
        assert transit.stats.tx_packets == 5
        assert not transit.manager.services()

    def test_backtracking_chain(self, sim, env):
        """Chain visits h2 then returns to h0: both directions work."""
        app, network = env(3)
        services = ["a", "b", "c"]
        placement = {"a": "h0", "b": "h2", "c": "h0"}
        app.deploy(linear_graph(services), placement=placement,
                   network=network)
        out, nfs = run_chain(sim, network, placement, services)
        assert len(out) == 5
        assert all(nf.packets_seen == 5 for nf in nfs.values())


class TestValidationAndConflicts:
    def test_missing_placement_rejected(self, sim, env):
        app, network = env(2)
        graph = linear_graph(["a", "b"])
        with pytest.raises(DistributedDeploymentError, match="placement"):
            app.deploy(graph, placement={"a": "h0"}, network=network)

    def test_unknown_host_rejected(self, sim, env):
        app, network = env(2)
        graph = linear_graph(["a"])
        with pytest.raises(DistributedDeploymentError, match="unknown"):
            app.deploy(graph, placement={"a": "ghost"}, network=network)

    def test_network_deploy_requires_placement(self, sim, env):
        app, network = env(2)
        graph = linear_graph(["a"])
        with pytest.raises(DistributedDeploymentError, match="placement"):
            app.deploy(graph, network=network)

    def test_arrival_port_conflict_detected(self, sim, env):
        """Two services on h1 each fed from h0 would need the same
        arrival port to dispatch differently — rejected."""
        app, network = env(2)
        graph = ServiceGraph("fork")
        graph.add_service("src", read_only=True)
        graph.add_service("left", read_only=True)
        graph.add_service("right", read_only=True)
        graph.add_edge("src", "left", default=True)
        graph.add_edge("src", "right")
        graph.add_edge("left", EXIT, default=True)
        graph.add_edge("right", EXIT, default=True)
        graph.set_entry("src")
        placement = {"src": "h0", "left": "h1", "right": "h1"}
        with pytest.raises(DistributedDeploymentError, match="share"):
            app.deploy(graph, placement=placement, network=network)

    def test_parallel_chain_registered_when_colocated(self, sim, env):
        app, network = env(2)
        services = ["a", "b"]
        placement = {"a": "h0", "b": "h0"}
        for service in services:
            network.hosts["h0"].add_nf(CounterNf(service))
        app.deploy(linear_graph(services), placement=placement,
                   network=network)
        assert network.hosts["h0"].manager._parallel_chains.get(
            "a") == ["a", "b"]

    def test_split_chain_not_fused(self, sim, env):
        app, network = env(2)
        services = ["a", "b"]
        placement = {"a": "h0", "b": "h1"}
        app.deploy(linear_graph(services), placement=placement,
                   network=network)
        assert not network.hosts["h0"].manager._parallel_chains
        assert not network.hosts["h1"].manager._parallel_chains


class TestDeprecatedShim:
    def test_deploy_distributed_warns_and_delegates(self, sim, env):
        app, network = env(2)
        services = ["a", "b"]
        placement = {"a": "h0", "b": "h1"}
        with pytest.warns(DeprecationWarning,
                          match=r"deploy\(graph, placement"):
            deploy_distributed(app, network, linear_graph(services),
                               placement)
        out, nfs = run_chain(sim, network, placement, services)
        assert len(out) == 5
        assert app.deployments

    def test_shim_warns_exactly_once_per_call(self, sim, env):
        import warnings as warnings_module

        app, network = env(2)
        placement = {"a": "h0", "b": "h1"}
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            deploy_distributed(app, network, linear_graph(["a", "b"]),
                               placement)
        deprecations = [record for record in caught
                        if issubclass(record.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "SdnfvApp.deploy" in str(deprecations[0].message)

    def test_shim_rules_identical_to_unified_deploy(self, sim, env):
        """The shim's installed tables are structurally identical to
        ``app.deploy(..., network=)`` — rule for rule, host for host."""
        import warnings as warnings_module

        def rule_shapes(network):
            return {name: [(entry.scope, str(entry.match), entry.actions,
                            entry.priority, entry.proactive)
                           for entry in host.flow_table.entries()]
                    for name, host in network.hosts.items()}

        placement = {"a": "h0", "b": "h1"}
        app_new, network_new = env(2)
        app_new.deploy(linear_graph(["a", "b"]), placement=placement,
                       network=network_new)

        app_old, network_old = env(2)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("ignore", DeprecationWarning)
            deploy_distributed(app_old, network_old,
                               linear_graph(["a", "b"]), placement)
        assert rule_shapes(network_old) == rule_shapes(network_new)
        assert rule_shapes(network_old)  # really compared something
