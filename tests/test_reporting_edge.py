"""Remaining small-surface checks: report formatting edges, analysis
input validation, event details, fabric refcount hygiene."""

import pytest

from repro.dataplane import HostCosts
from repro.dataplane.analysis import predict_throughput_gbps, stage_rates_pps
from repro.metrics import comparison_table, series_table
from repro.net import Packet
from repro.net.qos import dscp_to_priority
from repro.sim import MS
from repro.topology import Fabric
from repro.dataplane import NfvHost, FlowTableEntry, ToPort
from repro.net.flow import FlowMatch


class TestReportingEdges:
    def test_empty_comparison_table(self):
        text = comparison_table("empty", [])
        assert "empty" in text
        assert text.count("\n") == 2  # title + header + divider

    def test_series_table_mixed_types(self):
        text = series_table("mixed", {"name": ["a"], "value": [1.23456]})
        assert "1.235" in text and "a" in text

    def test_series_table_integer_columns(self):
        text = series_table("ints", {"n": [1, 22, 333]})
        lines = text.splitlines()
        assert lines[-1].strip() == "333"


class TestAnalysisValidation:
    def test_throughput_respects_nf_cost(self):
        fast = predict_throughput_gbps(HostCosts(), packet_size=64,
                                       sequential_vms=1, nf_cost_ns=0)
        slow = predict_throughput_gbps(HostCosts(), packet_size=64,
                                       sequential_vms=1,
                                       nf_cost_ns=1000)
        assert slow < fast / 5

    def test_stage_rates_first_packet_fraction(self):
        base = stage_rates_pps(HostCosts(), first_packet_fraction=0.0)
        churny = stage_rates_pps(HostCosts(), first_packet_fraction=1.0)
        assert churny["rx"] < base["rx"]


class TestQosMappingValidation:
    def test_dscp_range_checked(self):
        with pytest.raises(ValueError):
            dscp_to_priority(64, levels=3)
        with pytest.raises(ValueError):
            dscp_to_priority(0, levels=0)


class TestFabricRefcounts:
    def test_forwarded_packets_fully_released_downstream(self, sim, flow):
        """A frame crossing the fabric is re-referenced on the next host
        and released again at its final egress."""
        fabric = Fabric(sim)
        a = NfvHost(sim, name="fa")
        b = NfvHost(sim, name="fb")
        fabric.add_host(a)
        fabric.add_host(b)
        fabric.connect("fa", "eth1", "fb", "eth0", bidirectional=False)
        for host in (a, b):
            host.install_rule(FlowTableEntry(
                scope="eth0", match=FlowMatch.any(),
                actions=(ToPort("eth1"),)))
        delivered = []
        b.port("eth1").on_egress = delivered.append
        packet = Packet(flow=flow, size=128)
        a.inject("eth0", packet)
        sim.run(until=10 * MS)
        assert delivered == [packet]
        assert packet.ref_count == 0
