"""PacketPool edge cases: exhaustion, double-release, refcounts, reuse.

The mempool's safety contract (mirroring ``rte_mempool`` + the paper's
refcounted mbufs, §4.1–4.2): exhaustion is an observable pressure
signal, never a crash; a buffer can only return to the slab once; a
buffer shared by parallel NFs returns only when the last holder drops
it; and a reused buffer never leaks the previous tenant's headers,
annotations, or identity.
"""

import pytest

from repro.dataplane import NfvHost
from repro.net import FiveTuple
from repro.net.headers import PROTO_TCP
from repro.net.mempool import DEFAULT_POOL_SIZE, PacketPool
from repro.net.packet import Packet


@pytest.fixture
def pool() -> PacketPool:
    return PacketPool(capacity=2)


def _flow(i: int = 1) -> FiveTuple:
    return FiveTuple(src_ip=f"10.0.0.{i}", dst_ip="10.0.1.1",
                     protocol=PROTO_TCP, src_port=1000 + i, dst_port=80)


class TestExhaustion:
    def test_fallback_is_counted_not_fatal(self, pool):
        held = [pool.alloc(flow=_flow(i)) for i in range(2)]
        overflow = pool.alloc(flow=_flow(9))
        assert overflow.pool is None  # heap fallback, reclaim ignores it
        assert pool.exhausted == 1
        assert pool.created == 2  # capacity respected: slab never grew
        assert all(p.pool is pool for p in held)

    def test_fallback_packet_is_not_reclaimable(self, pool):
        pool.alloc(flow=_flow(1)), pool.alloc(flow=_flow(2))
        overflow = pool.alloc(flow=_flow(3))
        overflow.release()
        assert pool.reclaim(overflow) is False
        assert pool.free_count == 0

    def test_zero_capacity_disables_pooling(self):
        pool = PacketPool(capacity=0)
        packet = pool.alloc(flow=_flow())
        assert packet.pool is None
        assert pool.exhausted == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PacketPool(capacity=-1)


class TestDoubleRelease:
    def test_release_below_zero_raises(self, pool):
        packet = pool.alloc(flow=_flow())
        assert packet.release() is True
        with pytest.raises(RuntimeError):
            packet.release()

    def test_free_below_zero_raises(self, pool):
        packet = pool.alloc(flow=_flow())
        assert packet.free() is True
        with pytest.raises(RuntimeError):
            packet.free()

    def test_double_reclaim_inserts_once(self, pool):
        packet = pool.alloc(flow=_flow())
        packet.release()
        assert pool.reclaim(packet) is True
        assert pool.reclaim(packet) is False  # already in the slab
        assert pool.free_count == 1

    def test_reclaim_foreign_packet_refused(self, pool):
        other = PacketPool(capacity=4)
        packet = other.alloc(flow=_flow())
        packet.release()
        assert pool.reclaim(packet) is False
        assert other.reclaim(packet) is True


class TestRefCounting:
    def test_shared_buffer_returns_once(self, pool):
        """A parallel fan-out holds N references; only the last free
        returns the buffer."""
        packet = pool.alloc(flow=_flow())
        packet.add_reference(2)  # three holders total
        assert packet.free() is False
        assert packet.free() is False
        assert pool.free_count == 0  # still referenced: not reclaimable
        assert packet.free() is True
        assert pool.free_count == 1

    def test_reclaim_refuses_referenced_buffer(self, pool):
        packet = pool.alloc(flow=_flow())
        assert pool.reclaim(packet) is False  # ref_count still 1
        packet.release()
        assert pool.reclaim(packet) is True


class TestReuseHygiene:
    def test_no_state_leaks_between_tenants(self, pool):
        first = pool.alloc(flow=_flow(1), size=256, payload="secret")
        first.annotations["sampled"] = True
        _ = first.eth, first.ip, first.l4  # materialize headers
        first.free()

        second = pool.alloc(flow=_flow(2), size=64, payload="")
        assert second is first  # the buffer really was reused
        assert second.payload == ""
        assert second.size == 64
        assert second.flow == _flow(2)
        assert second._annotations is None  # scratch dropped, not leaked
        assert second._eth is None and second._ip is None
        assert second._l4 is None
        # Lazy headers re-derive from the *new* flow.
        assert second.ip.src_ip == "10.0.0.2"

    def test_fresh_packet_id_on_reuse(self, pool):
        first = pool.alloc(flow=_flow())
        first_id = first.packet_id
        first.free()
        second = pool.alloc(flow=_flow())
        assert second.packet_id > first_id

    def test_ref_count_rewound_to_one(self, pool):
        packet = pool.alloc(flow=_flow())
        packet.add_reference(3)
        for _ in range(4):
            packet.free()
        reused = pool.alloc(flow=_flow())
        assert reused is packet
        assert reused.ref_count == 1


class TestStatsMirroring:
    def test_counters_mirror_into_host_stats(self, sim):
        host = NfvHost(sim, name="pooled", pool_size=2)
        pool = host.packet_pool
        pool.alloc(flow=_flow(1))
        hit_source = pool.alloc(flow=_flow(2))
        hit_source.free()
        pool.alloc(flow=_flow(3))  # hit
        pool.alloc(flow=_flow(4))  # miss + exhausted (heap fallback)
        stats = host.stats
        assert (stats.pool_hits, stats.pool_misses,
                stats.pool_exhausted) == (pool.hits, pool.misses,
                                          pool.exhausted) == (1, 3, 1)
        summary = stats.summary()
        assert summary["pool_hits"] == 1
        assert summary["pool_misses"] == 3
        assert summary["pool_exhausted"] == 1

    def test_pool_size_zero_disables_host_pool(self, sim):
        host = NfvHost(sim, name="unpooled", pool_size=0)
        assert host.packet_pool is None

    def test_default_pool_size(self, sim):
        host = NfvHost(sim, name="default")
        assert host.packet_pool is not None
        assert host.packet_pool.capacity == DEFAULT_POOL_SIZE


class TestPlainPackets:
    def test_plain_packet_free_is_noop_recycle(self):
        packet = Packet(flow=_flow())
        assert packet.pool is None
        assert packet.free() is True  # refcount drops; nothing to reclaim
