"""The full Fig. 2 control workflow, verified end-to-end via the event log.

The paper's architecture diagram numbers five interactions:

1. the SDNFV Application's service graphs / placement guide the SDN
   controller,
2–3. the controller configures host flow tables,
4. the NFV orchestrator instantiates NFs,
5. NFs push information back up (via the NF Manager) so the application
   can adapt.

One test drives all five in order and asserts the recorded timeline.
"""


from repro.control import NfvOrchestrator, SdnController
from repro.core import EXIT, HierarchySnapshot, SdnfvApp, ServiceGraph
from repro.dataplane import NfvHost, UserMessage
from repro.metrics import EventLog
from repro.net import Packet
from repro.nfs import NoOpNf
from repro.nfs.base import NetworkFunction
from repro.dataplane.actions import Verdict
from repro.sim import MS, S


class AlarmAfterN(NetworkFunction):
    """Raises a UserMessage alarm after N packets (step 5 driver)."""

    read_only = True

    def __init__(self, service_id, alarm_after=3):
        super().__init__(service_id)
        self.alarm_after = alarm_after
        self._alarmed = False

    def process(self, packet, ctx):
        if not self._alarmed and self.packets_seen >= self.alarm_after:
            self._alarmed = True
            ctx.send_message(UserMessage(
                sender_service=self.service_id, key="load_alarm",
                value={"packets": self.packets_seen}))
        return Verdict.default()


def test_fig2_five_step_workflow(sim, flow):
    controller = SdnController(sim)
    orchestrator = NfvOrchestrator(sim)
    app = SdnfvApp(sim, controller=controller, orchestrator=orchestrator)
    log = EventLog(sim)
    app.attach_event_log(log)
    host = NfvHost(sim, name="h0", controller=controller)
    app.register_host(host)

    # Step 4 (first round): the orchestrator brings up the detector NF.
    ready = orchestrator.launch_nf(host, lambda: AlarmAfterN("detector"),
                                   mode="standby_process")
    sim.run(ready)

    # Step 1: the application deploys the graph...
    graph = ServiceGraph("fig2")
    graph.add_service("detector", read_only=True)
    graph.add_service("helper")
    graph.add_edge("detector", EXIT, default=True)
    graph.add_edge("detector", "helper")
    graph.add_edge("helper", EXIT, default=True)
    graph.set_entry("detector")
    app.deploy(graph)

    # ...which reaches the host through the controller (steps 2-3).
    sim.run(until=sim.now + controller.idle_lookup_ns + 1 * MS)
    assert len(host.flow_table) == 3

    # Step 5 wiring: the alarm triggers a helper VM boot (step 4 again).
    app.on_message("load_alarm",
                   lambda host_name, message: app.launch_nf(
                       host_name, lambda: NoOpNf("helper"),
                       mode="standby_process"))

    # Data plane traffic drives the alarm.
    out = []
    host.port("eth1").on_egress = out.append
    for _ in range(5):
        host.inject("eth0", Packet(flow=flow, size=128))
    sim.run(until=sim.now + 1 * S)

    assert len(out) == 5
    assert "helper" in host.manager.services()

    # The recorded timeline has every step, in causal order.
    categories = [event.category for event in log.events]
    assert "vm_launch" in categories            # step 4
    assert "deploy" in categories               # step 1
    assert "rule_install" in categories         # steps 2-3
    assert "nf_message_up" in categories        # step 5
    deploy_at = next(e.timestamp_ns for e in log.events
                     if e.category == "deploy")
    first_rule_at = next(e.timestamp_ns for e in log.events
                         if e.category == "rule_install")
    alarm_at = next(e.timestamp_ns for e in log.events
                    if e.category == "nf_message_up")
    helper_launch = [e for e in log.events
                     if e.category == "vm_launch"
                     and e.get("service") == "helper"]
    assert deploy_at <= first_rule_at <= alarm_at
    assert helper_launch and helper_launch[0].timestamp_ns >= alarm_at

    # The hierarchy snapshot renders the final state.
    snapshot = HierarchySnapshot.gather(app)
    text = snapshot.format()
    assert "h0" in text and "svc detector" in text
    assert "controller" in text
