"""Interrupt-semantics hardening: stale events must never mis-resume a
process, and stores must not lose items to abandoned getters."""


from repro.sim import Interrupt, Store


class TestTargetDetachment:
    def test_old_target_firing_does_not_resume(self, sim):
        """A process interrupted out of a timeout must not be resumed a
        second time when that timeout eventually fires."""
        resumptions = []

        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            # Now wait on something else past t=100.
            yield sim.timeout(500)
            resumptions.append(sim.now)

        process = sim.process(sleeper())
        sim.schedule(10, lambda: process.interrupt())
        sim.run()
        # Exactly one resumption, at 10 + 500 — the stale t=100 timeout
        # changed nothing.
        assert resumptions == [510]

    def test_interrupt_then_value_flow_correct(self, sim):
        """After an interrupt, the next awaited event's value arrives
        intact (no leakage from the abandoned event)."""
        values = []

        def worker():
            try:
                yield sim.timeout(100, value="stale-value")
            except Interrupt as interrupt:
                values.append(("interrupt", interrupt.cause))
            fresh = yield sim.timeout(50, value="fresh-value")
            values.append(("value", fresh))

        process = sim.process(worker())
        sim.schedule(10, lambda: process.interrupt("why"))
        sim.run()
        assert values == [("interrupt", "why"), ("value", "fresh-value")]


class TestStoreAbandonedGetters:
    def test_item_not_lost_to_interrupted_getter(self, sim):
        """An item put after a waiting consumer was interrupted must go
        to the next live consumer, not vanish."""
        store = Store(sim)
        received = []

        def doomed():
            try:
                yield store.get()
                received.append("doomed-got-item")
            except Interrupt:
                pass  # walks away without consuming

        def patient():
            item = yield store.get()
            received.append(("patient", item))

        doomed_process = sim.process(doomed())
        sim.process(patient())
        sim.schedule(10, lambda: doomed_process.interrupt())
        sim.schedule(20, lambda: store.try_put("the-item"))
        sim.run()
        assert received == [("patient", "the-item")]

    def test_all_getters_abandoned_item_queues(self, sim):
        store = Store(sim)

        def doomed():
            try:
                yield store.get()
            except Interrupt:
                pass

        process = sim.process(doomed())
        sim.schedule(10, lambda: process.interrupt())
        sim.schedule(20, lambda: store.try_put("kept"))
        sim.run()
        # Nobody was waiting: the item stays in the store.
        assert list(store.items) == ["kept"]

    def test_fifo_preserved_among_live_getters(self, sim):
        store = Store(sim)
        received = []

        def consumer(tag, give_up):
            try:
                item = yield store.get()
                received.append((tag, item))
            except Interrupt:
                pass

        first = sim.process(consumer("first", True))
        sim.process(consumer("second", False))
        sim.process(consumer("third", False))
        sim.schedule(10, lambda: first.interrupt())
        sim.schedule(20, lambda: (store.try_put("a"),
                                  store.try_put("b")))
        sim.run()
        assert received == [("second", "a"), ("third", "b")]
