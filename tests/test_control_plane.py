"""Distributed control plane: sharding, failover, two-phase installs,
and the hybrid proactive/reactive pipeline.

CI re-runs this suite with ``SDNFV_CONTROL_SHARDS=2`` (mirroring the
``SDNFV_SHARD_WORKERS`` convention), which adds that shard count to
every parametrized routing/scaling test below.
"""

import os

import pytest

from repro.control import ControlPlane, SdnController
from repro.control.plane import _host_bucket
from repro.dataplane import (
    ControlPlanePolicy,
    FlowTableEntry,
    NfvHost,
    ToPort,
)
from repro.faults import ControllerOutage, FaultInjector, FaultPlan
from repro.metrics import (
    ControlPlaneMonitor,
    EventLog,
    control_plane_counters,
    counters_table,
    mean_time_to_repair_ns,
    recovery_spans,
)
from repro.net import FiveTuple, FlowMatch, Packet
from repro.sim import MS, US
from repro.sim.sharded import (
    Scenario,
    ScenarioError,
    ShardedSimulator,
    TrafficSpec,
)
from repro.topology import Link, NodeSpec, Topology

#: CI's control-parity job sets this to 2: the parametrized tests below
#: then also run at that shard count.
DEFAULT_CONTROL_SHARDS = int(os.environ.get("SDNFV_CONTROL_SHARDS", "0"))
SHARD_COUNTS = sorted({2, 4} | ({DEFAULT_CONTROL_SHARDS}
                                - {0, 1}))


class StaticApp:
    """Northbound returning one exact-match forwarding rule per query."""

    def __init__(self, out_port="eth1", match=None):
        self.out_port = out_port
        self.match = match
        self.queries = []

    def rules_for(self, host, scope, flow):
        self.queries.append((host, scope, flow))
        match = self.match or FlowMatch.exact(flow)
        return [FlowTableEntry(scope=scope, match=match,
                               actions=(ToPort(self.out_port),))]


def flow_owned_by(plane: ControlPlane, shard: int,
                  dst_port: int = 80) -> FiveTuple:
    """A flow whose ``hash_bucket`` lands on the given shard."""
    for src_port in range(1, 65535):
        flow = FiveTuple("10.0.0.1", "10.0.0.2", 6, src_port, dst_port)
        if plane.owner_of(flow) == shard:
            return flow
    raise AssertionError(f"no flow found for shard {shard}")


def entry_for(flow: FiveTuple, scope: str = "eth0",
              out_port: str = "eth1") -> FlowTableEntry:
    return FlowTableEntry(scope=scope, match=FlowMatch.exact(flow),
                          actions=(ToPort(out_port),))


class TestCompatSurface:
    """ControlPlane is a drop-in for SdnController."""

    def test_single_shard_idle_round_trip_is_31ms(self, sim, flow):
        plane = ControlPlane(sim, shards=1, northbound=StaticApp())
        reply = plane.flow_request("h0", "eth0", flow)
        sim.run(reply)
        assert sim.now == plane.idle_lookup_ns
        assert plane.idle_lookup_ns == SdnController(sim).idle_lookup_ns
        assert len(reply.value) == 1

    def test_needs_at_least_one_shard(self, sim):
        with pytest.raises(ValueError):
            ControlPlane(sim, shards=0)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_capacity_aggregates_over_shards(self, sim, shards):
        plane = ControlPlane(sim, shards=shards,
                             service_time_ns=500 * US)
        assert plane.capacity_per_second == 2000 * shards

    def test_northbound_setter_fans_out(self, sim):
        plane = ControlPlane(sim, shards=3)
        app = StaticApp()
        plane.northbound = app
        assert plane.northbound is app
        assert all(shard.northbound is app for shard in plane.shards)

    def test_down_means_every_shard_down(self, sim):
        plane = ControlPlane(sim, shards=2)
        plane.set_down(True, shard=0)
        assert not plane.down
        plane.set_down(True, shard=1)
        assert plane.down

    def test_submit_work_pins_to_shard(self, sim):
        plane = ControlPlane(sim, shards=2, propagation_ns=0)
        result = plane.submit_work(lambda: "done", shard=1)
        assert sim.run(result) == "done"
        assert plane.shards[1].stats.requests == 1
        assert plane.shards[0].stats.requests == 0


class TestFlowSpacePartition:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_owner_is_stable_hash_bucket(self, sim, flow, shards):
        plane = ControlPlane(sim, shards=shards)
        assert plane.owner_of(flow) == flow.hash_bucket(shards)
        assert plane.owner_of(flow) == plane.owner_of(flow)

    def test_host_routing_uses_stable_fnv(self, sim):
        plane = ControlPlane(sim, shards=4)
        assert plane.shard_for_host("h0") == _host_bucket("h0", 4)

    def test_explicit_host_shard_overrides_hash(self, sim):
        plane = ControlPlane(sim, shards=2, host_shards={"h0": 1})
        assert plane.shard_for_host("h0") == 1

    def test_distinct_shards_serve_concurrently(self, sim):
        """Two flows owned by different shards don't queue behind each
        other — the Fig. 1 ceiling lifts with the shard count."""
        plane = ControlPlane(sim, shards=2, service_time_ns=1 * MS,
                             propagation_ns=0, northbound=StaticApp())
        done = []
        for shard in (0, 1):
            reply = plane.flow_request("h0", "eth0",
                                       flow_owned_by(plane, shard))
            reply.callbacks.append(lambda _e: done.append(sim.now))
        sim.run()
        assert done == [1 * MS, 1 * MS]

    def test_single_controller_serializes_the_same_pair(self, sim):
        plane = ControlPlane(sim, shards=1, service_time_ns=1 * MS,
                             propagation_ns=0, northbound=StaticApp())
        probe = ControlPlane(sim, shards=2)  # just to pick the flows
        done = []
        for shard in (0, 1):
            reply = plane.flow_request("h0", "eth0",
                                       flow_owned_by(probe, shard))
            reply.callbacks.append(lambda _e: done.append(sim.now))
        sim.run()
        assert done == [1 * MS, 2 * MS]

    def test_push_rules_routes_by_host(self, sim, flow):
        plane = ControlPlane(sim, shards=2, propagation_ns=100 * US,
                             host_shards={"h0": 1})
        host = NfvHost(sim, name="h0")
        done = plane.push_rules(host.manager, [entry_for(flow)])
        sim.run(done)
        assert len(host.flow_table) == 1
        assert plane.shards[1].stats.requests == 1
        assert plane.shards[0].stats.requests == 0


class TestFailover:
    def test_downed_owner_is_absorbed_by_next_live_shard(self, sim):
        log = EventLog(sim)
        plane = ControlPlane(sim, shards=2, propagation_ns=0,
                             northbound=StaticApp(), event_log=log)
        plane.set_down(True, shard=0)
        flow = flow_owned_by(plane, 0)
        reply = plane.flow_request("h0", "eth0", flow)
        sim.run(reply)
        assert reply.ok
        assert plane.stats.failovers == 1
        assert plane.shards[1].stats.requests == 1
        assert plane.shards[0].stats.requests == 0
        events = log.filter(category="shard_failover")
        assert len(events) == 1
        assert events[0].get("shard") == 0
        assert events[0].get("absorbed_by") == 1

    def test_failover_disabled_queues_at_owner(self, sim):
        plane = ControlPlane(sim, shards=2, propagation_ns=0,
                             northbound=StaticApp(), failover=False)
        plane.set_down(True, shard=0)
        reply = plane.flow_request("h0", "eth0", flow_owned_by(plane, 0))
        sim.run(until=50 * MS)
        assert not reply.processed
        plane.set_down(False, shard=0)
        sim.run(reply)
        assert reply.ok
        assert plane.stats.failovers == 0

    def test_total_outage_queues_at_owner(self, sim):
        plane = ControlPlane(sim, shards=2, propagation_ns=0,
                             northbound=StaticApp())
        plane.set_down(True)
        reply = plane.flow_request("h0", "eth0", flow_owned_by(plane, 0))
        sim.run(until=50 * MS)
        assert not reply.processed
        assert plane.stats.failovers == 0


class TestInstallBatch:
    def _hosts(self, sim, verify=False):
        h0 = NfvHost(sim, name="h0", verify=verify)
        h1 = NfvHost(sim, name="h1", verify=verify)
        return h0, h1

    def test_single_shard_batch_takes_fast_path(self, sim, flow, udp_flow):
        plane = ControlPlane(sim, shards=2, propagation_ns=100 * US,
                             host_shards={"h0": 1, "h1": 1})
        h0, h1 = self._hosts(sim)
        done = plane.install_batch([(h0.manager, [entry_for(flow)]),
                                    (h1.manager, [entry_for(udp_flow)])])
        txn_id = sim.run(done)
        assert txn_id == 0
        assert len(h0.flow_table) == 1
        assert len(h1.flow_table) == 1
        assert plane.stats.transactions == 0  # no two-phase needed
        assert plane.shards[1].stats.requests == 2

    def test_cross_shard_batch_commits_in_ascending_order(
            self, sim, flow, udp_flow):
        log = EventLog(sim)
        plane = ControlPlane(sim, shards=2, propagation_ns=100 * US,
                             host_shards={"h0": 1, "h1": 0},
                             event_log=log)
        h0, h1 = self._hosts(sim, verify=True)
        done = plane.install_batch([(h0.manager, [entry_for(flow)]),
                                    (h1.manager, [entry_for(udp_flow)])])
        sim.run(done)
        assert len(h0.flow_table) == 1
        assert len(h1.flow_table) == 1
        assert plane.stats.transactions == 1
        prepares = log.filter(category="txn_prepare")
        commits = log.filter(category="txn_commit")
        assert sorted(event.get("shard") for event in prepares) == [0, 1]
        assert [event.get("shard") for event in commits] == [0, 1]
        # Every prepare is acknowledged before the first commit starts.
        assert max(event.timestamp_ns for event in prepares) \
            <= min(event.timestamp_ns for event in commits)
        # Commits land through manager.install_rule: the ownership
        # verifier audited both writes and found nothing.
        for host in (h0, h1):
            host.verifier.assert_clean(expect_drained=False)

    def test_concurrent_transactions_serialize_deterministically(
            self, sim, flow, udp_flow):
        log = EventLog(sim)
        plane = ControlPlane(sim, shards=2, propagation_ns=0,
                             host_shards={"h0": 0, "h1": 1},
                             event_log=log)
        h0, h1 = self._hosts(sim)
        batches = [
            plane.install_batch([(h0.manager, [entry_for(flow)]),
                                 (h1.manager, [entry_for(udp_flow)])]),
            plane.install_batch([
                (h0.manager, [entry_for(udp_flow, scope="eth1")]),
                (h1.manager, [entry_for(flow, scope="eth1")])]),
        ]
        ids = sorted(sim.run(batch) for batch in batches)
        assert ids == [0, 1]
        # Each transaction commits shard 0 before shard 1.
        for txn in ids:
            shards = [event.get("shard")
                      for event in log.filter(category="txn_commit")
                      if event.get("txn") == txn]
            assert shards == [0, 1]


class TestShardOutages:
    def test_outage_logs_mttr_spans(self, sim):
        log = EventLog(sim)
        plane = ControlPlane(sim, shards=2, event_log=log)
        plane.outage(5 * MS, shard=0)
        assert plane.shards[0].down
        assert not plane.shards[1].down
        sim.run(until=10 * MS)
        assert not plane.shards[0].down
        spans = recovery_spans(log.events, "controller_shard_down",
                               "controller_shard_restored", key="shard")
        assert spans == [(0, 0, 5 * MS)]
        assert mean_time_to_repair_ns(
            log.events, "controller_shard_down",
            "controller_shard_restored", key="shard") == 5 * MS
        assert plane.stats.outages == 1

    def test_fault_injector_retargets_one_shard(self, sim):
        plane = ControlPlane(sim, shards=2, northbound=StaticApp(),
                             failover=False)
        plan = FaultPlan()
        plan.add(ControllerOutage(at_ns=1 * MS, down_ns=4 * MS, shard=0))
        injector = FaultInjector(sim, plan, controller=plane)
        injector.arm()
        sim.run(until=2 * MS)
        assert plane.shards[0].down
        assert not plane.shards[1].down
        # A flow owned by the live shard completes at the idle RTT even
        # while shard 0 is down.
        start = sim.now
        reply = plane.flow_request("h0", "eth0", flow_owned_by(plane, 1))
        sim.run(reply)
        assert sim.now - start == plane.idle_lookup_ns
        sim.run(until=40 * MS)
        assert not plane.shards[0].down

    def test_shard_outage_on_plain_controller_is_skipped(self, sim):
        controller = SdnController(sim)
        plan = FaultPlan()
        plan.add(ControllerOutage(at_ns=1 * MS, down_ns=1 * MS, shard=0))
        injector = FaultInjector(sim, plan, controller=controller)
        injector.arm()
        sim.run(until=5 * MS)
        assert not controller.down  # fault skipped, not misapplied

    def test_plane_wide_outage_downs_every_shard(self, sim):
        plane = ControlPlane(sim, shards=3)
        plane.outage(2 * MS)
        assert plane.down
        assert plane.stats.outages == 3
        sim.run(until=5 * MS)
        assert not plane.down


class TestMissClassifier:
    """Every flow's first table contact is classified exactly once."""

    def test_proactive_rule_counts_proactive_hit(self, sim, flow):
        host = NfvHost(sim, name="h0")
        entry = entry_for(flow)
        entry.proactive = True
        host.install_rule(entry)
        host.inject("eth0", Packet(flow=flow, size=128))
        host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=5 * MS)
        assert host.stats.proactive_hits == 1  # first contact only
        assert host.stats.flow_setups() == 1
        assert host.stats.reactive_miss_rate() == 0.0

    def test_controller_miss_counts_reactive_miss(self, sim, flow):
        plane = ControlPlane(sim, shards=1, northbound=StaticApp())
        host = NfvHost(sim, name="h0", controller=plane)
        host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=100 * MS)
        assert host.stats.reactive_misses == 1
        assert host.stats.sdn_requests == 1
        assert host.stats.reactive_miss_rate() == 1.0

    def test_reactively_pulled_rule_counts_reactive_hit(self, sim, flow,
                                                        udp_flow):
        # The northbound answers with a wildcard rule: the first flow's
        # miss installs it, the second flow hits it at first contact.
        app = StaticApp(match=FlowMatch.any())
        plane = ControlPlane(sim, shards=1, northbound=app)
        host = NfvHost(sim, name="h0", controller=plane)
        host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=100 * MS)
        host.inject("eth0", Packet(flow=udp_flow, size=128))
        sim.run(until=200 * MS)
        assert host.stats.reactive_misses == 1
        assert host.stats.reactive_hits == 1
        assert host.stats.flow_setups() == 2
        assert host.stats.reactive_miss_rate() == 0.5

    def test_unreachable_plane_counts_miss_fallback(self, sim, flow):
        plane = ControlPlane(sim, shards=2, northbound=StaticApp())
        plane.set_down(True)
        policy = ControlPlanePolicy(timeout_ns=5 * MS, max_attempts=1)
        host = NfvHost(sim, name="h0", controller=plane,
                       control_policy=policy)
        host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=100 * MS)
        assert host.stats.miss_fallbacks == 1
        assert host.stats.reactive_misses == 1


class TestMonitorAndReporting:
    def test_monitor_samples_per_shard_series(self, sim, flow):
        plane = ControlPlane(sim, shards=2, northbound=StaticApp())
        host = NfvHost(sim, name="h0", controller=plane)
        monitor = ControlPlaneMonitor(sim, plane, hosts=[host])
        monitor.start(interval_ns=10 * MS)
        host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=60 * MS)
        assert len(monitor.utilization) == 2
        assert len(monitor.queue_depth) == 2
        assert len(monitor.miss_rate) > 0
        assert monitor.miss_rate.last() == 1.0
        summary = monitor.summary()
        assert summary["reactive_misses"] == 1
        owner = plane.owner_of(flow)
        assert summary[f"shard{owner}_requests"] == 1

    def test_monitor_accepts_plain_controller(self, sim):
        controller = SdnController(sim)
        monitor = ControlPlaneMonitor(sim, controller)
        monitor.sample()
        assert len(monitor.utilization) == 1

    def test_counters_flatten_into_table(self, sim, flow):
        plane = ControlPlane(sim, shards=2, northbound=StaticApp())
        host = NfvHost(sim, name="h0", controller=plane)
        host.inject("eth0", Packet(flow=flow, size=128))
        sim.run(until=100 * MS)
        counters = control_plane_counters(plane, hosts=[host],
                                          elapsed_ns=sim.now)
        assert counters["control_shards"] == 2
        assert counters["reactive_misses"] == 1
        assert counters["reactive_miss_rate"] == 1.0
        assert counters["failovers"] == 0
        assert "shard0_utilization" in counters
        table = counters_table("control plane", counters)
        assert "reactive_miss_rate" in table
        # HostStats.summary() carries the same counters per host.
        summary = host.stats.summary()
        for key in ("proactive_hits", "reactive_hits",
                    "reactive_misses", "miss_fallbacks"):
            assert key in summary


def control_scenario(control_shards: int = 0,
                     fault_plan=None) -> Scenario:
    """A 2-host chain scenario, optionally with a sharded control
    plane replica per simulation shard."""
    from repro.core import EXIT, ServiceGraph

    topology = Topology()
    topology.add_node(NodeSpec(name="h0", cores=4))
    topology.add_node(NodeSpec(name="h1", cores=4))
    topology.add_link(Link(a="h0", b="h1", delay_ns=500 * US))
    graph = ServiceGraph("chain")
    graph.add_service("a", read_only=True)
    graph.add_service("b", read_only=True)
    graph.add_edge("a", "b", default=True)
    graph.add_edge("b", EXIT, default=True)
    graph.set_entry("a")
    return Scenario(
        topology=topology, graph=graph,
        placement={"a": "h0", "b": "h1"},
        duration_ns=8 * MS,
        traffic=[
            TrafficSpec(host="h0",
                        flow=FiveTuple("10.0.0.1", "10.0.0.2", 6, 1, 80),
                        rate_mbps=900.0, stop_ns=5 * MS),
            TrafficSpec(host="h0",
                        flow=FiveTuple("10.0.0.3", "10.0.0.4", 17, 2, 53),
                        rate_mbps=600.0, start_ns=MS, stop_ns=5 * MS),
        ],
        control_shards=control_shards,
        fault_plan=fault_plan)


class TestScenarioControlPlane:
    """Scenario(control_shards=N): shard-local control-plane replicas."""

    def test_proactive_plane_is_traffic_invariant(self):
        baseline = ShardedSimulator(control_scenario(0), shards=1).run()
        planed = ShardedSimulator(control_scenario(2), shards=1).run()
        assert planed.totals() == baseline.totals()
        assert baseline.controls == [None]
        (snapshot,) = planed.controls
        assert len(snapshot["shards"]) == 2
        # Full proactive cover: the plane never served a miss.
        assert all(shard["requests"] == 0
                   for shard in snapshot["shards"])

    def test_control_plane_survives_simulation_sharding(self):
        one = ShardedSimulator(control_scenario(2), shards=1).run()
        two = ShardedSimulator(control_scenario(2), shards=2).run()
        assert one.totals() == two.totals()
        assert len(two.controls) == 2

    def test_shard_outage_fault_flows_through_scenario(self):
        plan = FaultPlan()
        plan.add(ControllerOutage(at_ns=MS, down_ns=2 * MS, shard=1))
        scenario = control_scenario(2, fault_plan=plan)
        result = ShardedSimulator(scenario, shards=1).run()
        (snapshot,) = result.controls
        assert snapshot["outages"] == 1
        spans = recovery_spans(result.events, "controller_shard_down",
                               "controller_shard_restored", key="shard")
        assert spans == [(1, MS, 3 * MS)]
        # Proactive cover means traffic never depended on the dead
        # shard: deliveries match the fault-free run.
        baseline = ShardedSimulator(control_scenario(2), shards=1).run()
        assert result.totals() == baseline.totals()

    def test_outage_requires_a_control_plane(self):
        plan = FaultPlan()
        plan.add(ControllerOutage(at_ns=MS, down_ns=MS, shard=0))
        scenario = control_scenario(0, fault_plan=plan)
        with pytest.raises(ScenarioError, match="ControllerOutage"):
            scenario.validate()

    def test_outage_shard_must_exist(self):
        plan = FaultPlan()
        plan.add(ControllerOutage(at_ns=MS, down_ns=MS, shard=5))
        scenario = control_scenario(2, fault_plan=plan)
        with pytest.raises(ScenarioError, match="shard"):
            scenario.validate()
