"""End-to-end scenarios assembling the full stack: the paper's use cases
running through SDNFV app + controller + orchestrator + dataplane + NFs."""

import pytest

from repro.control import NfvOrchestrator, SdnController
from repro.core import SdnfvApp, ServiceGraph
from repro.core.service_graph import DROP, EXIT
from repro.dataplane import NfvHost
from repro.net import FiveTuple, FlowMatch, Packet
from repro.net.headers import PROTO_TCP
from repro.nfs import (
    DdosDetector,
    DdosScrubber,
    Firewall,
    FirewallRule,
    IntrusionDetector,
    MemcachedProxy,
    PolicyEngine,
    Sampler,
    Scrubber,
    Transcoder,
    VideoFlowDetector,
)
from repro.nfs.ddos import DDOS_ALARM_KEY
from repro.sim import MS, S
from repro.workloads import DdosRampWorkload, MemcachedWorkload
from repro.workloads.sessions import video_reply_payload

from tests.conftest import install_chain


class TestAnomalyDetectionUseCase:
    """§2.2's first use case: firewall → sampler → (ddos ∥ ids) → scrubber."""

    def _build(self, sim, sample_rate=1.0):
        app = SdnfvApp(sim)
        host = NfvHost(sim, name="sec0")
        app.register_host(host)
        self.firewall = Firewall("firewall", rules=[
            FirewallRule(match=FlowMatch(dst_port=23), allow=False)])
        self.sampler = Sampler("sampler", analysis_service="ddos",
                               sample_rate=sample_rate)
        self.ids = IntrusionDetector("ids", alert_service="scrubber")
        self.ddos = DdosDetector("ddos", threshold_gbps=50.0)
        self.scrubber = Scrubber("scrubber")
        host.add_nf(self.firewall)
        host.add_nf(self.sampler)
        host.add_nf(self.ids)
        host.add_nf(self.ddos)
        host.add_nf(self.scrubber)

        graph = ServiceGraph("anomaly")
        graph.add_service("firewall", read_only=True)
        graph.add_service("sampler", read_only=True)
        graph.add_service("ddos", read_only=True)
        graph.add_service("ids", read_only=True)
        graph.add_service("scrubber")
        graph.add_edge("firewall", "sampler", default=True)
        graph.add_edge("sampler", EXIT, default=True)
        graph.add_edge("sampler", "ddos")
        graph.add_edge("ddos", "ids", default=True)
        graph.add_edge("ids", EXIT, default=True)
        graph.add_edge("ids", "scrubber")
        graph.add_edge("scrubber", EXIT, default=True)
        graph.add_edge("scrubber", DROP)
        graph.set_entry("firewall")
        app.deploy(graph)
        return app, host

    def test_clean_traffic_flows_through(self, sim, flow):
        _app, host = self._build(sim)
        out = []
        host.port("eth1").on_egress = out.append
        for _ in range(5):
            host.inject("eth0", Packet(flow=flow, size=256,
                                       payload="GET / HTTP/1.1"))
        sim.run(until=100 * MS)
        assert len(out) == 5
        # Parallel ddos∥ids both saw the sampled packets.
        assert self.ids.packets_seen == 5
        assert self.ddos.packets_seen == 5
        # Two fused groups per packet: firewall∥sampler and ddos∥ids.
        assert host.stats.parallel_groups == 10

    def test_firewall_blocks_telnet(self, sim):
        _app, host = self._build(sim)
        telnet = FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP, 999, 23)
        out = []
        host.port("eth1").on_egress = out.append
        for _ in range(3):
            host.inject("eth0", Packet(flow=telnet, size=128))
        sim.run(until=100 * MS)
        assert not out
        assert self.firewall.denied == 3

    def test_malicious_payload_diverted_and_dropped(self, sim, flow):
        _app, host = self._build(sim)
        out = []
        host.port("eth1").on_egress = out.append
        bad = Packet(flow=flow, size=256,
                     payload="GET /?q=' OR 1=1 HTTP/1.1")
        host.inject("eth0", bad)
        sim.run(until=100 * MS)
        assert not out
        assert self.ids.alerts >= 1
        assert self.scrubber.confirmed == 1

    def test_unsampled_traffic_bypasses_analysis(self, sim, flow):
        _app, host = self._build(sim, sample_rate=0.0)
        out = []
        host.port("eth1").on_egress = out.append
        for _ in range(5):
            host.inject("eth0", Packet(flow=flow, size=256))
        sim.run(until=100 * MS)
        assert len(out) == 5
        assert self.ids.packets_seen == 0


class TestDdosMitigationTimeline:
    """§5.2's Fig. 9 scenario: detect → alarm → boot scrubber →
    RequestMe reroute → outgoing traffic recovers."""

    def test_full_timeline(self, sim):
        controller = SdnController(sim)
        orchestrator = NfvOrchestrator(sim)
        app = SdnfvApp(sim, controller=controller,
                       orchestrator=orchestrator)
        host = NfvHost(sim, name="d0", controller=controller)
        app.register_host(host)
        detector = DdosDetector("detector", threshold_gbps=0.04,
                                prefix_bits=16, window_ns=500 * MS)
        host.add_nf(detector)

        graph = ServiceGraph("ddos")
        graph.add_service("detector", read_only=True)
        graph.add_service("scrubber")
        graph.add_edge("detector", EXIT, default=True)
        graph.add_edge("detector", "scrubber")
        graph.add_edge("scrubber", EXIT, default=True)
        graph.set_entry("detector")
        app.deploy(graph, proactive=True)

        scrubbers = []

        def boot_scrubber(host_name, message):
            match = message.value["match"]

            def factory():
                scrubber = DdosScrubber("scrubber",
                                        attack_matches=[match])
                scrubbers.append(scrubber)
                return scrubber

            app.launch_nf(host_name, factory)

        app.on_message(DDOS_ALARM_KEY, boot_scrubber)

        workload = DdosRampWorkload(
            sim, host, normal_mbps=20.0, attack_start_ns=2 * S,
            attack_ramp_mbps_per_s=20.0, attack_max_mbps=100.0,
            packet_size=1024, window_ns=1 * S)
        sim.run(until=25 * S)

        assert detector.alarms_sent == 1
        assert scrubbers and scrubbers[0].scrubbed > 0
        # Outgoing traffic at the end is back near the normal rate even
        # though incoming keeps rising (the scrubber eats the attack).
        out_end = workload.out_meter.mean_gbps(22 * S, 25 * S)
        in_end = workload.in_meter.mean_gbps(22 * S, 25 * S)
        assert in_end > 3 * out_end
        assert out_end == pytest.approx(0.020, rel=0.4)
        # Normal traffic still flows (not scrubbed).
        assert scrubbers[0].passed > 0


class TestVideoPolicyFlip:
    """§5.3's Fig. 11 mechanism, at small scale: ChangeDefault releases
    flows; RequestMe recalls them on a policy change."""

    def _build(self, sim):
        app = SdnfvApp(sim)
        host = NfvHost(sim, name="v0")
        app.register_host(host)
        self.detector = VideoFlowDetector("vd")
        self.policy = PolicyEngine("pe", detector_service="vd",
                                   transcoder_service="tc",
                                   exit_port="eth1")
        self.transcoder = Transcoder("tc", keep_ratio=0.5)
        host.add_nf(self.detector)
        host.add_nf(self.policy)
        host.add_nf(self.transcoder)

        graph = ServiceGraph("video")
        graph.add_service("vd", read_only=True)
        graph.add_service("pe")
        graph.add_service("tc")
        graph.add_edge("vd", "pe", default=True)
        graph.add_edge("vd", EXIT)
        graph.add_edge("pe", "tc", default=True)
        graph.add_edge("pe", EXIT)
        graph.add_edge("tc", EXIT, default=True)
        graph.set_entry("vd")
        app.deploy(graph)
        return app, host

    def test_flows_released_bypass_policy_engine(self, sim, flow):
        _app, host = self._build(sim)
        out = []
        host.port("eth1").on_egress = out.append
        host.inject("eth0", Packet(flow=flow, size=512,
                                   payload=video_reply_payload()))
        sim.run(until=50 * MS)
        seen_before = self.policy.packets_seen
        assert seen_before == 1
        # Subsequent packets of the released flow skip the policy engine.
        for _ in range(5):
            host.inject("eth0", Packet(flow=flow, size=512))
        sim.run(until=100 * MS)
        assert self.policy.packets_seen == seen_before
        assert len(out) == 6

    def test_policy_flip_recalls_existing_flows(self, sim, flow):
        _app, host = self._build(sim)
        out = []
        host.port("eth1").on_egress = out.append
        host.inject("eth0", Packet(flow=flow, size=512,
                                   payload=video_reply_payload()))
        sim.run(until=50 * MS)
        self.policy.set_throttle(True)
        sim.run(until=60 * MS)
        # The recall (RequestMe) pulls the flow back through pe, which
        # redirects to the transcoder; keep_ratio drops half.
        for _ in range(10):
            host.inject("eth0", Packet(flow=flow, size=512))
        sim.run(until=200 * MS)
        assert self.policy.packets_seen >= 2
        assert self.transcoder.packets_seen == 10
        assert self.transcoder.dropped == 5
        assert len(out) == 6  # 1 pre-flip + 5 kept


class TestMemcachedUseCase:
    def test_proxy_spreads_keys_and_measures_rtt(self, sim):
        host = NfvHost(sim, name="mc0")
        proxy = MemcachedProxy("mc", servers=[
            ("10.8.0.10", 11211), ("10.8.0.11", 11211),
            ("10.8.0.12", 11211)])
        host.add_nf(proxy)
        install_chain(host, ["mc"])
        workload = MemcachedWorkload(sim, host,
                                     requests_per_second=200_000,
                                     key_space=1000)
        sim.run(until=50 * MS)
        assert workload.forwarded > 5_000
        assert len(proxy.per_server) == 3
        assert workload.latency.mean_us() < 120


class TestPacketConservation:
    """System-wide invariant: every received packet is accounted for."""

    def test_rx_equals_tx_plus_drops_anomaly(self, sim, flow):
        case = TestAnomalyDetectionUseCase()
        _app, host = case._build(sim, sample_rate=0.5)
        for i in range(50):
            payload = "' OR 1=1" if i % 7 == 0 else "clean payload"
            host.inject("eth0", Packet(
                flow=FiveTuple("10.0.0.1", "10.0.0.2", PROTO_TCP,
                               1000 + i, 80),
                size=256, payload=payload))
        sim.run(until=2 * S)
        stats = host.stats
        accounted = (stats.tx_packets + stats.dropped_by_nf
                     + stats.dropped_ring_full + stats.dropped_no_rule
                     + stats.dropped_no_vm)
        assert accounted == stats.rx_packets
