"""A bounded FIFO store with blocking put/get, for inter-process queues."""

from __future__ import annotations

import collections
import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


class Store:
    """Bounded FIFO channel between simulation processes.

    ``put(item)`` and ``get()`` return events; a process yields them::

        yield store.put(item)      # blocks while full
        item = yield store.get()   # blocks while empty

    Non-blocking variants ``try_put`` / ``try_get`` return success/None
    immediately — these model drop-on-full ring buffers.

    ``recycle=True`` draws put/get events from the simulator's kernel
    free list instead of allocating: they are reused after their
    callbacks run, so a steady-state consumer loop allocates no Event
    objects.  Only safe for *internal* stores whose events are always
    ``yield``\\ ed immediately and never retained past their firing —
    leave it off for stores exposed to arbitrary callers.
    """

    # Stores sit on the per-packet path (NIC rings, VM rings, TX queues):
    # slotted so a busy host's queues never pay per-instance dict costs.
    __slots__ = ("sim", "capacity", "recycle", "items", "_getters",
                 "_putters")

    def __init__(self, sim: Simulator,
                 capacity: int | float = float("inf"),
                 recycle: bool = False) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.recycle = recycle
        self.items: collections.deque = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()
        self._putters: collections.deque[tuple[Event, typing.Any]] = (
            collections.deque())

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    # ------------------------------------------------------------------
    # Blocking interface
    # ------------------------------------------------------------------
    def _event(self) -> Event:
        if self.recycle:
            return self.sim._acquire_event()
        return Event(self.sim)

    def put(self, item: typing.Any) -> Event:
        # Hand-off checks are inlined (instead of calling the private
        # helpers) because put/get/try_put are the busiest calls in the
        # whole simulator — one per packet per pipeline stage.
        event = self._event()
        items = self.items
        if self._getters and not items:
            getter = self._pop_live_getter()
            if getter is not None:
                getter.succeed(item)
                event.succeed()
                return event
        if len(items) < self.capacity:
            items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = self._event()
        items = self.items
        if items:
            event.succeed(items.popleft())
            if self._putters and len(items) < self.capacity:
                put_event, item = self._putters.popleft()
                items.append(item)
                put_event.succeed()
        else:
            self._getters.append(event)
        return event

    def _pop_live_getter(self) -> Event | None:
        """Next getter that still has a subscriber.

        A get event whose callbacks emptied out belongs to a process that
        was interrupted while waiting; delivering an item to it would
        lose the item silently.
        """
        while self._getters:
            getter = self._getters.popleft()
            if getter.callbacks:  # None (processed) is impossible here
                return getter
        return None

    # ------------------------------------------------------------------
    # Non-blocking interface
    # ------------------------------------------------------------------
    def try_put(self, item: typing.Any) -> bool:
        """Insert if not full.  Returns False (drop) when full."""
        items = self.items
        if self._getters and not items:
            getter = self._pop_live_getter()
            if getter is not None:
                getter.succeed(item)
                return True
        if len(items) >= self.capacity:
            return False
        items.append(item)
        return True

    def try_get(self) -> typing.Any | None:
        """Remove and return the head item, or None when empty."""
        items = self.items
        if not items:
            return None
        item = items.popleft()
        if self._putters and len(items) < self.capacity:
            put_event, pending = self._putters.popleft()
            items.append(pending)
            put_event.succeed()
        return item

