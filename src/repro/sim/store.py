"""A bounded FIFO store with blocking put/get, for inter-process queues."""

from __future__ import annotations

import collections
import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


class Store:
    """Bounded FIFO channel between simulation processes.

    ``put(item)`` and ``get()`` return events; a process yields them::

        yield store.put(item)      # blocks while full
        item = yield store.get()   # blocks while empty

    Non-blocking variants ``try_put`` / ``try_get`` return success/None
    immediately — these model drop-on-full ring buffers.
    """

    def __init__(self, sim: "Simulator",
                 capacity: int | float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: collections.deque = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()
        self._putters: collections.deque[tuple[Event, typing.Any]] = (
            collections.deque())

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    # ------------------------------------------------------------------
    # Blocking interface
    # ------------------------------------------------------------------
    def put(self, item: typing.Any) -> Event:
        event = Event(self.sim)
        if self._try_deliver_directly(item):
            event.succeed()
        elif not self.is_full:
            self.items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_waiting_putter()
        else:
            self._getters.append(event)
        return event

    def _pop_live_getter(self) -> Event | None:
        """Next getter that still has a subscriber.

        A get event whose callbacks emptied out belongs to a process that
        was interrupted while waiting; delivering an item to it would
        lose the item silently.
        """
        while self._getters:
            getter = self._getters.popleft()
            if getter.callbacks:  # None (processed) is impossible here
                return getter
        return None

    # ------------------------------------------------------------------
    # Non-blocking interface
    # ------------------------------------------------------------------
    def try_put(self, item: typing.Any) -> bool:
        """Insert if not full.  Returns False (drop) when full."""
        if self._try_deliver_directly(item):
            return True
        if self.is_full:
            return False
        self.items.append(item)
        return True

    def try_get(self) -> typing.Any | None:
        """Remove and return the head item, or None when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._admit_waiting_putter()
        return item

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _try_deliver_directly(self, item: typing.Any) -> bool:
        """Hand ``item`` straight to a waiting getter, preserving FIFO."""
        if self._getters and not self.items:
            getter = self._pop_live_getter()
            if getter is not None:
                getter.succeed(item)
                return True
        return False

    def _admit_waiting_putter(self) -> None:
        if self._putters and not self.is_full:
            put_event, item = self._putters.popleft()
            self.items.append(item)
            put_event.succeed()
