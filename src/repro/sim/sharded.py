"""Sharded parallel simulation: per-host-group event lanes behind one API.

The single-threaded kernel (:mod:`repro.sim.simulator`) serializes every
host of a multi-host run through one event heap.  This module partitions
a topology's NFV hosts into *shards* — each shard a complete, private
simulation (its own :class:`~repro.sim.simulator.Simulator`, its own
hosts, fabric, packet pools, event log) — and runs them in conservative
lockstep:

- **Lookahead window.**  The minimum propagation delay of any link that
  crosses a shard boundary is a hard lower bound on how soon one shard
  can affect another.  All shards advance in barrier-synchronized
  windows of that width (null-message/LBTS style): a frame transmitted
  at ``t`` inside window ``[W, W+L)`` arrives at ``t + delay >= W + L``,
  so delivering captured frames at each barrier can never violate
  causality.

- **Boundary events.**  Frames leaving a shard are serialized to plain
  tuples (flow fields, size, payload, timestamps) — never object
  references — and rebuilt from the destination host's packet pool on
  the owning shard.  The same codec runs in-process (``workers=0``) and
  over ``multiprocessing`` pipes, so a worker run is bit-equal to the
  debuggable in-process run.

- **Determinism.**  Boundary events are globally sorted by
  ``(arrival time, source shard, capture order)`` before delivery, and
  per-shard event logs merge by ``(timestamp, shard id, append order)``
  (:func:`repro.metrics.eventlog.merge_events`).  ``shards=1`` runs the
  identical construction with no boundaries at all and is byte-identical
  to a hand-built single-kernel run — pinned by the golden-parity suite.

Known limit: two boundary frames from *different* source shards arriving
at the same destination in the same nanosecond are ordered by source
shard, where the monolithic kernel would use global schedule order; all
per-host counters remain invariant, but exact event interleaving at such
collisions may differ.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.control.plane import ControlPlane
from repro.core.app import SdnfvApp
from repro.core.service_graph import ServiceGraph
from repro.dataplane.costs import HostCosts
from repro.dataplane.manager import DEFAULT_BURST_SIZE, ControlPlanePolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import ControllerOutage, FaultPlan
from repro.metrics.eventlog import ControlEvent, EventLog, merge_events
from repro.net.flow import FiveTuple
from repro.net.mempool import DEFAULT_POOL_SIZE
from repro.net.packet import Packet
from repro.nfs import NoOpNf
from repro.sim.simulator import Simulator
from repro.sim.units import US
from repro.topology.builder import BoundaryWire, BuiltNetwork, build_network
from repro.topology.nodes import NodeKind
from repro.topology.topology import Topology
from repro.workloads.pktgen import FlowSpec, PktGen

__all__ = [
    "Scenario",
    "ShardPlan",
    "ShardRuntime",
    "ShardedRunResult",
    "ShardedSimulator",
    "TrafficSpec",
]


class ScenarioError(ValueError):
    """The scenario cannot run (invalid placement, traffic, or faults)."""


@dataclasses.dataclass
class TrafficSpec:
    """One generated flow, injected at ``host``'s ingress port.

    The picklable subset of :class:`repro.workloads.pktgen.FlowSpec`
    (callable payloads are excluded so specs can cross worker
    boundaries), plus the injection host.
    """

    host: str
    flow: FiveTuple
    rate_mbps: float
    packet_size: int = 64
    start_ns: int = 0
    stop_ns: int | None = None
    pacing: str = "uniform"
    payload: str = ""
    # Cycle the generated packets over this many distinct five-tuples
    # (src_port, then src_ip vary; see FlowSpec.flow_count) — the Fig. 10
    # saturation-sweep knob for driving rule-cache churn at scale.
    flow_count: int = 1


@dataclasses.dataclass
class Scenario:
    """A complete, self-contained description of one multi-host run.

    Everything a shard needs to rebuild its share of the world: the
    topology, the placed service graph, NF factories (callables taking
    the service id — classes like :class:`repro.nfs.NoOpNf` work as-is),
    traffic, faults, and the normalized construction kwargs shared with
    :func:`repro.topology.build_network` and :class:`NfvHost`.  Must be
    picklable for ``workers > 0``.
    """

    topology: Topology
    graph: ServiceGraph
    placement: dict[str, str]
    duration_ns: int
    traffic: list[TrafficSpec] = dataclasses.field(default_factory=list)
    nf_factory: typing.Callable[[str], typing.Any] = NoOpNf
    nf_factories: dict[str, typing.Callable[[str], typing.Any]] = (
        dataclasses.field(default_factory=dict))
    fault_plan: FaultPlan | None = None
    costs: HostCosts | None = None
    ingress_port: str = "eth0"
    exit_port: str = "eth1"
    line_rate_gbps: float = 10.0
    burst_size: int = DEFAULT_BURST_SIZE
    pool_size: int = DEFAULT_POOL_SIZE
    # Columnar burst kernel: move bursts as PacketBatch columns through
    # RX/ring/VM/TX instead of per-packet descriptors (byte-identical
    # results, faster wall clock).  Passed through to every NfvHost.
    columnar: bool = False
    seed: int = 0
    ring_slots: int = 512
    pktgen_seed: int = 42
    # Shard-local control plane (0 = no controller, today's behaviour:
    # rules install directly at deploy time).  With control_shards >= 1
    # every simulation shard builds its own ControlPlane replica —
    # controller placement follows the data it serves, so reactive
    # misses never cross a shard boundary.  control_proactive=False
    # leaves tables empty at deploy and every flow sets up reactively
    # (each replica then models its own slice of the controller's
    # queueing, so cross-shard-count parity holds only for the
    # proactive path, whose tables never consult the controller).
    control_shards: int = 0
    control_proactive: bool = True
    control_service_time_ns: int = 500 * US
    control_propagation_ns: int = 15_250 * US
    control_policy: ControlPlanePolicy | None = None

    def nfv_hosts(self) -> tuple[str, ...]:
        return tuple(name for name in self.topology.node_names
                     if self.topology.node(name).kind is NodeKind.NFV_HOST)

    def validate(self) -> None:
        self.graph.validate()
        if self.duration_ns <= 0:
            raise ScenarioError("duration_ns must be positive")
        hosts = set(self.nfv_hosts())
        if not hosts:
            raise ScenarioError("topology has no NFV hosts")
        for service in self.graph.services:
            placed = self.placement.get(service)
            if placed is None:
                raise ScenarioError(f"service {service!r} has no placement")
            if placed not in hosts:
                raise ScenarioError(
                    f"{service!r} placed on unknown host {placed!r}")
        for spec in self.traffic:
            if spec.host not in hosts:
                raise ScenarioError(
                    f"traffic targets unknown host {spec.host!r}")
            if spec.flow_count < 1:
                raise ScenarioError("flow_count must be at least 1")
        if self.control_shards < 0:
            raise ScenarioError("control_shards must be non-negative")
        if self.fault_plan is not None:
            for fault in self.fault_plan:
                if isinstance(fault, ControllerOutage):
                    if not self.control_shards:
                        raise ScenarioError(
                            "ControllerOutage needs control_shards >= 1: "
                            "without a control plane there is no "
                            "controller to take down")
                    if (fault.shard is not None
                            and fault.shard >= self.control_shards):
                        raise ScenarioError(
                            f"fault targets controller shard "
                            f"{fault.shard} but control_shards="
                            f"{self.control_shards}")
                    continue
                target = getattr(fault, "host", None)
                if target is None:
                    raise ScenarioError(
                        f"fault {fault!r} needs an explicit host= so it "
                        "can be routed to its owning shard")
                if target not in hosts:
                    raise ScenarioError(
                        f"fault targets unknown host {target!r}")


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """Host-group partition plus the conservative lookahead window.

    ``groups[i]`` is the tuple of host names shard ``i`` owns.
    ``lookahead_ns`` is the minimum delay of any shard-crossing link
    (None when no link crosses a boundary — single shard, or fully
    disconnected groups — in which case one window covers the run).
    """

    groups: tuple[tuple[str, ...], ...]
    lookahead_ns: int | None

    @classmethod
    def compute(cls, topology: Topology, shards: int) -> ShardPlan:
        """Contiguous balanced partition of the NFV hosts in node order.

        Contiguity in node order keeps neighboring hosts of line-ish
        topologies co-sharded, minimizing boundary crossings.
        """
        hosts = [name for name in topology.node_names
                 if topology.node(name).kind is NodeKind.NFV_HOST]
        if shards < 1:
            raise ValueError("need at least one shard")
        if shards > len(hosts):
            raise ValueError(
                f"{shards} shards for {len(hosts)} NFV hosts; at most "
                "one shard per host")
        groups: list[tuple[str, ...]] = []
        start = 0
        for index in range(shards):
            size = len(hosts) // shards + (
                1 if index < len(hosts) % shards else 0)
            groups.append(tuple(hosts[start:start + size]))
            start += size
        plan = cls(groups=tuple(groups),
                   lookahead_ns=_min_crossing_delay(topology, groups))
        return plan

    def owners(self) -> dict[str, int]:
        """host name -> owning shard index."""
        return {host: index
                for index, group in enumerate(self.groups)
                for host in group}

    def validate_for(self, topology: Topology) -> None:
        """A manually-built plan must cover every NFV host exactly once
        and must not claim a lookahead larger than the links allow."""
        hosts = [name for name in topology.node_names
                 if topology.node(name).kind is NodeKind.NFV_HOST]
        owned = [host for group in self.groups for host in group]
        if sorted(owned) != sorted(set(owned)):
            raise ValueError("plan assigns a host to more than one shard")
        if set(owned) != set(hosts):
            raise ValueError(
                "plan must cover every NFV host exactly once")
        bound = _min_crossing_delay(topology, self.groups)
        if bound is None:
            if self.lookahead_ns is not None:
                raise ValueError(
                    "no shard-crossing links; lookahead_ns must be None")
        elif self.lookahead_ns is None or self.lookahead_ns > bound:
            raise ValueError(
                f"lookahead_ns must be at most {bound} (the minimum "
                "shard-crossing link delay)")


def _min_crossing_delay(topology: Topology,
                        groups: typing.Sequence[tuple[str, ...]]
                        ) -> int | None:
    owner = {host: index
             for index, group in enumerate(groups) for host in group}
    crossing = [link.delay_ns for link in topology.links
                if link.a in owner and link.b in owner
                and owner[link.a] != owner[link.b]]
    if not crossing:
        return None
    lookahead = min(crossing)
    if lookahead < 1:
        raise ValueError(
            "a zero-delay link crosses a shard boundary; conservative "
            "synchronization needs every crossing delay >= 1 ns")
    return lookahead


def _flow_key(flow: FiveTuple) -> tuple[str, str, int, int, int]:
    return (flow.src_ip, flow.dst_ip, flow.protocol,
            flow.src_port, flow.dst_port)


class ShardRuntime:
    """One shard: a private kernel running its owned hosts end to end.

    Builds the shard's share of the scenario — hosts, NFs, rules,
    traffic, faults — from the *same global plan* every other shard
    compiles, so per-host construction order (and therefore every
    host-local RNG stream, VM id, and ring name) is identical whether
    the host runs monolithically or sharded.

    Cross-shard traffic leaves through :class:`BoundaryWire` egress
    hooks as serialized tuples and enters via :meth:`deliver`; no object
    in this runtime is ever reachable from another shard.
    """

    def __init__(self, scenario: Scenario, plan: ShardPlan,
                 shard_id: int) -> None:
        self.scenario = scenario
        self.plan = plan
        self.shard_id = shard_id
        self.owned: tuple[str, ...] = plan.groups[shard_id]
        sim = self.sim = Simulator()
        self.network: BuiltNetwork = build_network(
            sim, scenario.topology, costs=scenario.costs,
            ingress_port=scenario.ingress_port,
            exit_port=scenario.exit_port,
            line_rate_gbps=scenario.line_rate_gbps,
            burst_size=scenario.burst_size,
            pool_size=scenario.pool_size,
            columnar=scenario.columnar,
            seed=scenario.seed,
            only_hosts=self.owned)
        self.event_log = EventLog(sim)
        # Shard-local controller placement: each runtime replicates the
        # control plane, so every host's controller channel terminates
        # inside its own shard (reactive misses never cross a boundary).
        self.plane: ControlPlane | None = None
        if scenario.control_shards:
            self.plane = ControlPlane(
                sim, shards=scenario.control_shards,
                service_time_ns=scenario.control_service_time_ns,
                propagation_ns=scenario.control_propagation_ns,
                event_log=self.event_log)
        self.app = SdnfvApp(sim, controller=self.plane)
        for host in self.network.hosts.values():
            self.app.register_host(host)
            host.manager.event_log = self.event_log
            if self.plane is not None:
                host.manager.controller = self.plane
                host.manager.control_policy = scenario.control_policy

        # NFs in global graph order: each host sees the same local
        # registration sequence (hence the same vm ids and RNG streams)
        # at every shard count.
        for service in scenario.graph.services:
            host = self.network.hosts.get(scenario.placement[service])
            if host is None:
                continue
            factory = scenario.nf_factories.get(service,
                                                scenario.nf_factory)
            host.add_nf(factory(service), ring_slots=scenario.ring_slots)

        self.app.deploy(scenario.graph,
                        ingress_port=scenario.ingress_port,
                        exit_port=scenario.exit_port,
                        placement=scenario.placement,
                        network=self.network,
                        proactive=scenario.control_proactive)

        # Per-host traffic generation and exit-side measurement.
        self.gens: dict[str, PktGen] = {}
        self.deliveries: dict[str, list] = {}
        for name, host in self.network.hosts.items():
            gen = PktGen(sim, host,
                         ingress_port=scenario.ingress_port,
                         measure_ports=(scenario.exit_port,),
                         seed=scenario.pktgen_seed)
            self.gens[name] = gen
            self.deliveries[name] = []
            self._record_deliveries(host, name)
        for spec in scenario.traffic:
            gen = self.gens.get(spec.host)
            if gen is None:
                continue
            gen.add_flow(FlowSpec(
                flow=spec.flow, rate_mbps=spec.rate_mbps,
                packet_size=spec.packet_size, start_ns=spec.start_ns,
                stop_ns=spec.stop_ns, payload=spec.payload,
                pacing=spec.pacing, flow_count=spec.flow_count))

        # Fault injection routed to the owning shard: only faults whose
        # host this shard realizes are armed, at plan-index-pure times.
        self.injector: FaultInjector | None = None
        if scenario.fault_plan is not None:
            self.injector = FaultInjector(
                sim, scenario.fault_plan,
                hosts=self.network.hosts.values(),
                controller=self.plane,
                only_hosts=self.owned)
            self.injector.arm()

        # Boundary egress capture.
        self._outbox: list[tuple] = []
        self._boundary_seq = 0
        self.boundary_tx = 0
        self.boundary_frames_carried = 0
        self.boundary_dropped_at_rx = 0
        for wire in self.network.boundary_wires:
            port = self.network.hosts[wire.src_host].port(wire.src_port)
            if port.on_egress is not None:
                raise RuntimeError(
                    f"boundary port {wire.src_host}:{wire.src_port} "
                    "already hooked")
            port.on_egress = (
                lambda packet, w=wire: self._capture(w, packet))

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def _record_deliveries(self, host: typing.Any, name: str) -> None:
        port = host.port(self.scenario.exit_port)
        measured = port.on_egress  # PktGen._on_return
        sink = self.deliveries[name]
        sim = self.sim

        def recording_hook(packet: Packet) -> None:
            sink.append((sim.now, packet.created_at,
                         _flow_key(packet.flow)))
            measured(packet)

        port.on_egress = recording_hook

    # ------------------------------------------------------------------
    # Boundary codec
    # ------------------------------------------------------------------
    def _capture(self, wire: BoundaryWire, packet: Packet) -> None:
        """Serialize an egressing frame into a boundary event.

        Mirrors the measurement sink's ownership contract: the local
        buffer is reclaimed here (it never crosses the boundary); the
        destination shard allocates a fresh buffer from *its* host's
        pool.  Only pool telemetry differs from the monolithic run.
        """
        flow = packet.flow
        annotations = packet._annotations
        encoded_annotations = (tuple(sorted(annotations.items()))
                               if annotations else None)
        self._boundary_seq += 1
        self._outbox.append((
            self.sim.now + wire.delay_ns, self._boundary_seq,
            wire.dst_host, wire.dst_port,
            flow.src_ip, flow.dst_ip, flow.protocol,
            flow.src_port, flow.dst_port,
            packet.size, packet.payload, packet.created_at,
            encoded_annotations))
        self.boundary_tx += 1
        pool = packet.pool
        if pool is not None and packet.ref_count == 0:
            pool.reclaim(packet)

    def deliver(self, events: typing.Sequence[tuple]) -> None:
        """Schedule inbound boundary events (already globally sorted by
        arrival time, source shard, capture order)."""
        now = self.sim.now
        for event in events:
            self.sim.call_later(event[0] - now, self._deliver_one, event)

    def _deliver_one(self, event: tuple) -> None:
        (_arrive, _seq, dst_host, dst_port, src_ip, dst_ip, protocol,
         src_port, dst_port_num, size, payload, created_at,
         annotations) = event
        host = self.network.hosts[dst_host]
        flow = FiveTuple(src_ip, dst_ip, protocol, src_port, dst_port_num)
        pool = host.packet_pool
        if pool is not None:
            packet = pool.alloc(flow=flow, size=size, payload=payload,
                                created_at=created_at)
        else:
            packet = Packet(flow=flow, size=size, payload=payload,
                            created_at=created_at)
        if annotations:
            packet._annotations = dict(annotations)
        self.boundary_frames_carried += 1
        accepted = host.inject(dst_port, packet)
        if not accepted:
            self.boundary_dropped_at_rx += 1

    # ------------------------------------------------------------------
    # Conductor interface
    # ------------------------------------------------------------------
    def advance(self, until_ns: int) -> None:
        self.sim.run(until=until_ns)

    def take_outbox(self) -> list[tuple]:
        outbox = self._outbox
        self._outbox = []
        return outbox

    def collect(self) -> dict:
        """Everything observable, as picklable primitives."""
        hosts: dict[str, dict] = {}
        for name, host in self.network.hosts.items():
            gen = self.gens[name]
            hosts[name] = {
                "summary": host.stats.summary(),
                "deliveries": self.deliveries[name],
                "latency_samples": list(gen.latency.samples_ns),
                "sent": gen.sent,
                "received": gen.received,
                "rx_gbps": gen.rx_meter.mean_gbps(),
            }
        fired: list[tuple] = []
        skipped: list[tuple] = []
        if self.injector is not None:
            fired = [(when, type(fault).__name__,
                      getattr(fault, "host", None), fault.at_ns)
                     for when, fault in self.injector.fired]
            skipped = [(when, type(fault).__name__, reason)
                       for when, fault, reason in self.injector.skipped]
        return {
            "shard": self.shard_id,
            "hosts": hosts,
            "control": (self.plane.snapshot()
                        if self.plane is not None else None),
            "events": list(self.event_log.events),
            "fired_faults": fired,
            "skipped_faults": skipped,
            "events_scheduled": self.sim.events_scheduled,
            "timers_scheduled": self.sim.timers_scheduled,
            "events_cancelled": self.sim.events_cancelled,
            "frames_carried": self.network.fabric.frames_carried,
            "frames_dropped_at_rx": (
                self.network.fabric.frames_dropped_at_rx),
            "boundary_tx": self.boundary_tx,
            "boundary_frames_carried": self.boundary_frames_carried,
            "boundary_dropped_at_rx": self.boundary_dropped_at_rx,
        }


class ShardedRunResult:
    """Merged observables of a sharded run."""

    def __init__(self, plan: ShardPlan,
                 shard_results: list[dict]) -> None:
        self.plan = plan
        self.shard_results = shard_results
        self.hosts: dict[str, dict] = {}
        for result in shard_results:
            self.hosts.update(result["hosts"])
        #: Global control-event timeline: timestamp, then shard id, then
        #: each shard's own append order.
        self.events: list[ControlEvent] = merge_events(
            [result["events"] for result in shard_results])
        self.fired_faults: list[tuple] = sorted(
            fault for result in shard_results
            for fault in result["fired_faults"])
        #: Per-simulation-shard control-plane snapshots (None entries
        #: when the scenario ran without a control plane).
        self.controls: list[dict | None] = [
            result.get("control") for result in shard_results]

    @property
    def sent(self) -> int:
        return sum(host["sent"] for host in self.hosts.values())

    @property
    def received(self) -> int:
        return sum(host["received"] for host in self.hosts.values())

    def host_summary(self, name: str) -> dict[str, int]:
        return self.hosts[name]["summary"]

    def deliveries(self, name: str) -> list[tuple]:
        return self.hosts[name]["deliveries"]

    def totals(self) -> dict[str, int]:
        """Network-wide conservation totals, invariant in shard count."""
        keys = ("rx_packets", "tx_packets", "dropped_ring_full",
                "dropped_by_nf", "dropped_no_rule", "dropped_no_vm",
                "nic_rx_dropped", "nic_link_dropped", "lost_in_nf",
                "requeued_packets", "degraded_packets")
        out = {key: sum(host["summary"][key]
                        for host in self.hosts.values())
               for key in keys}
        out["sent"] = self.sent
        out["received"] = self.received
        out["frames_carried"] = sum(
            result["frames_carried"] + result["boundary_frames_carried"]
            for result in self.shard_results)
        out["frames_dropped_at_rx"] = sum(
            result["frames_dropped_at_rx"]
            + result["boundary_dropped_at_rx"]
            for result in self.shard_results)
        return out


class ShardedSimulator:
    """Run a :class:`Scenario` over one or more conservative shards.

    ``workers=0`` runs every shard in-process (deterministic, fully
    debuggable); ``workers=N`` spreads the shards over N
    ``multiprocessing`` workers with the identical window/boundary
    protocol.  ``shards=1`` is byte-identical to the monolithic kernel.
    """

    def __init__(self, scenario: Scenario, shards: int = 1,
                 workers: int = 0,
                 plan: ShardPlan | None = None) -> None:
        scenario.validate()
        self.scenario = scenario
        if plan is None:
            plan = ShardPlan.compute(scenario.topology, shards)
        else:
            plan.validate_for(scenario.topology)
        self.plan = plan
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.workers = min(workers, len(plan.groups))

    # ------------------------------------------------------------------
    def run(self) -> ShardedRunResult:
        if self.workers == 0:
            shard_results = self._run_inline()
        else:
            shard_results = self._run_workers()
        return ShardedRunResult(self.plan, shard_results)

    # ------------------------------------------------------------------
    # Window schedule and boundary routing (shared by both modes)
    # ------------------------------------------------------------------
    def _windows(self) -> list[int]:
        duration = self.scenario.duration_ns
        lookahead = self.plan.lookahead_ns
        if len(self.plan.groups) == 1 or lookahead is None:
            return [duration]
        edges = list(range(lookahead, duration, lookahead))
        edges.append(duration)
        return edges

    def _route(self, tagged: list[tuple[int, tuple]]
               ) -> dict[int, list[tuple]]:
        """Sort captured events deterministically and bucket them by the
        destination host's owning shard."""
        owners = self.plan.owners()
        tagged.sort(key=lambda item: (item[1][0], item[0], item[1][1]))
        inbound: dict[int, list[tuple]] = {}
        for _src_shard, event in tagged:
            inbound.setdefault(owners[event[2]], []).append(event)
        return inbound

    # ------------------------------------------------------------------
    # workers=0: every shard in this process
    # ------------------------------------------------------------------
    def _run_inline(self) -> list[dict]:
        runtimes = [ShardRuntime(self.scenario, self.plan, index)
                    for index in range(len(self.plan.groups))]
        for upto in self._windows():
            for runtime in runtimes:
                runtime.advance(upto)
            tagged = [(runtime.shard_id, event)
                      for runtime in runtimes
                      for event in runtime.take_outbox()]
            if tagged:
                for shard_id, events in self._route(tagged).items():
                    runtimes[shard_id].deliver(events)
        return [runtime.collect() for runtime in runtimes]

    # ------------------------------------------------------------------
    # workers=N: shards spread over processes, same protocol
    # ------------------------------------------------------------------
    def _run_workers(self) -> list[dict]:
        import multiprocessing

        count = len(self.plan.groups)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context("spawn")
        assignment = {worker: [index for index in range(count)
                               if index % self.workers == worker]
                      for worker in range(self.workers)}
        pipes: dict[int, typing.Any] = {}
        procs: dict[int, typing.Any] = {}
        for worker, shard_ids in assignment.items():
            parent, child = context.Pipe()
            proc = context.Process(
                target=_shard_worker,
                args=(child, self.scenario, self.plan, shard_ids),
                daemon=True)
            proc.start()
            child.close()
            pipes[worker] = parent
            procs[worker] = proc
        try:
            pending: dict[int, list[tuple]] = {}
            for upto in self._windows():
                for worker, shard_ids in assignment.items():
                    inbound = {shard_id: pending.get(shard_id, [])
                               for shard_id in shard_ids}
                    pipes[worker].send(("advance", upto, inbound))
                tagged: list[tuple[int, tuple]] = []
                for worker in assignment:
                    payload = self._receive(pipes[worker])
                    for shard_id, events in payload.items():
                        tagged.extend((shard_id, event)
                                      for event in events)
                pending = self._route(tagged) if tagged else {}
            for worker in assignment:
                pipes[worker].send(("finish",))
            results: dict[int, dict] = {}
            for worker in assignment:
                results.update(self._receive(pipes[worker]))
            return [results[index] for index in range(count)]
        finally:
            for pipe in pipes.values():
                pipe.close()
            for proc in procs.values():
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()

    @staticmethod
    def _receive(pipe: typing.Any) -> typing.Any:
        kind, payload = pipe.recv()
        if kind == "error":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        return payload


def _shard_worker(conn: typing.Any, scenario: Scenario, plan: ShardPlan,
                  shard_ids: list[int]) -> None:
    """Worker process: owns one or more shards, speaks the pipe protocol.

    Messages in: ``("advance", until_ns, {shard: inbound_events})`` and
    ``("finish",)``.  Replies: ``("ok", {shard: outbox})``,
    ``("result", {shard: collected})``, or ``("error", traceback)``.
    """
    try:
        runtimes = {shard_id: ShardRuntime(scenario, plan, shard_id)
                    for shard_id in shard_ids}
        while True:
            message = conn.recv()
            if message[0] == "advance":
                _kind, until_ns, inbound = message
                outboxes: dict[int, list[tuple]] = {}
                for shard_id, runtime in runtimes.items():
                    events = inbound.get(shard_id)
                    if events:
                        runtime.deliver(events)
                    runtime.advance(until_ns)
                    outboxes[shard_id] = runtime.take_outbox()
                conn.send(("ok", outboxes))
            elif message[0] == "finish":
                conn.send(("result",
                           {shard_id: runtime.collect()
                            for shard_id, runtime in runtimes.items()}))
                return
            else:
                raise ValueError(f"unknown message {message[0]!r}")
    except BaseException:  # propagate the real traceback to the parent
        import traceback
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()
