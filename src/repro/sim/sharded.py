"""Sharded parallel simulation: per-host-group event lanes behind one API.

The single-threaded kernel (:mod:`repro.sim.simulator`) serializes every
host of a multi-host run through one event heap.  This module partitions
a topology's NFV hosts into *shards* — each shard a complete, private
simulation (its own :class:`~repro.sim.simulator.Simulator`, its own
hosts, fabric, packet pools, event log) — and runs them in conservative
lockstep:

- **Lookahead windows.**  The minimum propagation delay of any link
  that crosses a shard boundary is a hard lower bound on how soon one
  shard can affect another.  ``ShardPlan`` records that bound per
  *directed shard pair* (``lookahead_matrix``); the conductor runs a
  null-message/LBTS-style round schedule where each shard advances to
  the minimum over its inbound neighbors' clocks plus the pair
  lookahead (``adaptive_windows=True``, the default), so two shards
  joined only by a slow WAN link barrier at WAN cadence even while an
  intra-DC pair elsewhere barriers every few microseconds.  Uniform
  topologies degenerate to the classic global barrier of width
  ``lookahead_ns``; ``adaptive_windows=False`` forces that global
  schedule.  Either way a frame transmitted at ``t`` inside a window
  arrives at ``t + delay`` past every target the round hands out, so
  delivering captured frames between rounds never violates causality.

- **Boundary events.**  Frames leaving a shard are serialized to plain
  tuples (flow fields, size, payload, timestamps) — never object
  references — and rebuilt from the destination host's packet pool on
  the owning shard.  Per window and destination the tuples travel as a
  packed :class:`~repro.net.batch.BoundaryBatch` (int64 columns plus
  dictionary tables; ``transport="columnar"``, the default) or as the
  legacy per-event pickled tuples (``transport="pickle"``); both
  decode to identical rows.  The same codec runs in-process
  (``workers=0``) and over ``multiprocessing`` pipes, so a worker run
  is bit-equal to the debuggable in-process run, and per-shard
  transport counters (windows, batches, messages, bytes) land in the
  run result.

- **Determinism.**  Boundary events are globally sorted by
  ``(arrival time, source shard, capture order)`` before delivery, and
  per-shard event logs merge by ``(timestamp, shard id, append order)``
  (:func:`repro.metrics.eventlog.merge_events`).  ``shards=1`` runs the
  identical construction with no boundaries at all and is byte-identical
  to a hand-built single-kernel run — pinned by the golden-parity suite.

Known limit: two boundary frames from *different* source shards arriving
at the same destination in the same nanosecond are ordered by source
shard, where the monolithic kernel would use global schedule order; all
per-host counters remain invariant, but exact event interleaving at such
collisions may differ.
"""

from __future__ import annotations

import dataclasses
import pickle
import typing

from repro.control.plane import ControlPlane
from repro.core.app import SdnfvApp
from repro.core.service_graph import ServiceGraph
from repro.dataplane.costs import HostCosts
from repro.dataplane.manager import DEFAULT_BURST_SIZE, ControlPlanePolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import ControllerOutage, FaultPlan
from repro.metrics.eventlog import ControlEvent, EventLog, merge_events
from repro.net.batch import encode_boundary_events
from repro.net.flow import FiveTuple
from repro.net.mempool import DEFAULT_POOL_SIZE
from repro.net.packet import Packet
from repro.nfs import NoOpNf
from repro.sim.simulator import Simulator
from repro.sim.units import US
from repro.topology.builder import BoundaryWire, BuiltNetwork, build_network
from repro.topology.nodes import NodeKind
from repro.topology.topology import Topology
from repro.workloads.pktgen import FlowSpec, PktGen

__all__ = [
    "Scenario",
    "ShardPlan",
    "ShardRuntime",
    "ShardedRunResult",
    "ShardedSimulator",
    "TrafficSpec",
]


class ScenarioError(ValueError):
    """The scenario cannot run (invalid placement, traffic, or faults)."""


@dataclasses.dataclass
class TrafficSpec:
    """One generated flow, injected at ``host``'s ingress port.

    The picklable subset of :class:`repro.workloads.pktgen.FlowSpec`
    (callable payloads are excluded so specs can cross worker
    boundaries), plus the injection host.
    """

    host: str
    flow: FiveTuple
    rate_mbps: float
    packet_size: int = 64
    start_ns: int = 0
    stop_ns: int | None = None
    pacing: str = "uniform"
    payload: str = ""
    # Cycle the generated packets over this many distinct five-tuples
    # (src_port, then src_ip vary; see FlowSpec.flow_count) — the Fig. 10
    # saturation-sweep knob for driving rule-cache churn at scale.
    flow_count: int = 1


@dataclasses.dataclass
class Scenario:
    """A complete, self-contained description of one multi-host run.

    Everything a shard needs to rebuild its share of the world: the
    topology, the placed service graph, NF factories (callables taking
    the service id — classes like :class:`repro.nfs.NoOpNf` work as-is),
    traffic, faults, and the normalized construction kwargs shared with
    :func:`repro.topology.build_network` and :class:`NfvHost`.  Must be
    picklable for ``workers > 0``.
    """

    topology: Topology
    graph: ServiceGraph
    placement: dict[str, str]
    duration_ns: int
    traffic: list[TrafficSpec] = dataclasses.field(default_factory=list)
    nf_factory: typing.Callable[[str], typing.Any] = NoOpNf
    nf_factories: dict[str, typing.Callable[[str], typing.Any]] = (
        dataclasses.field(default_factory=dict))
    fault_plan: FaultPlan | None = None
    costs: HostCosts | None = None
    ingress_port: str = "eth0"
    exit_port: str = "eth1"
    line_rate_gbps: float = 10.0
    burst_size: int = DEFAULT_BURST_SIZE
    pool_size: int = DEFAULT_POOL_SIZE
    # Columnar burst kernel: move bursts as PacketBatch columns through
    # RX/ring/VM/TX instead of per-packet descriptors (byte-identical
    # results, faster wall clock).  Passed through to every NfvHost.
    columnar: bool = False
    # Attach the descriptor-ownership verifier to every host
    # (repro.analysis.ownership.HostVerifier): the boundary capture
    # (pool reclaim at the source) and delivery (pool alloc + NIC
    # receive at the destination) hand-offs run under its shadow
    # ledger, and each shard's collect() carries the per-host audit.
    verify: bool = False
    seed: int = 0
    ring_slots: int = 512
    pktgen_seed: int = 42
    # Shard-local control plane (0 = no controller, today's behaviour:
    # rules install directly at deploy time).  With control_shards >= 1
    # every simulation shard builds its own ControlPlane replica —
    # controller placement follows the data it serves, so reactive
    # misses never cross a shard boundary.  control_proactive=False
    # leaves tables empty at deploy and every flow sets up reactively
    # (each replica then models its own slice of the controller's
    # queueing, so cross-shard-count parity holds only for the
    # proactive path, whose tables never consult the controller).
    control_shards: int = 0
    control_proactive: bool = True
    control_service_time_ns: int = 500 * US
    control_propagation_ns: int = 15_250 * US
    control_policy: ControlPlanePolicy | None = None

    def nfv_hosts(self) -> tuple[str, ...]:
        return tuple(name for name in self.topology.node_names
                     if self.topology.node(name).kind is NodeKind.NFV_HOST)

    def validate(self) -> None:
        self.graph.validate()
        if self.duration_ns <= 0:
            raise ScenarioError("duration_ns must be positive")
        hosts = set(self.nfv_hosts())
        if not hosts:
            raise ScenarioError("topology has no NFV hosts")
        for service in self.graph.services:
            placed = self.placement.get(service)
            if placed is None:
                raise ScenarioError(f"service {service!r} has no placement")
            if placed not in hosts:
                raise ScenarioError(
                    f"{service!r} placed on unknown host {placed!r}")
        for spec in self.traffic:
            if spec.host not in hosts:
                raise ScenarioError(
                    f"traffic targets unknown host {spec.host!r}")
            if spec.flow_count < 1:
                raise ScenarioError("flow_count must be at least 1")
        if self.control_shards < 0:
            raise ScenarioError("control_shards must be non-negative")
        if self.fault_plan is not None:
            for fault in self.fault_plan:
                if isinstance(fault, ControllerOutage):
                    if not self.control_shards:
                        raise ScenarioError(
                            "ControllerOutage needs control_shards >= 1: "
                            "without a control plane there is no "
                            "controller to take down")
                    if (fault.shard is not None
                            and fault.shard >= self.control_shards):
                        raise ScenarioError(
                            f"fault targets controller shard "
                            f"{fault.shard} but control_shards="
                            f"{self.control_shards}")
                    continue
                target = getattr(fault, "host", None)
                if target is None:
                    raise ScenarioError(
                        f"fault {fault!r} needs an explicit host= so it "
                        "can be routed to its owning shard")
                if target not in hosts:
                    raise ScenarioError(
                        f"fault targets unknown host {target!r}")


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """Host-group partition plus the conservative lookahead bounds.

    ``groups[i]`` is the tuple of host names shard ``i`` owns.
    ``lookahead_ns`` is the minimum delay of any shard-crossing link
    (None when no link crosses a boundary — single shard, or fully
    disconnected groups — in which case one window covers the run); it
    is the width of the classic global barrier.
    ``lookahead_matrix`` refines that to directed shard pairs: sorted
    ``(src_shard, dst_shard, min_crossing_delay_ns)`` triples, one per
    pair of groups joined by at least one link — the adaptive schedule
    barriers each pair at its own cadence.  ``compute`` fills it; a
    hand-built plan may leave it ``None``, in which case
    :class:`ShardedSimulator` derives it from the topology.
    """

    groups: tuple[tuple[str, ...], ...]
    lookahead_ns: int | None
    lookahead_matrix: tuple[tuple[int, int, int], ...] | None = None

    @classmethod
    def compute(cls, topology: Topology, shards: int) -> ShardPlan:
        """Contiguous balanced partition of the NFV hosts in node order.

        Contiguity in node order keeps neighboring hosts of line-ish
        topologies co-sharded, minimizing boundary crossings.
        """
        hosts = [name for name in topology.node_names
                 if topology.node(name).kind is NodeKind.NFV_HOST]
        if shards < 1:
            raise ValueError("need at least one shard")
        if shards > len(hosts):
            raise ValueError(
                f"{shards} shards for {len(hosts)} NFV hosts; at most "
                "one shard per host")
        groups: list[tuple[str, ...]] = []
        start = 0
        for index in range(shards):
            size = len(hosts) // shards + (
                1 if index < len(hosts) % shards else 0)
            groups.append(tuple(hosts[start:start + size]))
            start += size
        matrix = _crossing_matrix(topology, groups)
        plan = cls(groups=tuple(groups),
                   lookahead_ns=(min(delay for _, _, delay in matrix)
                                 if matrix else None),
                   lookahead_matrix=matrix)
        return plan

    def owners(self) -> dict[str, int]:
        """host name -> owning shard index."""
        return {host: index
                for index, group in enumerate(self.groups)
                for host in group}

    def pair_lookaheads(self) -> dict[tuple[int, int], int] | None:
        """``(src_shard, dst_shard) -> lookahead_ns`` (None if unset)."""
        if self.lookahead_matrix is None:
            return None
        return {(src, dst): delay
                for src, dst, delay in self.lookahead_matrix}

    def validate_for(self, topology: Topology) -> None:
        """A manually-built plan must cover every NFV host exactly once
        and must not claim lookaheads larger than the links allow."""
        hosts = [name for name in topology.node_names
                 if topology.node(name).kind is NodeKind.NFV_HOST]
        owned = [host for group in self.groups for host in group]
        if sorted(owned) != sorted(set(owned)):
            raise ValueError("plan assigns a host to more than one shard")
        if set(owned) != set(hosts):
            raise ValueError(
                "plan must cover every NFV host exactly once")
        actual = _crossing_matrix(topology, self.groups)
        bound = min((delay for _, _, delay in actual), default=None) \
            if actual else None
        if bound is None:
            if self.lookahead_ns is not None:
                raise ValueError(
                    "no shard-crossing links; lookahead_ns must be None")
        elif self.lookahead_ns is None or self.lookahead_ns > bound:
            raise ValueError(
                f"lookahead_ns must be at most {bound} (the minimum "
                "shard-crossing link delay)")
        if self.lookahead_matrix is not None:
            claimed = self.pair_lookaheads()
            for src, dst, delay in actual:
                stated = claimed.get((src, dst))
                if stated is None:
                    raise ValueError(
                        f"lookahead_matrix is missing the crossing pair "
                        f"{src}->{dst}; an absent pair would let the "
                        "schedule outrun that link")
                if stated > delay:
                    raise ValueError(
                        f"lookahead_matrix claims {stated} ns for pair "
                        f"{src}->{dst} but the minimum crossing delay "
                        f"is {delay} ns")
                if stated < 1:
                    raise ValueError(
                        "per-pair lookaheads must be >= 1 ns")


def _crossing_matrix(topology: Topology,
                     groups: typing.Sequence[tuple[str, ...]]
                     ) -> tuple[tuple[int, int, int], ...]:
    """Sorted directed ``(src, dst, min_delay)`` triples between groups,
    rejecting zero-delay crossings (conservative sync needs >= 1 ns)."""
    delays = topology.crossing_delays(groups)
    if any(delay < 1 for delay in delays.values()):
        raise ValueError(
            "a zero-delay link crosses a shard boundary; conservative "
            "synchronization needs every crossing delay >= 1 ns")
    return tuple(sorted((src, dst, delay)
                        for (src, dst), delay in delays.items()))


def _flow_key(flow: FiveTuple) -> tuple[str, str, int, int, int]:
    return (flow.src_ip, flow.dst_ip, flow.protocol,
            flow.src_port, flow.dst_port)


class _PickleTransport:
    """Legacy boundary wire format: one pickled tuple per event."""

    name = "pickle"

    @staticmethod
    def encode(events: list[tuple]) -> list[tuple]:
        return events

    @staticmethod
    def decode(payload: list[tuple]) -> list[tuple]:
        return payload

    @staticmethod
    def units(events: list[tuple], payload: object) -> int:
        return len(events)


class _ColumnarTransport:
    """Packed-column wire format: a few flat buffers per window/shard
    (:class:`repro.net.batch.BoundaryBatch`)."""

    name = "columnar"

    @staticmethod
    def encode(events: list[tuple]):
        return encode_boundary_events(events)

    @staticmethod
    def decode(payload) -> list[tuple]:
        return payload.decode()

    @staticmethod
    def units(events: list[tuple], payload) -> int:
        return payload.buffer_count()


_TRANSPORTS = {transport.name: transport
               for transport in (_PickleTransport, _ColumnarTransport)}


class ShardRuntime:
    """One shard: a private kernel running its owned hosts end to end.

    Builds the shard's share of the scenario — hosts, NFs, rules,
    traffic, faults — from the *same global plan* every other shard
    compiles, so per-host construction order (and therefore every
    host-local RNG stream, VM id, and ring name) is identical whether
    the host runs monolithically or sharded.

    Cross-shard traffic leaves through :class:`BoundaryWire` egress
    hooks as serialized tuples and enters via :meth:`deliver`; no object
    in this runtime is ever reachable from another shard.
    """

    def __init__(self, scenario: Scenario, plan: ShardPlan,
                 shard_id: int, transport: str = "columnar") -> None:
        self.scenario = scenario
        self.plan = plan
        self.shard_id = shard_id
        self.owned: tuple[str, ...] = plan.groups[shard_id]
        self._transport = _TRANSPORTS[transport]
        sim = self.sim = Simulator()
        self.network: BuiltNetwork = build_network(
            sim, scenario.topology, costs=scenario.costs,
            ingress_port=scenario.ingress_port,
            exit_port=scenario.exit_port,
            line_rate_gbps=scenario.line_rate_gbps,
            burst_size=scenario.burst_size,
            pool_size=scenario.pool_size,
            columnar=scenario.columnar,
            verify=scenario.verify,
            seed=scenario.seed,
            only_hosts=self.owned)
        self.event_log = EventLog(sim)
        # Shard-local controller placement: each runtime replicates the
        # control plane, so every host's controller channel terminates
        # inside its own shard (reactive misses never cross a boundary).
        self.plane: ControlPlane | None = None
        if scenario.control_shards:
            self.plane = ControlPlane(
                sim, shards=scenario.control_shards,
                service_time_ns=scenario.control_service_time_ns,
                propagation_ns=scenario.control_propagation_ns,
                event_log=self.event_log)
        self.app = SdnfvApp(sim, controller=self.plane)
        for host in self.network.hosts.values():
            self.app.register_host(host)
            host.manager.event_log = self.event_log
            if self.plane is not None:
                host.manager.controller = self.plane
                host.manager.control_policy = scenario.control_policy

        # NFs in global graph order: each host sees the same local
        # registration sequence (hence the same vm ids and RNG streams)
        # at every shard count.
        for service in scenario.graph.services:
            host = self.network.hosts.get(scenario.placement[service])
            if host is None:
                continue
            factory = scenario.nf_factories.get(service,
                                                scenario.nf_factory)
            host.add_nf(factory(service), ring_slots=scenario.ring_slots)

        self.app.deploy(scenario.graph,
                        ingress_port=scenario.ingress_port,
                        exit_port=scenario.exit_port,
                        placement=scenario.placement,
                        network=self.network,
                        proactive=scenario.control_proactive)

        # Per-host traffic generation and exit-side measurement.
        self.gens: dict[str, PktGen] = {}
        self.deliveries: dict[str, list] = {}
        for name, host in self.network.hosts.items():
            gen = PktGen(sim, host,
                         ingress_port=scenario.ingress_port,
                         measure_ports=(scenario.exit_port,),
                         seed=scenario.pktgen_seed)
            self.gens[name] = gen
            self.deliveries[name] = []
            self._record_deliveries(host, name)
        for spec in scenario.traffic:
            gen = self.gens.get(spec.host)
            if gen is None:
                continue
            gen.add_flow(FlowSpec(
                flow=spec.flow, rate_mbps=spec.rate_mbps,
                packet_size=spec.packet_size, start_ns=spec.start_ns,
                stop_ns=spec.stop_ns, payload=spec.payload,
                pacing=spec.pacing, flow_count=spec.flow_count))

        # Fault injection routed to the owning shard: only faults whose
        # host this shard realizes are armed, at plan-index-pure times.
        self.injector: FaultInjector | None = None
        if scenario.fault_plan is not None:
            self.injector = FaultInjector(
                sim, scenario.fault_plan,
                hosts=self.network.hosts.values(),
                controller=self.plane,
                only_hosts=self.owned)
            self.injector.arm()

        # Boundary egress capture, staged per destination shard.  The
        # capture sequence is one counter across every destination so
        # the conductor's (arrival, source shard, capture order) sort
        # matches the single-outbox era exactly.
        self._outboxes: dict[int, list[tuple]] = {}
        self._boundary_seq = 0
        self.boundary_tx = 0
        self.boundary_frames_carried = 0
        self.boundary_dropped_at_rx = 0
        # Transport odometers: windows this shard advanced through,
        # encoded batches, pipe messages those batches amount to, and
        # their serialized size.
        self.windows_advanced = 0
        self.transport_batches = 0
        self.transport_messages = 0
        self.transport_bytes = 0
        owners = plan.owners()
        for wire in self.network.boundary_wires:
            port = self.network.hosts[wire.src_host].port(wire.src_port)
            if port.on_egress is not None:
                raise RuntimeError(
                    f"boundary port {wire.src_host}:{wire.src_port} "
                    "already hooked")
            port.on_egress = (
                lambda packet, w=wire, d=owners[wire.dst_host]:
                self._capture(w, d, packet))

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def _record_deliveries(self, host: typing.Any, name: str) -> None:
        port = host.port(self.scenario.exit_port)
        measured = port.on_egress  # PktGen._on_return
        sink = self.deliveries[name]
        sim = self.sim

        def recording_hook(packet: Packet) -> None:
            sink.append((sim.now, packet.created_at,
                         _flow_key(packet.flow)))
            measured(packet)

        port.on_egress = recording_hook

    # ------------------------------------------------------------------
    # Boundary codec
    # ------------------------------------------------------------------
    def _capture(self, wire: BoundaryWire, dst_shard: int,
                 packet: Packet) -> None:
        """Serialize an egressing frame into a boundary event.

        Mirrors the measurement sink's ownership contract: the local
        buffer is reclaimed here (it never crosses the boundary); the
        destination shard allocates a fresh buffer from *its* host's
        pool.  Only pool telemetry differs from the monolithic run.
        """
        flow = packet.flow
        annotations = packet._annotations
        encoded_annotations = (tuple(sorted(annotations.items()))
                               if annotations else None)
        self._boundary_seq += 1
        self._outboxes.setdefault(dst_shard, []).append((
            self.sim.now + wire.delay_ns, self._boundary_seq,
            wire.dst_host, wire.dst_port,
            flow.src_ip, flow.dst_ip, flow.protocol,
            flow.src_port, flow.dst_port,
            packet.size, packet.payload, packet.created_at,
            encoded_annotations))
        self.boundary_tx += 1
        pool = packet.pool
        if pool is not None and packet.ref_count == 0:
            pool.reclaim(packet)

    def deliver(self, group: typing.Sequence[tuple[int, object]]) -> None:
        """Decode and schedule one round's inbound boundary traffic.

        ``group`` is ``(source_shard, encoded_payload)`` pairs, one per
        source that captured toward this shard in the round.  Rows merge
        across sources by (arrival time, source shard, capture order) —
        the same global order the single-outbox conductor used.
        """
        rows: list[tuple[int, int, int, tuple]] = []
        for src_shard, payload in group:
            for event in self._transport.decode(payload):
                rows.append((event[0], src_shard, event[1], event))
        rows.sort(key=lambda row: row[:3])
        now = self.sim.now
        for _arrival, _src, _seq, event in rows:
            self.sim.call_later(event[0] - now, self._deliver_one, event)

    def _deliver_one(self, event: tuple) -> None:
        (_arrive, _seq, dst_host, dst_port, src_ip, dst_ip, protocol,
         src_port, dst_port_num, size, payload, created_at,
         annotations) = event
        host = self.network.hosts[dst_host]
        flow = FiveTuple(src_ip, dst_ip, protocol, src_port, dst_port_num)
        pool = host.packet_pool
        if pool is not None:
            packet = pool.alloc(flow=flow, size=size, payload=payload,
                                created_at=created_at)
        else:
            packet = Packet(flow=flow, size=size, payload=payload,
                            created_at=created_at)
        if annotations:
            packet._annotations = dict(annotations)
        self.boundary_frames_carried += 1
        accepted = host.inject(dst_port, packet)
        if not accepted:
            self.boundary_dropped_at_rx += 1

    # ------------------------------------------------------------------
    # Conductor interface
    # ------------------------------------------------------------------
    def advance(self, until_ns: int) -> None:
        self.windows_advanced += 1
        self.sim.run(until=until_ns)

    def take_outbox(self) -> dict[int, object]:
        """Encode this window's captures, one payload per destination
        shard, and account the transport odometers."""
        staged = self._outboxes
        self._outboxes = {}
        encoded: dict[int, object] = {}
        for dst_shard in sorted(staged):
            boundary_events = staged[dst_shard]
            if not boundary_events:
                continue
            payload = self._transport.encode(boundary_events)
            self.transport_batches += 1
            self.transport_messages += self._transport.units(
                boundary_events, payload)
            self.transport_bytes += len(
                pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
            encoded[dst_shard] = payload
        return encoded

    def collect(self) -> dict:
        """Everything observable, as picklable primitives."""
        hosts: dict[str, dict] = {}
        for name, host in self.network.hosts.items():
            gen = self.gens[name]
            hosts[name] = {
                "summary": host.stats.summary(),
                "deliveries": self.deliveries[name],
                "latency_samples": list(gen.latency.samples_ns),
                "sent": gen.sent,
                "received": gen.received,
                "rx_gbps": gen.rx_meter.mean_gbps(),
            }
        fired: list[tuple] = []
        skipped: list[tuple] = []
        if self.injector is not None:
            fired = [(when, type(fault).__name__,
                      getattr(fault, "host", None), fault.at_ns)
                     for when, fault in self.injector.fired]
            skipped = [(when, type(fault).__name__, reason)
                       for when, fault, reason in self.injector.skipped]
        return {
            "shard": self.shard_id,
            "hosts": hosts,
            "control": (self.plane.snapshot()
                        if self.plane is not None else None),
            "events": list(self.event_log.events),
            "fired_faults": fired,
            "skipped_faults": skipped,
            "events_scheduled": self.sim.events_scheduled,
            "timers_scheduled": self.sim.timers_scheduled,
            "events_cancelled": self.sim.events_cancelled,
            "frames_carried": self.network.fabric.frames_carried,
            "frames_dropped_at_rx": (
                self.network.fabric.frames_dropped_at_rx),
            "boundary_tx": self.boundary_tx,
            "boundary_frames_carried": self.boundary_frames_carried,
            "boundary_dropped_at_rx": self.boundary_dropped_at_rx,
            # Schedule/transport odometers: identical between workers=0
            # and workers=N, but legitimately different across schedule
            # modes (window count) and wire formats (messages/bytes) —
            # parity suites strip this key when comparing across those.
            "transport": {
                "mode": self._transport.name,
                "windows": self.windows_advanced,
                "batches": self.transport_batches,
                "messages": self.transport_messages,
                "bytes": self.transport_bytes,
            },
            "verify": self._verify_report(),
        }

    def _verify_report(self) -> dict[str, dict] | None:
        """Per-host ownership audits when the scenario ran verified.

        ``expect_drained=False``: a scenario may legitimately end with
        packets still queued in rings, so only double-releases, foreign
        frees, and conservation imbalance count as findings.
        """
        if not self.scenario.verify:
            return None
        reports: dict[str, dict] = {}
        for name, host in self.network.hosts.items():
            found = host.verifier.report(expect_drained=False)
            reports[name] = {
                "issues": [str(issue) for issue in found.issues],
                "audit": found.audit,
            }
        return reports


class ShardedRunResult:
    """Merged observables of a sharded run."""

    def __init__(self, plan: ShardPlan,
                 shard_results: list[dict]) -> None:
        self.plan = plan
        self.shard_results = shard_results
        self.hosts: dict[str, dict] = {}
        for result in shard_results:
            self.hosts.update(result["hosts"])
        #: Global control-event timeline: timestamp, then shard id, then
        #: each shard's own append order.
        self.events: list[ControlEvent] = merge_events(
            [result["events"] for result in shard_results])
        self.fired_faults: list[tuple] = sorted(
            fault for result in shard_results
            for fault in result["fired_faults"])
        #: Per-simulation-shard control-plane snapshots (None entries
        #: when the scenario ran without a control plane).
        self.controls: list[dict | None] = [
            result.get("control") for result in shard_results]
        #: Per-host ownership audits (None when Scenario(verify=False)).
        self.verify_reports: dict[str, dict] | None = None
        if any(result.get("verify") for result in shard_results):
            self.verify_reports = {}
            for result in shard_results:
                self.verify_reports.update(result["verify"] or {})

    @property
    def sent(self) -> int:
        return sum(host["sent"] for host in self.hosts.values())

    @property
    def received(self) -> int:
        return sum(host["received"] for host in self.hosts.values())

    def host_summary(self, name: str) -> dict[str, int]:
        return self.hosts[name]["summary"]

    def deliveries(self, name: str) -> list[tuple]:
        return self.hosts[name]["deliveries"]

    def totals(self) -> dict[str, int]:
        """Network-wide conservation totals, invariant in shard count."""
        keys = ("rx_packets", "tx_packets", "dropped_ring_full",
                "dropped_by_nf", "dropped_no_rule", "dropped_no_vm",
                "nic_rx_dropped", "nic_link_dropped", "lost_in_nf",
                "requeued_packets", "degraded_packets")
        out = {key: sum(host["summary"][key]
                        for host in self.hosts.values())
               for key in keys}
        out["sent"] = self.sent
        out["received"] = self.received
        out["frames_carried"] = sum(
            result["frames_carried"] + result["boundary_frames_carried"]
            for result in self.shard_results)
        out["frames_dropped_at_rx"] = sum(
            result["frames_dropped_at_rx"]
            + result["boundary_dropped_at_rx"]
            for result in self.shard_results)
        return out

    def transport_summary(self) -> dict[str, int | str | float]:
        """Aggregated schedule/transport odometers across all shards:
        total windows advanced, boundary batches, pipe messages the
        payloads amount to, serialized bytes, and messages per
        non-empty batch (the per-window pipe-traffic headline)."""
        windows = batches = messages = size = 0
        mode = "pickle"
        for result in self.shard_results:
            transport = result["transport"]
            mode = transport["mode"]
            windows += transport["windows"]
            batches += transport["batches"]
            messages += transport["messages"]
            size += transport["bytes"]
        return {
            "mode": mode,
            "windows": windows,
            "batches": batches,
            "messages": messages,
            "bytes": size,
            "messages_per_batch": messages / batches if batches else 0.0,
        }


class ShardedSimulator:
    """Run a :class:`Scenario` over one or more conservative shards.

    ``workers=0`` runs every shard in-process (deterministic, fully
    debuggable); ``workers=N`` spreads the shards over N
    ``multiprocessing`` workers with the identical round/boundary
    protocol.  ``shards=1`` is byte-identical to the monolithic kernel.

    ``adaptive_windows=True`` (default) schedules each shard against
    its inbound neighbors' clocks via the plan's per-pair lookahead
    matrix; ``False`` forces the classic global barrier every
    ``lookahead_ns``.  ``transport`` picks the boundary wire format:
    ``"columnar"`` (default, packed :class:`BoundaryBatch` columns) or
    ``"pickle"`` (one tuple per event).  All four combinations produce
    identical merged observables.
    """

    def __init__(self, scenario: Scenario, shards: int = 1,
                 workers: int = 0,
                 plan: ShardPlan | None = None,
                 adaptive_windows: bool = True,
                 transport: str = "columnar") -> None:
        scenario.validate()
        self.scenario = scenario
        if plan is None:
            plan = ShardPlan.compute(scenario.topology, shards)
        else:
            plan.validate_for(scenario.topology)
        self.plan = plan
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if transport not in _TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; "
                f"expected one of {sorted(_TRANSPORTS)}")
        self.workers = min(workers, len(plan.groups))
        self.adaptive_windows = adaptive_windows
        self.transport = transport
        lookaheads = plan.pair_lookaheads()
        if lookaheads is None:
            # Hand-built plan without a matrix: derive the true per-pair
            # bounds from the topology (always causally safe; the manual
            # lookahead_ns only governs the uniform schedule).
            lookaheads = scenario.topology.crossing_delays(plan.groups)
        self._pair_lookaheads = lookaheads

    # ------------------------------------------------------------------
    def run(self) -> ShardedRunResult:
        if self.workers == 0:
            shard_results = self._run_inline()
        else:
            shard_results = self._run_workers()
        return ShardedRunResult(self.plan, shard_results)

    # ------------------------------------------------------------------
    # Round schedule and boundary routing (shared by both modes)
    # ------------------------------------------------------------------
    def _windows(self) -> typing.Iterator[int]:
        """Global-barrier window edges, lazily.

        A generator rather than a list: a long run with a microsecond
        lookahead has millions of edges, and materializing them up
        front costs memory before the first event fires.
        """
        duration = self.scenario.duration_ns
        lookahead = self.plan.lookahead_ns
        if len(self.plan.groups) > 1 and lookahead is not None:
            yield from range(lookahead, duration, lookahead)
        yield duration

    def _rounds(self) -> typing.Iterator[dict[int, int]]:
        """Yield ``{shard: advance_to_ns}`` per conductor round.

        Uniform mode: every shard advances to every global window edge
        (the classic barrier).  Adaptive mode: each shard's bound is
        the minimum over its inbound crossing pairs of the source
        shard's clock plus that pair's lookahead, all bounds computed
        from the clocks at the *start* of the round (events a source
        captures inside the round arrive no earlier than its old clock
        plus the pair lookahead, so every target handed out stays
        causally safe).  A shard only moves when it can take at least
        its smallest inbound lookahead in one step — without that
        quantum, fast neighbors would drag slow pairs through
        micro-windows — or when it can finish the run.  Shards with no
        inbound pairs finish in the first round.  Uniform-delay
        topologies yield exactly the global-barrier edges.
        """
        count = len(self.plan.groups)
        if not self.adaptive_windows or count == 1 \
                or not self._pair_lookaheads:
            for upto in self._windows():
                yield {shard: upto for shard in range(count)}
            return
        duration = self.scenario.duration_ns
        inbound: dict[int, list[tuple[int, int]]] = {}
        for (src, dst), lookahead in sorted(self._pair_lookaheads.items()):
            inbound.setdefault(dst, []).append((src, lookahead))
        quantum = {dst: min(lookahead for _, lookahead in pairs)
                   for dst, pairs in inbound.items()}
        clocks = [0] * count
        while min(clocks) < duration:
            targets: dict[int, int] = {}
            for shard in range(count):
                now = clocks[shard]
                if now >= duration:
                    continue
                pairs = inbound.get(shard)
                bound = duration if not pairs else min(
                    clocks[src] + lookahead for src, lookahead in pairs)
                target = min(bound, duration)
                if target <= now:
                    continue
                if target >= duration or target - now >= quantum[shard]:
                    targets[shard] = target
            if not targets:  # pragma: no cover - the minimum-clock
                # shard can always take a full quantum, so the schedule
                # cannot stall; this guards the invariant.
                raise RuntimeError("adaptive window schedule stalled")
            for shard, upto in targets.items():
                clocks[shard] = upto
            yield targets

    def _route(self, outboxes: dict[int, dict[int, object]],
               pending: dict[int, list[list[tuple[int, object]]]]) -> None:
        """Stage one round's encoded payloads for their destinations.

        ``outboxes`` maps source shard -> {destination shard: payload}.
        Each destination receives the round's payloads as one *group*
        (source-sorted); groups queue up until the destination's next
        advance, which decodes and merges them in round order.
        """
        destinations = {dst for box in outboxes.values() for dst in box}
        for dst in sorted(destinations):
            group = [(src, outboxes[src][dst])
                     for src in sorted(outboxes) if dst in outboxes[src]]
            pending.setdefault(dst, []).append(group)

    # ------------------------------------------------------------------
    # workers=0: every shard in this process
    # ------------------------------------------------------------------
    def _run_inline(self) -> list[dict]:
        runtimes = [ShardRuntime(self.scenario, self.plan, index,
                                 transport=self.transport)
                    for index in range(len(self.plan.groups))]
        pending: dict[int, list[list[tuple[int, object]]]] = {}
        for targets in self._rounds():
            outboxes: dict[int, dict[int, object]] = {}
            for shard_id in sorted(targets):
                runtime = runtimes[shard_id]
                for group in pending.pop(shard_id, ()):
                    runtime.deliver(group)
                runtime.advance(targets[shard_id])
                captured = runtime.take_outbox()
                if captured:
                    outboxes[shard_id] = captured
            self._route(outboxes, pending)
        return [runtime.collect() for runtime in runtimes]

    # ------------------------------------------------------------------
    # workers=N: shards spread over processes, same protocol
    # ------------------------------------------------------------------
    def _run_workers(self) -> list[dict]:
        import multiprocessing

        count = len(self.plan.groups)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context("spawn")
        assignment = {worker: [index for index in range(count)
                               if index % self.workers == worker]
                      for worker in range(self.workers)}
        pipes: dict[int, typing.Any] = {}
        procs: dict[int, typing.Any] = {}
        for worker, shard_ids in assignment.items():
            parent, child = context.Pipe()
            proc = context.Process(
                target=_shard_worker,
                args=(child, self.scenario, self.plan, shard_ids,
                      self.transport),
                daemon=True)
            proc.start()
            child.close()
            pipes[worker] = parent
            procs[worker] = proc
        try:
            pending: dict[int, list[list[tuple[int, object]]]] = {}
            for targets in self._rounds():
                # Only workers owning an advancing shard hear about the
                # round; each message carries the shard's target and the
                # delivery groups queued since its last advance.
                by_worker: dict[int, dict[int, tuple]] = {}
                for shard_id in sorted(targets):
                    orders = by_worker.setdefault(
                        shard_id % self.workers, {})
                    orders[shard_id] = (targets[shard_id],
                                        pending.pop(shard_id, []))
                for worker in sorted(by_worker):
                    pipes[worker].send(("advance", by_worker[worker]))
                outboxes: dict[int, dict[int, object]] = {}
                for worker in sorted(by_worker):
                    outboxes.update(self._receive(pipes[worker]))
                self._route(outboxes, pending)
            for worker in assignment:
                pipes[worker].send(("finish",))
            results: dict[int, dict] = {}
            for worker in assignment:
                results.update(self._receive(pipes[worker]))
            return [results[index] for index in range(count)]
        finally:
            for pipe in pipes.values():
                pipe.close()
            for proc in procs.values():
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()

    @staticmethod
    def _receive(pipe: typing.Any) -> typing.Any:
        kind, payload = pipe.recv()
        if kind == "error":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        return payload


def _shard_worker(conn: typing.Any, scenario: Scenario, plan: ShardPlan,
                  shard_ids: list[int],
                  transport: str = "columnar") -> None:
    """Worker process: owns one or more shards, speaks the pipe protocol.

    Messages in: ``("advance", {shard: (until_ns, delivery_groups)})``
    and ``("finish",)``.  Replies: ``("ok", {shard: {dst: payload}})``,
    ``("result", {shard: collected})``, or ``("error", traceback)``.
    Boundary payloads stay encoded end to end — the conductor routes
    them without decoding; only the destination shard unpacks.
    """
    try:
        runtimes = {shard_id: ShardRuntime(scenario, plan, shard_id,
                                           transport=transport)
                    for shard_id in shard_ids}
        while True:
            message = conn.recv()
            if message[0] == "advance":
                _kind, orders = message
                outboxes: dict[int, dict[int, object]] = {}
                for shard_id in sorted(orders):
                    until_ns, groups = orders[shard_id]
                    runtime = runtimes[shard_id]
                    for group in groups:
                        runtime.deliver(group)
                    runtime.advance(until_ns)
                    captured = runtime.take_outbox()
                    if captured:
                        outboxes[shard_id] = captured
                conn.send(("ok", outboxes))
            elif message[0] == "finish":
                conn.send(("result",
                           {shard_id: runtime.collect()
                            for shard_id, runtime in runtimes.items()}))
                return
            else:
                raise ValueError(f"unknown message {message[0]!r}")
    except BaseException:  # propagate the real traceback to the parent
        import traceback
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()
