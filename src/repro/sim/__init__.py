"""Discrete-event simulation kernel.

A small, deterministic, generator-based event kernel in the style of SimPy,
specialised for this project:

- the clock is an **integer nanosecond** counter (no float drift),
- events fired at the same timestamp are processed in FIFO schedule order,
- processes are plain generator functions that ``yield`` events.

Typical use::

    from repro.sim import Simulator, US

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(5 * US)
        return "done"

    proc = sim.process(worker(sim))
    sim.run()
    assert proc.value == "done"
"""

from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Process, Timeout
from repro.sim.simulator import Simulator
from repro.sim.store import Store
from repro.sim.units import MS, NS, S, US, ns_to_seconds, seconds_to_ns

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "MS",
    "NS",
    "Process",
    "S",
    "Simulator",
    "Store",
    "Timeout",
    "US",
    "ns_to_seconds",
    "seconds_to_ns",
]
