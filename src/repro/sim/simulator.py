"""The event loop: an integer-nanosecond discrete-event scheduler."""

from __future__ import annotations

import heapq
import typing

from repro.sim.events import AllOf, AnyOf, Event, Process, Timeout


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class Simulator:
    """Deterministic discrete-event scheduler.

    Events scheduled for the same timestamp fire in the order they were
    scheduled (FIFO tie-break via a monotonically increasing sequence
    number), which keeps runs reproducible.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[tuple[int, int, Event]] = []
        self._sequence = 0
        self._active_process: Process | None = None
        self.active_event: Event | None = None

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: int, value: typing.Any = None) -> Timeout:
        """Create an event firing ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        return AllOf(self, events)

    @property
    def active_process(self) -> Process | None:
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def events_scheduled(self) -> int:
        """Total events ever enqueued — the kernel-work odometer.

        Batching ablations divide this by packets moved to get "kernel
        events per packet", the simulator-side analogue of per-packet
        event-dispatch overhead in the real NF Manager.
        """
        return self._sequence

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _enqueue(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        heapq.heappush(self._queue,
                       (self.now + int(delay), self._sequence, event))
        self._sequence += 1

    def schedule(self, delay: int,
                 callback: typing.Callable[[], None]) -> Event:
        """Run ``callback()`` after ``delay`` ns.  Returns the timer event."""
        timer = self.timeout(delay)
        timer.callbacks.append(lambda _event: callback())
        return timer

    def peek(self) -> int | None:
        """Timestamp of the next event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def _step(self) -> None:
        if not self._queue:
            raise EmptySchedule()
        when, _seq, event = heapq.heappop(self._queue)
        if when < self.now:
            raise AssertionError("time went backwards")
        self.now = when
        self.active_event = event
        try:
            event._run_callbacks()
        finally:
            self.active_event = None

    def run(self, until: int | Event | None = None) -> typing.Any:
        """Run the simulation.

        ``until`` may be:

        - ``None``: run until no events remain,
        - an ``int``: run until the clock reaches that timestamp (events at
          exactly ``until`` do not fire; ``now`` is left at ``until``),
        - an :class:`Event`: run until that event has been processed and
          return its value.
        """
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                try:
                    self._step()
                except EmptySchedule:
                    raise RuntimeError(
                        "simulation ran out of events before the awaited "
                        "event triggered") from None
            return sentinel.value
        deadline = None if until is None else int(until)
        if deadline is not None and deadline < self.now:
            raise ValueError(f"until={deadline} is in the past "
                             f"(now={self.now})")
        while self._queue:
            if deadline is not None and self._queue[0][0] >= deadline:
                self.now = deadline
                return None
            self._step()
        if deadline is not None:
            self.now = deadline
        return None
