"""The event loop: an integer-nanosecond discrete-event scheduler.

Two scheduling lanes share one heap and one sequence counter:

- the **event lane** pushes ``(when, seq, Event)`` and dispatches through
  :meth:`Event._run_callbacks`;
- the **timer lane** (:meth:`Simulator.call_later`, the ``rte_timer``
  analogue) pushes a bare ``(when, seq, fn, arg)`` with no Event object
  at all — the fast path for poll wakeups, heartbeats, and deferred
  callbacks that nobody ever waits on.

Entries never compare past the sequence number (it is unique), so the
mixed tuple arities are safe to co-exist in one heap.  Because both lanes
consume the same sequence counter, ``events_scheduled`` remains an honest
odometer of kernel work and timestamp tie-breaks stay globally FIFO.
"""

from __future__ import annotations

import heapq
import typing

from repro.sim.events import _PENDING, AllOf, AnyOf, Event, Process, Timeout


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


def _invoke(callback: typing.Callable[[], None]) -> None:
    callback()


class Simulator:
    """Deterministic discrete-event scheduler.

    Events scheduled for the same timestamp fire in the order they were
    scheduled (FIFO tie-break via a monotonically increasing sequence
    number), which keeps runs reproducible.
    """

    # One-shot wakeup events kept for reuse; sized to comfortably cover
    # the wakeups in flight at any instant (starts, interrupts, stale
    # targets, sleeps) without pinning memory.
    _EVENT_POOL_LIMIT = 128

    def __init__(self) -> None:
        self.now: int = 0
        # Mixed arity: (when, seq, Event) | (when, seq, fn, arg).
        self._queue: list[tuple] = []
        self._sequence = 0
        self._active_process: Process | None = None
        self.active_event: Event | None = None
        #: Bare timers pushed through :meth:`call_later` (subset of
        #: :attr:`events_scheduled`).
        self.timers_scheduled = 0
        #: Lazily-cancelled events discarded unprocessed by :meth:`_step`.
        self.events_cancelled = 0
        self._event_pool: list[Event] = []

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: int, value: typing.Any = None) -> Timeout:
        """Create an event firing ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: int) -> Event:
        """A fire-and-forget delay drawn from the kernel free list.

        Semantically ``timeout(delay)`` for the caller that only ever
        ``yield``\\ s it: the returned event is *recycled* after its
        callbacks run, so per-packet work waits allocate nothing in
        steady state.  Do **not** retain the event past its firing (use
        :meth:`timeout` when the event object itself matters, e.g. to
        read a value or race it in a condition).
        """
        if delay < 0:
            raise ValueError(f"negative sleep delay: {delay}")
        # _acquire_event inlined: sleep() backs every per-burst work wait.
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.callbacks = []
            event._exception = None
            event._defused = False
            event._cancelled = False
        else:
            event = Event(self)
            event._recycle = True
        event._value = None
        heapq.heappush(self._queue,
                       (self.now + int(delay), self._sequence, event))
        self._sequence += 1
        return event

    def process(self, generator: typing.Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        return AllOf(self, events)

    @property
    def active_process(self) -> Process | None:
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def events_scheduled(self) -> int:
        """Total heap entries ever enqueued — the kernel-work odometer.

        Counts both lanes (Event objects *and* bare ``call_later``
        timers; the latter are also broken out in
        :attr:`timers_scheduled`).  Batching ablations divide this by
        packets moved to get "kernel events per packet", the
        simulator-side analogue of per-packet event-dispatch overhead in
        the real NF Manager.
        """
        return self._sequence

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _enqueue(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        heapq.heappush(self._queue,
                       (self.now + int(delay), self._sequence, event))
        self._sequence += 1

    def call_later(self, delay: int, fn: typing.Callable[[typing.Any], None],
                   arg: typing.Any = None) -> None:
        """Run ``fn(arg)`` after ``delay`` ns — the bare timer lane.

        The ``rte_timer`` analogue: no Event object, no callback list,
        just a ``(when, seq, fn, arg)`` heap entry.  Use it for wakeups
        nobody waits on (poll loops, heartbeats, deferred hand-offs); use
        :meth:`timeout` when the result must be awaitable.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        heapq.heappush(self._queue,
                       (self.now + int(delay), self._sequence, fn, arg))
        self._sequence += 1
        self.timers_scheduled += 1

    def schedule(self, delay: int,
                 callback: typing.Callable[[], None]) -> None:
        """Run ``callback()`` after ``delay`` ns (timer-lane convenience)."""
        self.call_later(delay, _invoke, callback)

    def peek(self) -> int | None:
        """Timestamp of the next event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    # ------------------------------------------------------------------
    # Free-list wakeups
    # ------------------------------------------------------------------
    def _acquire_event(self) -> Event:
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.callbacks = []
            event._value = _PENDING
            event._exception = None
            event._defused = False
            event._cancelled = False
            return event
        event = Event(self)
        event._recycle = True
        return event

    def _release_event(self, event: Event) -> None:
        if len(self._event_pool) < self._EVENT_POOL_LIMIT:
            self._event_pool.append(event)

    def _wakeup(self, value: typing.Any, exception: BaseException | None,
                callback: typing.Callable[[Event], None]) -> None:
        """Enqueue an immediately-firing one-shot event from the free list.

        Backs process starts, interrupts, and already-processed-target
        resumes; the event is recycled after dispatch, so these allocate
        nothing in steady state.
        """
        event = self._acquire_event()
        event._value = value
        event._exception = exception
        if exception is not None:
            event._defused = True
        event.callbacks.append(callback)
        heapq.heappush(self._queue, (self.now, self._sequence, event))
        self._sequence += 1

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def _step(self) -> None:
        queue = self._queue
        if not queue:
            raise EmptySchedule()
        entry = heapq.heappop(queue)
        when = entry[0]
        if when < self.now:
            raise AssertionError("time went backwards")
        self.now = when
        if len(entry) == 4:
            # Bare timer lane: dispatch fn(arg) with no Event machinery.
            entry[2](entry[3])
            return
        event = entry[2]
        callbacks = event.callbacks
        if event._cancelled and not callbacks:
            # Lazily-cancelled and nobody re-subscribed: discard.
            self.events_cancelled += 1
            return
        # Event._run_callbacks inlined: one dispatch per event lane entry.
        self.active_event = event
        event.callbacks = None
        try:
            for callback in callbacks:
                callback(event)
            if event._exception is not None and not event._defused:
                raise event._exception
        finally:
            self.active_event = None
        if event._recycle:
            pool = self._event_pool
            if len(pool) < self._EVENT_POOL_LIMIT:
                pool.append(event)

    def run(self, until: int | Event | None = None) -> typing.Any:
        """Run the simulation.

        ``until`` may be:

        - ``None``: run until no events remain,
        - an ``int``: run until the clock reaches that timestamp (events at
          exactly ``until`` do not fire; ``now`` is left at ``until``),
        - an :class:`Event`: run until that event has been processed and
          return its value.
        """
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                try:
                    self._step()
                except EmptySchedule:
                    raise RuntimeError(
                        "simulation ran out of events before the awaited "
                        "event triggered") from None
            return sentinel.value
        deadline = None if until is None else int(until)
        if deadline is not None and deadline < self.now:
            raise ValueError(f"until={deadline} is in the past "
                             f"(now={self.now})")
        while self._queue:
            if deadline is not None and self._queue[0][0] >= deadline:
                self.now = deadline
                return None
            self._step()
        if deadline is not None:
            self.now = deadline
        return None
