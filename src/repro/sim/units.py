"""Time units for the integer-nanosecond simulation clock.

All simulator timestamps and delays are integers counted in nanoseconds.
These constants make call sites read naturally::

    yield sim.timeout(30 * NS)     # one flow-table lookup
    yield sim.timeout(31 * MS)     # one SDN controller round trip
"""

NS = 1
US = 1_000
MS = 1_000_000
S = 1_000_000_000


def seconds_to_ns(seconds: float) -> int:
    """Convert (possibly fractional) seconds to integer nanoseconds."""
    return round(seconds * S)


def ns_to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns / S
