"""Event primitives for the simulation kernel.

The kernel is callback-based at the bottom (:class:`Event`) with a
generator-based process layer on top (:class:`Process`).  A process is a
generator that yields events; when a yielded event fires, the process is
resumed with the event's value (or the event's exception is thrown into it).

Hot-path notes: every event class carries ``__slots__`` (millions of
timeouts and wakeups are created on the Fig. 7 workloads), one-shot
process wakeups are drawn from the simulator's free list
(:meth:`Simulator._wakeup`), and events abandoned by an interrupt are
lazily cancelled so the scheduler can discard them unprocessed.
"""

from __future__ import annotations

import typing
from heapq import heappush as _heappush

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence with a value and subscriber callbacks.

    Lifecycle: *pending* → *triggered* (scheduled into the event queue) →
    *processed* (callbacks ran).  An event may succeed with a value or fail
    with an exception; failing events propagate their exception into any
    process that waits on them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_defused",
                 "_cancelled", "_recycle")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.callbacks: list[typing.Callable[[Event], None]] | None = []
        self._value: typing.Any = _PENDING
        self._exception: BaseException | None = None
        # Failures must either be waited on or explicitly defused, mirroring
        # "errors should never pass silently".
        self._defused = False
        # Lazy cancellation: a triggered event nobody listens to anymore
        # (e.g. a deadline abandoned by an interrupt) is skipped, not run.
        self._cancelled = False
        # Kernel-internal events return to the simulator free list after
        # their callbacks run; user-visible events never do.
        self._recycle = False

    @property
    def triggered(self) -> bool:
        """True once the event has a result and is scheduled (or processed)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> typing.Any:
        """The event's value (or raises its failure exception)."""
        if self._value is _PENDING:
            raise RuntimeError("event is not yet triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: typing.Any = None) -> Event:
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._value = value
        # Inlined Simulator._enqueue(self): succeed() fires once per
        # store hand-off, per packet, per stage — the hottest call in
        # the kernel.
        sim = self.sim
        _heappush(sim._queue, (sim.now, sim._sequence, self))
        sim._sequence += 1
        return self

    def fail(self, exception: BaseException) -> Event:
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._value = None
        self._exception = exception
        self.sim._enqueue(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel won't re-raise it."""
        self._defused = True

    def cancel(self) -> None:
        """Lazily cancel a triggered event.

        The heap entry stays put; when popped, the scheduler discards it
        *if no callbacks are subscribed at that point* (subscribing again
        effectively un-cancels).  This is how abandoned deadlines avoid
        being dispatched long after anyone cares.
        """
        self._cancelled = True

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)
        if self._exception is not None and not self._defused:
            raise self._exception

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: Simulator, delay: int,
                 value: typing.Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = int(delay)
        self._value = value
        sim._enqueue(self, delay=self.delay)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> typing.Any:
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator and drives it by subscribing to yielded events.

    The process *is* an event: it triggers when the generator returns
    (succeeding with the return value) or raises (failing with the
    exception).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, sim: Simulator,
                 generator: typing.Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self._target: Event | None = None
        # Kick off the process via an immediately-firing recycled event.
        sim._wakeup(None, None, self._resume)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise RuntimeError("cannot interrupt a finished process")
        if (self._target is not None
                and self._target is self.sim.active_event):
            raise RuntimeError("a process cannot interrupt itself")
        self.sim._wakeup(None, Interrupt(cause), self._interrupted)

    def _interrupted(self, event: Event) -> None:
        """Deliver an interrupt: first detach from the abandoned target so
        its later firing cannot mis-resume this process."""
        if self.triggered:
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if not target.callbacks and isinstance(target, Timeout):
                # Nobody is left waiting: let the scheduler discard the
                # entry instead of dispatching a dead timeout (heap-bloat
                # fix for interrupted ring waits and abandoned deadlines).
                target._cancelled = True
        self._resume(event)

    def _resume(self, event: Event) -> None:
        # A stale wakeup: the process was interrupted and already moved on,
        # or finished.  Ignore the original target's completion.
        if self._value is not _PENDING:
            return
        sim = self.sim
        sim._active_process = self
        try:
            if event._exception is None:
                next_event = self._generator.send(event._value)
            else:
                # The waited-on event failed (or we were interrupted); the
                # failure is now the process's problem.
                event._defused = True
                next_event = self._generator.throw(event._exception)
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._target = None
            self.fail(exc)
            return
        finally:
            sim._active_process = None

        if isinstance(next_event, Event):
            if next_event.sim is not sim:
                raise RuntimeError("process yielded an event from another "
                                   "simulator")
            self._target = next_event
            callbacks = next_event.callbacks
            if callbacks is None:
                # Already processed: resume immediately at the current time.
                sim._wakeup(next_event._value, next_event._exception,
                            self._resume)
            else:
                callbacks.append(self._resume)
            return
        kind = type(next_event).__name__
        error = RuntimeError(
            f"process yielded a non-event ({kind}); yield sim.timeout() "
            "or another Event")
        try:
            self._generator.throw(error)
        except BaseException as exc:
            self.fail(exc)
            return
        # The generator swallowed the error and kept yielding; that is
        # a programming error we refuse to paper over.
        self.fail(error)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events.

    A constituent counts as complete once it is *processed* (callbacks
    ran) — being merely scheduled (e.g. a fresh Timeout, which is
    triggered at creation) does not count.
    """

    __slots__ = ("events", "_completed")

    def __init__(self, sim: Simulator,
                 events: typing.Sequence[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise RuntimeError("condition mixes events from different "
                                   "simulators")
        self._completed = 0
        for event in self.events:
            if event.callbacks is None:
                if event._exception is not None:
                    if not self.triggered:
                        self.fail(event._exception)
                else:
                    self._completed += 1
            else:
                event.callbacks.append(self._observe)
        if not self.triggered and self._satisfied():
            self.succeed(self._collect())
        if self.triggered:
            self._detach_pending_timeouts()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            if event._exception is not None:
                event.defuse()
            return
        if event._exception is not None:
            event.defuse()
            self.fail(event._exception)
            self._detach_pending_timeouts()
            return
        self._completed += 1
        if self._satisfied():
            self.succeed(self._collect())
            self._detach_pending_timeouts()

    def _detach_pending_timeouts(self) -> None:
        """Stop watching timeouts that can no longer matter.

        Deadline timeouts raced against an RPC reply (the control-plane
        ``any_of([reply, deadline])`` pattern) would otherwise sit in the
        heap and be dispatched long after the condition fired.  Only
        :class:`Timeout` constituents are pruned: they can never fail, so
        dropping our subscription cannot silence an un-defused failure.
        """
        for event in self.events:
            callbacks = event.callbacks
            if callbacks is not None and isinstance(event, Timeout):
                try:
                    callbacks.remove(self._observe)
                except ValueError:
                    continue
                if not callbacks:
                    event._cancelled = True

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict[Event, typing.Any]:
        """Values of constituents that have completed successfully."""
        return {event: event._value for event in self.events
                if event.callbacks is None and event._exception is None}


class AnyOf(_Condition):
    """Triggers as soon as any constituent event is processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._completed >= 1 or not self.events


class AllOf(_Condition):
    """Triggers once all constituent events are processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._completed >= len(self.events)
