"""Seeded random-stream helpers for reproducible experiments.

Every stochastic component takes an explicit stream so that experiments are
deterministic given a seed, and independent components do not perturb each
other's draws when one of them is reconfigured.

numpy is optional: with it installed each named stream is a
``np.random.Generator`` (PCG64) — the reference stream the golden suites
pin.  Without it (or with ``SDNFV_NO_NUMPY`` set) streams fall back to
:class:`_FallbackGenerator`, a stdlib ``random.Random``-backed shim with
the same method surface.  Fallback streams are deterministic per seed and
name but draw *different values* than PCG64, so numpy-vs-fallback parity
only holds for workloads that draw nothing (uniform pacing, zero jitter).
"""

from __future__ import annotations

import typing
from random import Random

from repro._compat import HAVE_NUMPY, numpy as np


class RandomStreams:
    """A family of independent, named random generators from one seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, typing.Any] = {}

    def stream(self, name: str) -> typing.Any:
        """Return (creating on first use) the generator for ``name``."""
        if name not in self._streams:
            if HAVE_NUMPY:
                child_seed = np.random.SeedSequence(
                    [self.seed, _stable_hash(name)])
                self._streams[name] = np.random.default_rng(child_seed)
            else:
                self._streams[name] = _FallbackGenerator(
                    (self.seed << 64) | _stable_hash(name))
        return self._streams[name]


class _FallbackGenerator:
    """The subset of ``np.random.Generator`` the simulation draws from,
    backed by the stdlib Mersenne Twister.  Same signatures, same value
    ranges, different stream values."""

    def __init__(self, seed: int) -> None:
        self._random = Random(seed)

    def integers(self, low: int, high: int | None = None) -> int:
        """Half-open ``[low, high)`` like the numpy default."""
        if high is None:
            low, high = 0, low
        return self._random.randrange(low, high)

    def random(self) -> float:
        return self._random.random()

    def exponential(self, scale: float = 1.0) -> float:
        return self._random.expovariate(1.0 / scale)

    def zipf(self, a: float) -> int:
        # Rejection sampler (Devroye) — the same algorithm family numpy
        # uses, so tail behaviour matches even though values differ.
        b = 2.0 ** (a - 1.0)
        while True:
            u = 1.0 - self._random.random()
            v = self._random.random()
            x = int(u ** (-1.0 / (a - 1.0)))
            t = (1.0 + 1.0 / x) ** (a - 1.0)
            if v * x * (t - 1.0) / (b - 1.0) <= t / b:
                return x

    def choice(self, options: typing.Sequence) -> typing.Any:
        return options[self._random.randrange(len(options))]

    def permutation(self, n: int) -> list[int]:
        order = list(range(n))
        self._random.shuffle(order)
        return order


def _stable_hash(name: str) -> int:
    """A deterministic (non-salted) 63-bit hash of a string."""
    value = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode():
        value ^= byte
        value = (value * 1099511628211) % (1 << 63)
    return value


def exponential_ns(rng: typing.Any, mean: float) -> int:
    """Draw an exponential interarrival time in integer nanoseconds (>=1).

    ``mean`` is the distribution mean in ns — a real-valued *parameter*
    (rates rarely divide evenly), which is why it does not carry the
    ``_ns`` integer-nanosecond suffix; the draw itself is quantized.
    """
    return max(1, round(rng.exponential(mean)))
