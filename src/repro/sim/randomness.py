"""Seeded random-stream helpers for reproducible experiments.

Every stochastic component takes an explicit stream so that experiments are
deterministic given a seed, and independent components do not perturb each
other's draws when one of them is reconfigured.
"""

from __future__ import annotations

import numpy as np


class RandomStreams:
    """A family of independent, named random generators from one seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if name not in self._streams:
            child_seed = np.random.SeedSequence(
                [self.seed, _stable_hash(name)])
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]


def _stable_hash(name: str) -> int:
    """A deterministic (non-salted) 63-bit hash of a string."""
    value = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode():
        value ^= byte
        value = (value * 1099511628211) % (1 << 63)
    return value


def exponential_ns(rng: np.random.Generator, mean: float) -> int:
    """Draw an exponential interarrival time in integer nanoseconds (>=1).

    ``mean`` is the distribution mean in ns — a real-valued *parameter*
    (rates rarely divide evenly), which is why it does not carry the
    ``_ns`` integer-nanosecond suffix; the draw itself is quantized.
    """
    return max(1, round(rng.exponential(mean)))
