"""Struct-of-arrays packet batches for the columnar burst kernel.

The object pipeline (PR 2/3) moves one ``PacketDescriptor`` per packet
through the rings; every hot-loop touch is a Python attribute access.
A :class:`PacketBatch` instead represents one burst-sized run of packets
that share a scope and (after an NF pass) a verdict, keeping the
per-packet facts as parallel *columns*:

- packed five-tuple keys (the PR 3 cached ``FiveTuple._packed_key``),
- FNV hash buckets,
- wire lengths,
- arrival timestamps (one scalar broadcast — a batch is born from a
  single RX burst and never merges across bursts),
- per-packet flags (bit 0: pool-backed).

Columns are built lazily from the row store (``batch.packets``) on
first access — numpy arrays when available, stdlib ``array`` otherwise,
with identical element values either way.  Rich ``Packet`` objects are
only rematerialized (``materialize()``) when an NF or a slow path
declares it needs them; the SIM006 lint rule polices that boundary for
functions marked with :func:`columnar_kernel`.

Batch discipline that keeps golden parity exact:

- a batch holds at most one RX burst (``burst_size`` packets);
- batches split FIFO-prefix-wise (ring capacity, dequeue budgets) and
  never merge or reorder;
- scalar fields (``scope``, ``verdict``, ``vm_priority``,
  ``ingress_at``) apply to every row.
"""

from __future__ import annotations

import typing
from array import array

from repro._compat import HAVE_NUMPY, numpy as np
from repro.net.flow import FiveTuple

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet

FLAG_POOLED = 0x01

_T = typing.TypeVar("_T", bound=typing.Callable)


def columnar_kernel(func: _T) -> _T:
    """Mark ``func`` as a columnar kernel.

    Kernels promise to work on batch columns and scalars only — no
    per-packet Python-object allocation and no per-row iteration of the
    packet store.  The marker is what the SIM006 lint rule keys on.
    """
    func.__columnar_kernel__ = True  # type: ignore[attr-defined]
    return func


class PacketBatch:
    """One contiguous run of packets moving through the columnar path."""

    __slots__ = ("packets", "scope", "ingress_at", "verdict", "vm_priority",
                 "total_bytes", "_first_flow", "_uniform",
                 "_sizes", "_keys", "_buckets", "_flags")

    def __init__(self, scope: str, ingress_at: int = 0) -> None:
        self.packets: list[Packet] = []
        self.scope = scope
        self.ingress_at = ingress_at
        self.verdict = None
        self.vm_priority = 0
        self.total_bytes = 0
        self._first_flow: FiveTuple | None = None
        self._uniform = True
        self._sizes = None
        self._keys = None
        self._buckets = None
        self._flags = None

    # ------------------------------------------------------------------
    # row store
    # ------------------------------------------------------------------

    def append(self, packet: Packet) -> None:
        """Add one packet (RX build loop — inherently per-row)."""
        self.packets.append(packet)
        self.total_bytes += packet.size
        flow = packet.flow
        if self._first_flow is None:
            self._first_flow = flow
        elif self._uniform and flow is not self._first_flow \
                and flow != self._first_flow:
            self._uniform = False
        self._sizes = self._keys = self._buckets = self._flags = None

    @property
    def count(self) -> int:
        return len(self.packets)

    def __len__(self) -> int:
        return len(self.packets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PacketBatch(scope={self.scope!r} n={len(self.packets)} "
                f"bytes={self.total_bytes} uniform={self._uniform})")

    @property
    def is_uniform(self) -> bool:
        """True when every row belongs to one flow."""
        return self._uniform

    @property
    def uniform_flow(self) -> FiveTuple | None:
        """The single flow of a uniform batch (``None`` when mixed)."""
        return self._first_flow if self._uniform else None

    def distinct_flows(self) -> list[FiveTuple]:
        """Distinct flows in first-seen arrival order.

        This is the burst-level dedup behind "one plan resolution per
        distinct flow per burst": classification walks this list, not
        the row store.
        """
        if self._uniform:
            return [] if self._first_flow is None else [self._first_flow]
        seen: dict[FiveTuple, None] = {}
        for packet in self.packets:
            seen.setdefault(packet.flow, None)
        return list(seen)

    def flow_runs(self) -> list[tuple[FiveTuple, int]]:
        """``(flow, run_length)`` for consecutive same-flow runs."""
        runs: list[tuple[FiveTuple, int]] = []
        if self._uniform:
            if self._first_flow is not None:
                runs.append((self._first_flow, len(self.packets)))
            return runs
        current: FiveTuple | None = None
        length = 0
        for packet in self.packets:
            flow = packet.flow
            if current is not None and (flow is current or flow == current):
                length += 1
                continue
            if current is not None:
                runs.append((current, length))
            current, length = flow, 1
        if current is not None:
            runs.append((current, length))
        return runs

    def materialize(self) -> list[Packet]:
        """Hand back the rich per-packet objects (the slow-path escape
        hatch — calling this inside a columnar kernel is a SIM006
        violation)."""
        return self.packets

    # ------------------------------------------------------------------
    # columns (lazy; numpy when available, stdlib ``array`` otherwise)
    # ------------------------------------------------------------------

    def _build_columns(self) -> None:
        sizes = array("q")
        keys: list[tuple[int, int, int, int, int]] = []
        flags = array("B")
        for packet in self.packets:
            sizes.append(packet.size)
            keys.append(packet.flow._packed_key())
            flags.append(FLAG_POOLED if packet.pool is not None else 0)
        if HAVE_NUMPY:
            self._sizes = np.asarray(sizes, dtype=np.int64)
            self._keys = np.asarray(keys, dtype=np.int64).reshape(-1, 5)
            self._flags = np.asarray(flags, dtype=np.uint8)
        else:
            self._sizes = sizes
            self._keys = keys
            self._flags = flags

    def sizes(self):
        """Wire lengths column (int64)."""
        if self._sizes is None:
            self._build_columns()
        return self._sizes

    def packed_keys(self):
        """Packed five-tuple column: rows of
        ``(src_ip, dst_ip, protocol, src_port, dst_port)`` as ints."""
        if self._keys is None:
            self._build_columns()
        return self._keys

    def flags(self):
        """Per-packet flag bits column (uint8)."""
        if self._flags is None:
            self._build_columns()
        return self._flags

    def arrivals(self):
        """Arrival-timestamp column — the scalar ``ingress_at``
        broadcast (a batch is born from one RX burst)."""
        n = len(self.packets)
        if HAVE_NUMPY:
            return np.full(n, self.ingress_at, dtype=np.int64)
        return array("q", [self.ingress_at]) * n

    @columnar_kernel
    def hash_buckets(self, buckets: int):
        """FNV-1a hash-bucket column over the packed keys, identical to
        per-packet ``FiveTuple.hash_bucket`` either way."""
        if self._buckets is None or self._buckets[1] != buckets:
            column = self._hash_column(buckets)
            self._buckets = (column, buckets)
        return self._buckets[0]

    def _hash_column(self, buckets: int):
        keys = self.packed_keys()
        if HAVE_NUMPY:
            mask = (1 << 63) - 1
            value = np.full(len(self.packets), 1469598103934665603,
                            dtype=np.uint64)
            prime = np.uint64(1099511628211)
            rows = keys.astype(np.uint64)
            for column in range(rows.shape[1]):
                value = ((value ^ rows[:, column]) * prime) & np.uint64(mask)
            return (value % np.uint64(buckets)).astype(np.int64)
        column = array("q")
        for key in keys:
            value = 1469598103934665603
            for part in key:
                value = ((value ^ part) * 1099511628211) % (1 << 63)
            column.append(value % buckets)
        return column

    # ------------------------------------------------------------------
    # structural ops
    # ------------------------------------------------------------------

    @columnar_kernel
    def split(self, k: int) -> PacketBatch:
        """FIFO split: return a new batch holding the first ``k`` rows;
        this batch keeps the tail.  Columns are dropped and rebuilt
        lazily on the halves."""
        head = PacketBatch(self.scope, self.ingress_at)
        head.verdict = self.verdict
        head.vm_priority = self.vm_priority
        moved = self.packets[:k]
        head.packets = moved
        self.packets = self.packets[k:]
        if self._sizes is not None:
            moved_bytes = int(sum(self._sizes[:k]))
        else:
            moved_bytes = sum(packet.size for packet in moved)
        head.total_bytes = moved_bytes
        self.total_bytes -= moved_bytes
        head._first_flow = moved[0].flow if moved else None
        if self._uniform:
            head._uniform = True
            self._first_flow = (self.packets[0].flow
                                if self.packets else None)
        else:
            head._uniform = head._scan_uniform()
            self._first_flow = (self.packets[0].flow
                                if self.packets else None)
            self._uniform = self._scan_uniform()
        self._sizes = self._keys = self._buckets = self._flags = None
        return head

    def _scan_uniform(self) -> bool:
        first = self._first_flow
        if first is None:
            return True
        for packet in self.packets:
            flow = packet.flow
            if flow is not first and flow != first:
                return False
        return True


# ----------------------------------------------------------------------
# Columnar boundary transport (the sharded kernel's wire format)
# ----------------------------------------------------------------------

#: Field layout of one boundary event as captured by
#: ``repro.sim.sharded.ShardRuntime._capture`` — the row format that
#: :func:`encode_boundary_events` packs into columns and
#: :meth:`BoundaryBatch.decode` reproduces exactly.
BOUNDARY_FIELDS = (
    "arrival_ns", "seq", "dst_host", "dst_port",
    "src_ip", "dst_ip", "protocol", "src_port", "dst_port_num",
    "size", "payload", "created_at", "annotations",
)


def _int_column(values: "array"):
    """int64 column: numpy view when available, stdlib ``array``
    otherwise — identical element values either way."""
    if HAVE_NUMPY:
        return np.frombuffer(values, dtype=np.int64).copy() if values \
            else np.empty(0, dtype=np.int64)
    return values


class BoundaryBatch:
    """One window's boundary events toward one shard, as packed columns.

    Worker mode used to pickle one 13-field tuple per crossing packet;
    a :class:`BoundaryBatch` instead dictionary-encodes the repetitive
    fields and ships a handful of flat buffers per window:

    - seven int64 columns (arrival, capture seq, wire index, flow index,
      size, created_at, payload index),
    - three small side tables (``wires``: distinct ``(dst_host,
      dst_port)`` pairs, ``flows``: distinct five-tuples with their
      original string IPs, ``payloads``: distinct payload strings),
    - one sparse ``{row: annotations}`` mapping for the non-columnar
      remainder (``None`` when no row carries annotations).

    :meth:`decode` rebuilds the exact event tuples — same types, same
    values — so the codec is observably identical to the pickled path.
    """

    __slots__ = ("count", "arrivals", "seqs", "wire_idx", "flow_idx",
                 "sizes", "created", "payload_idx",
                 "wires", "flows", "payloads", "annotations")

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state) -> None:
        for name, value in zip(self.__slots__, state, strict=True):
            setattr(self, name, value)

    def buffer_count(self) -> int:
        """Pipe messages this batch amounts to: one per flat buffer
        (columns + side tables + the sparse annotation map), versus one
        pickled tuple per event on the legacy path."""
        return 7 + 3 + (1 if self.annotations else 0)

    def decode(self) -> list[tuple]:
        """Rebuild the original boundary-event tuples, bit for bit."""
        arrivals = self.arrivals.tolist()
        seqs = self.seqs.tolist()
        wire_idx = self.wire_idx.tolist()
        flow_idx = self.flow_idx.tolist()
        sizes = self.sizes.tolist()
        created = self.created.tolist()
        payload_idx = self.payload_idx.tolist()
        wires = self.wires
        flows = self.flows
        payloads = self.payloads
        annotations = self.annotations or {}
        events = []
        for row in range(self.count):
            dst_host, dst_port = wires[wire_idx[row]]
            events.append((
                arrivals[row], seqs[row], dst_host, dst_port,
                *flows[flow_idx[row]],
                sizes[row], payloads[payload_idx[row]], created[row],
                annotations.get(row)))
        return events


def encode_boundary_events(events: typing.Sequence[tuple]) -> BoundaryBatch:
    """Pack boundary-event rows (``BOUNDARY_FIELDS`` layout) into a
    :class:`BoundaryBatch` of columns and dictionary tables."""
    arrivals = array("q")
    seqs = array("q")
    wire_idx = array("q")
    flow_idx = array("q")
    sizes = array("q")
    created = array("q")
    payload_idx = array("q")
    wires: list[tuple[str, str]] = []
    wire_table: dict[tuple[str, str], int] = {}
    flows: list[tuple[str, str, int, int, int]] = []
    flow_table: dict[tuple[str, str, int, int, int], int] = {}
    payloads: list[str] = []
    payload_table: dict[str, int] = {}
    annotations: dict[int, tuple] = {}
    for row, event in enumerate(events):
        (arrival, seq, dst_host, dst_port, src_ip, dst_ip, protocol,
         src_port, dst_port_num, size, payload, created_at,
         encoded_annotations) = event
        wire = (dst_host, dst_port)
        index = wire_table.get(wire)
        if index is None:
            index = wire_table[wire] = len(wires)
            wires.append(wire)
        wire_idx.append(index)
        flow = (src_ip, dst_ip, protocol, src_port, dst_port_num)
        index = flow_table.get(flow)
        if index is None:
            index = flow_table[flow] = len(flows)
            flows.append(flow)
        flow_idx.append(index)
        index = payload_table.get(payload)
        if index is None:
            index = payload_table[payload] = len(payloads)
            payloads.append(payload)
        payload_idx.append(index)
        arrivals.append(arrival)
        seqs.append(seq)
        sizes.append(size)
        created.append(created_at)
        if encoded_annotations is not None:
            annotations[row] = encoded_annotations
    batch = BoundaryBatch()
    batch.count = len(events)
    batch.arrivals = _int_column(arrivals)
    batch.seqs = _int_column(seqs)
    batch.wire_idx = _int_column(wire_idx)
    batch.flow_idx = _int_column(flow_idx)
    batch.sizes = _int_column(sizes)
    batch.created = _int_column(created)
    batch.payload_idx = _int_column(payload_idx)
    batch.wires = wires
    batch.flows = flows
    batch.payloads = payloads
    batch.annotations = annotations or None
    return batch
