"""The memcached UDP text protocol subset used by the proxy NF.

The paper's memcached-proxy NF "parses incoming UDP memcached requests to
determine what key is being requested" then rewrites the destination.  We
model the ASCII protocol's ``get``/``set`` commands plus the 8-byte UDP
frame header that memcached prepends to UDP datagrams.
"""

from __future__ import annotations

import dataclasses

UDP_FRAME_HEADER_BYTES = 8
MEMCACHED_PORT = 11211


@dataclasses.dataclass(frozen=True)
class MemcachedRequest:
    """A parsed memcached request."""

    command: str  # "get" or "set"
    key: str
    value: str = ""

    def __post_init__(self) -> None:
        if self.command not in ("get", "set"):
            raise ValueError(f"unsupported command: {self.command!r}")
        if not self.key or " " in self.key or len(self.key) > 250:
            raise ValueError(f"invalid memcached key: {self.key!r}")

    def serialize(self) -> str:
        if self.command == "get":
            return f"get {self.key}\r\n"
        return (f"set {self.key} 0 0 {len(self.value)}\r\n"
                f"{self.value}\r\n")

    @classmethod
    def parse(cls, text: str) -> MemcachedRequest:
        line, _, rest = text.partition("\r\n")
        parts = line.split(" ")
        if parts[0] == "get" and len(parts) == 2:
            return cls(command="get", key=parts[1])
        if parts[0] == "set" and len(parts) == 5:
            value = rest[: int(parts[4])]
            return cls(command="set", key=parts[1], value=value)
        raise ValueError(f"malformed memcached request: {line!r}")

    def wire_length(self) -> int:
        return UDP_FRAME_HEADER_BYTES + len(self.serialize())


@dataclasses.dataclass(frozen=True)
class MemcachedResponse:
    """A parsed memcached response."""

    key: str
    value: str | None  # None models a miss ("END" with no VALUE block)

    def serialize(self) -> str:
        if self.value is None:
            return "END\r\n"
        return (f"VALUE {self.key} 0 {len(self.value)}\r\n"
                f"{self.value}\r\nEND\r\n")

    @property
    def hit(self) -> bool:
        return self.value is not None
