"""Fixed-size packet buffer pool — the ``rte_mempool`` analogue.

SDNFV's prototype never mallocs on the wire path: DPDK pre-allocates
packet buffers in huge-page mempools and the NIC, manager, and NFs
recycle them through free lists (§4.1).  :class:`PacketPool` reproduces
that economy for the simulator: ``alloc()`` hands out a retired
:class:`~repro.net.packet.Packet` rewound by ``Packet._reset`` (fresh
monotonic ``packet_id``, no leaked headers or annotations), and
``reclaim()`` returns a zero-reference buffer to the slab.

The slab is bounded (``capacity`` buffers, grown lazily up to that cap).
When every buffer is in flight the pool *falls back to plain heap
allocation* — counted in ``exhausted``, never fatal — mirroring how a
real deployment sizes mempools generously and treats exhaustion as an
observable pressure signal rather than a crash.

Pool traffic is mirrored into ``HostStats`` (``pool_hits`` /
``pool_misses`` / ``pool_exhausted``) when a stats object is attached,
so ``HostStats.summary()`` reports buffer-reuse efficiency alongside
throughput.
"""

from __future__ import annotations

import typing

from repro.net.flow import FiveTuple
from repro.net.packet import Packet

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataplane.stats import HostStats

#: Default slab size per host: comfortably above the buffers in flight on
#: the Fig. 7/Fig. 10 workloads (rings + NIC FIFOs + wire), analogous to
#: the generous per-port mempools a DPDK app creates at startup.
DEFAULT_POOL_SIZE = 8192


class PacketPool:
    """A bounded free-list of reusable packet buffers.

    ``alloc()`` pops a retired buffer (a *hit*) or materializes a new one
    while the slab is below ``capacity`` (a *miss* — cold-start filling,
    like mempool population at init).  Past capacity, ``alloc()`` falls
    back to an unpooled heap packet and counts it in ``exhausted``.
    """

    def __init__(self, capacity: int = DEFAULT_POOL_SIZE,
                 stats: HostStats | None = None) -> None:
        if capacity < 0:
            raise ValueError(f"negative pool capacity: {capacity}")
        self.capacity = capacity
        self.stats = stats
        self._free: list[Packet] = []
        #: Pooled buffers materialized so far (≤ capacity).
        self.created = 0
        #: Allocations served by reusing a retired buffer.
        self.hits = 0
        #: Allocations that had to materialize a new pooled buffer.
        self.misses = 0
        #: Allocations past capacity, served from the plain heap.
        self.exhausted = 0

    @property
    def free_count(self) -> int:
        """Retired buffers currently available for reuse."""
        return len(self._free)

    @property
    def in_flight(self) -> int:
        """Pooled buffers currently out in the data plane."""
        return self.created - len(self._free)

    def alloc(self, flow: FiveTuple, size: int = 64, payload: str = "",
              created_at: int = 0) -> Packet:
        """Hand out a packet buffer (reused, grown, or heap-fallback)."""
        free = self._free
        stats = self.stats
        if free:
            packet = free.pop()
            packet._in_pool = False
            packet._reset(flow, size, payload, created_at)
            self.hits += 1
            if stats is not None:
                stats.pool_hits += 1
            return packet
        self.misses += 1
        if stats is not None:
            stats.pool_misses += 1
        if self.created < self.capacity:
            packet = Packet(flow=flow, size=size, payload=payload,
                            created_at=created_at)
            packet._pool = self
            self.created += 1
            return packet
        # Slab exhausted: observable pressure, not a crash.  The fallback
        # packet has no pool backref, so reclaim() ignores it and it dies
        # a normal garbage-collected death.
        self.exhausted += 1
        if stats is not None:
            stats.pool_exhausted += 1
        return Packet(flow=flow, size=size, payload=payload,
                      created_at=created_at)

    def reclaim(self, packet: Packet) -> bool:
        """Return a zero-reference buffer to the slab.

        Safe to call from any terminal owner: buffers that are not ours,
        still referenced, or already back in the slab are left alone
        (returns False).  Double-insertion is impossible — a buffer in
        the slab is flagged and skipped.
        """
        if (packet._pool is not self or packet.ref_count != 0
                or packet._in_pool):
            return False
        packet._in_pool = True
        self._free.append(packet)
        return True

    def __repr__(self) -> str:
        return (f"<PacketPool {self.in_flight}/{self.created} in flight, "
                f"cap={self.capacity}, hits={self.hits}, "
                f"misses={self.misses}, exhausted={self.exhausted}>")
