"""Packet and protocol substrate.

Models the parts of the network stack that SDNFV's data plane inspects:
5-tuples, header fields used for matching, and the application payloads
(HTTP, memcached) that the application-aware NFs parse.
"""

from repro.net.batch import PacketBatch, columnar_kernel
from repro.net.flow import FiveTuple, FlowMatch
from repro.net.headers import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    EthernetHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
    ip_to_int,
    ip_to_str,
)
from repro.net.http import HttpRequest, HttpResponse, classify_content_type
from repro.net.memcached import MemcachedRequest, MemcachedResponse
from repro.net.mempool import DEFAULT_POOL_SIZE, PacketPool
from repro.net.packet import Packet, wire_bits

__all__ = [
    "DEFAULT_POOL_SIZE",
    "EthernetHeader",
    "FiveTuple",
    "FlowMatch",
    "HttpRequest",
    "HttpResponse",
    "Ipv4Header",
    "MemcachedRequest",
    "MemcachedResponse",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "PacketBatch",
    "PacketPool",
    "TcpHeader",
    "UdpHeader",
    "classify_content_type",
    "columnar_kernel",
    "ip_to_int",
    "ip_to_str",
    "wire_bits",
]
