"""Protocol header models.

These are structural models, not byte-exact codecs: the fields are the ones
the SDNFV data plane matches on or rewrites (the memcached proxy rewrites
destination IP/port; the flow table matches the 5-tuple).  Each header knows
its wire length so packet sizes stay honest.
"""

from __future__ import annotations

import dataclasses

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_PROTO_NAMES = {PROTO_ICMP: "icmp", PROTO_TCP: "tcp", PROTO_UDP: "udp"}


def ip_to_int(address: str) -> int:
    """Parse dotted-quad IPv4 into an int (validates each octet)."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"IPv4 octet out of range: {address!r}")
        value = (value << 8) | octet
    return value


def ip_to_str(value: int) -> str:
    """Format an int as dotted-quad IPv4."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 int out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF)
                    for shift in (24, 16, 8, 0))


@dataclasses.dataclass
class EthernetHeader:
    """Layer-2 header (14 bytes on the wire)."""

    src_mac: str = "00:00:00:00:00:01"
    dst_mac: str = "00:00:00:00:00:02"
    ethertype: int = 0x0800  # IPv4

    WIRE_LENGTH = 14


@dataclasses.dataclass
class Ipv4Header:
    """Layer-3 header (20 bytes, no options)."""

    src_ip: str = "10.0.0.1"
    dst_ip: str = "10.0.0.2"
    protocol: int = PROTO_TCP
    ttl: int = 64
    dscp: int = 0

    WIRE_LENGTH = 20

    def __post_init__(self) -> None:
        # Validate eagerly; a malformed address should fail at construction,
        # not deep inside a flow-table lookup.
        ip_to_int(self.src_ip)
        ip_to_int(self.dst_ip)
        if self.protocol not in _PROTO_NAMES:
            raise ValueError(f"unsupported IP protocol: {self.protocol}")

    def decrement_ttl(self) -> None:
        if self.ttl <= 0:
            raise ValueError("TTL already expired")
        self.ttl -= 1


@dataclasses.dataclass
class TcpHeader:
    """Layer-4 TCP header (20 bytes, no options)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: frozenset[str] = frozenset()

    WIRE_LENGTH = 20

    def __post_init__(self) -> None:
        _check_port(self.src_port)
        _check_port(self.dst_port)
        allowed = {"SYN", "ACK", "FIN", "RST", "PSH"}
        unknown = set(self.flags) - allowed
        if unknown:
            raise ValueError(f"unknown TCP flags: {sorted(unknown)}")


@dataclasses.dataclass
class UdpHeader:
    """Layer-4 UDP header (8 bytes)."""

    src_port: int = 0
    dst_port: int = 0

    WIRE_LENGTH = 8

    def __post_init__(self) -> None:
        _check_port(self.src_port)
        _check_port(self.dst_port)


def _check_port(port: int) -> None:
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range: {port}")


def protocol_name(protocol: int) -> str:
    """Human-readable protocol name (for logs and table dumps)."""
    return _PROTO_NAMES.get(protocol, str(protocol))
