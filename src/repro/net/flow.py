"""Flow identity (5-tuple) and wildcard flow matching.

``FiveTuple`` is the exact identity of a flow; ``FlowMatch`` is an OpenFlow
style match where any field may be wildcarded (None) and the source IP may
be a prefix — the paper's DDoS detector aggregates traffic by IP prefix.
"""

from __future__ import annotations

import dataclasses

from repro.net.headers import ip_to_int


class FiveTuple:
    """Exact flow identity: (src_ip, dst_ip, protocol, src_port, dst_port).

    Immutable and hashable — flows key every table on the hot path (flow
    rules, per-flow stats, burst classification), so the hash and the
    packed integer key used by :meth:`hash_bucket` are computed once and
    cached (a frozen dataclass would rebuild both on every lookup).
    """

    __slots__ = ("src_ip", "dst_ip", "protocol", "src_port", "dst_port",
                 "_hash", "_int_key")

    def __init__(self, src_ip: str, dst_ip: str, protocol: int,
                 src_port: int, dst_port: int) -> None:
        set_ = object.__setattr__
        set_(self, "src_ip", src_ip)
        set_(self, "dst_ip", dst_ip)
        set_(self, "protocol", protocol)
        set_(self, "src_port", src_port)
        set_(self, "dst_port", dst_port)
        set_(self, "_hash", None)
        set_(self, "_int_key", None)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("FiveTuple is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("FiveTuple is immutable")

    def __reduce__(self):
        # Slot-state pickling would go through __setattr__ (which raises);
        # rebuild through __init__ instead.  The cached hash/int-key are
        # recomputed lazily on the other side.
        return (FiveTuple, (self.src_ip, self.dst_ip, self.protocol,
                            self.src_port, self.dst_port))

    def __eq__(self, other) -> bool:
        if other.__class__ is not FiveTuple:
            return NotImplemented
        return (self.src_ip == other.src_ip
                and self.dst_ip == other.dst_ip
                and self.protocol == other.protocol
                and self.src_port == other.src_port
                and self.dst_port == other.dst_port)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash((self.src_ip, self.dst_ip, self.protocol,
                           self.src_port, self.dst_port))
            object.__setattr__(self, "_hash", cached)
        return cached

    def _packed_key(self) -> tuple[int, int, int, int, int]:
        """All-integer key (IPs packed via ``ip_to_int``), cached."""
        key = self._int_key
        if key is None:
            key = (ip_to_int(self.src_ip), ip_to_int(self.dst_ip),
                   self.protocol, self.src_port, self.dst_port)
            object.__setattr__(self, "_int_key", key)
        return key

    def reversed(self) -> FiveTuple:
        """The reverse direction of this flow (for replies)."""
        return FiveTuple(src_ip=self.dst_ip, dst_ip=self.src_ip,
                         protocol=self.protocol, src_port=self.dst_port,
                         dst_port=self.src_port)

    def hash_bucket(self, buckets: int) -> int:
        """Deterministic bucket for flow-hash load balancing (RSS-style)."""
        if buckets <= 0:
            raise ValueError("buckets must be positive")
        value = 1469598103934665603
        for field in self._packed_key():
            value ^= field
            value = (value * 1099511628211) % (1 << 63)
        return value % buckets

    def __repr__(self) -> str:
        return (f"FiveTuple(src_ip={self.src_ip!r}, dst_ip={self.dst_ip!r}, "
                f"protocol={self.protocol!r}, src_port={self.src_port!r}, "
                f"dst_port={self.dst_port!r})")

    def __str__(self) -> str:
        return (f"{self.src_ip}:{self.src_port}->"
                f"{self.dst_ip}:{self.dst_port}/{self.protocol}")


@dataclasses.dataclass(frozen=True)
class FlowMatch:
    """Wildcard-capable match over a 5-tuple.

    ``None`` fields match anything.  ``src_prefix_bits`` restricts the
    source-IP comparison to the top N bits (requires ``src_ip``).
    """

    src_ip: str | None = None
    dst_ip: str | None = None
    protocol: int | None = None
    src_port: int | None = None
    dst_port: int | None = None
    src_prefix_bits: int = 32

    def __post_init__(self) -> None:
        if not 0 <= self.src_prefix_bits <= 32:
            raise ValueError("src_prefix_bits must be in [0, 32]")
        if self.src_prefix_bits < 32 and self.src_ip is None:
            raise ValueError("src_prefix_bits needs src_ip")

    @classmethod
    def exact(cls, flow: FiveTuple) -> FlowMatch:
        """An exact match for one flow."""
        return cls(src_ip=flow.src_ip, dst_ip=flow.dst_ip,
                   protocol=flow.protocol, src_port=flow.src_port,
                   dst_port=flow.dst_port)

    @classmethod
    def any(cls) -> FlowMatch:
        """The ``*`` rule: matches every flow."""
        return cls()

    @property
    def is_exact(self) -> bool:
        return (None not in (self.src_ip, self.dst_ip, self.protocol,
                             self.src_port, self.dst_port)
                and self.src_prefix_bits == 32)

    @property
    def specificity(self) -> int:
        """How many fields are constrained (for priority tie-breaks)."""
        fields = (self.src_ip, self.dst_ip, self.protocol,
                  self.src_port, self.dst_port)
        return sum(1 for field in fields if field is not None)

    def matches(self, flow: FiveTuple) -> bool:
        """True when ``flow`` falls inside this match."""
        if self.src_ip is not None:
            if not _prefix_equal(self.src_ip, flow.src_ip,
                                 self.src_prefix_bits):
                return False
        if self.dst_ip is not None and self.dst_ip != flow.dst_ip:
            return False
        if self.protocol is not None and self.protocol != flow.protocol:
            return False
        if self.src_port is not None and self.src_port != flow.src_port:
            return False
        if self.dst_port is not None and self.dst_port != flow.dst_port:
            return False
        return True

    def subsumes(self, other: FlowMatch) -> bool:
        """True when every flow matched by ``other`` is matched by self.

        Used by cross-layer messages: a message whose flow criteria
        subsumes a rule's match may rewrite that rule without affecting
        flows outside the criteria.
        """
        for field in ("dst_ip", "protocol", "src_port", "dst_port"):
            mine = getattr(self, field)
            theirs = getattr(other, field)
            if mine is not None and (theirs is None or theirs != mine):
                return False
        if self.src_ip is not None:
            if other.src_ip is None:
                return False
            if other.src_prefix_bits < self.src_prefix_bits:
                return False
            if not _prefix_equal(self.src_ip, other.src_ip,
                                 self.src_prefix_bits):
                return False
        return True

    def exact_key(self) -> FiveTuple | None:
        """The FiveTuple if this match is exact, else None."""
        if not self.is_exact:
            return None
        return FiveTuple(src_ip=self.src_ip, dst_ip=self.dst_ip,
                         protocol=self.protocol, src_port=self.src_port,
                         dst_port=self.dst_port)


def _prefix_equal(pattern_ip: str, flow_ip: str, bits: int) -> bool:
    if bits == 0:
        return True
    shift = 32 - bits
    return (ip_to_int(pattern_ip) >> shift) == (ip_to_int(flow_ip) >> shift)
