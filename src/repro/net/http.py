"""A minimal HTTP payload model for application-aware NFs.

The paper's Video Flow Detector "analyzes HTTP headers of packets to detect
the content type being transmitted in each flow" and the IDS "looks for
malicious signatures such as SQL exploits in HTTP packets".  This module
provides request/response payload objects plus a text serialisation so NFs
can do genuine parsing rather than peeking at python attributes.
"""

from __future__ import annotations

import dataclasses

VIDEO_CONTENT_TYPES = frozenset({
    "video/mp4",
    "video/webm",
    "video/mpeg",
    "application/x-mpegURL",
    "application/dash+xml",
})


@dataclasses.dataclass
class HttpRequest:
    """An HTTP request carried in a packet payload."""

    method: str = "GET"
    path: str = "/"
    host: str = "example.com"
    headers: dict[str, str] = dataclasses.field(default_factory=dict)
    body: str = ""

    def serialize(self) -> str:
        lines = [f"{self.method} {self.path} HTTP/1.1",
                 f"Host: {self.host}"]
        lines.extend(f"{name}: {value}"
                     for name, value in sorted(self.headers.items()))
        return "\r\n".join(lines) + "\r\n\r\n" + self.body

    @classmethod
    def parse(cls, text: str) -> HttpRequest:
        head, _, body = text.partition("\r\n\r\n")
        lines = head.split("\r\n")
        method, path, _version = lines[0].split(" ", 2)
        headers: dict[str, str] = {}
        host = ""
        for line in lines[1:]:
            name, _, value = line.partition(": ")
            if name.lower() == "host":
                host = value
            else:
                headers[name] = value
        return cls(method=method, path=path, host=host, headers=headers,
                   body=body)


@dataclasses.dataclass
class HttpResponse:
    """An HTTP response carried in a packet payload."""

    status: int = 200
    reason: str = "OK"
    headers: dict[str, str] = dataclasses.field(default_factory=dict)
    body: str = ""

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "")

    def serialize(self) -> str:
        lines = [f"HTTP/1.1 {self.status} {self.reason}"]
        lines.extend(f"{name}: {value}"
                     for name, value in sorted(self.headers.items()))
        return "\r\n".join(lines) + "\r\n\r\n" + self.body

    @classmethod
    def parse(cls, text: str) -> HttpResponse:
        head, _, body = text.partition("\r\n\r\n")
        lines = head.split("\r\n")
        _version, status, reason = lines[0].split(" ", 2)
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(": ")
            headers[name] = value
        return cls(status=int(status), reason=reason, headers=headers,
                   body=body)


def classify_content_type(response_text: str) -> str | None:
    """Best-effort Content-Type extraction from a serialized response.

    Returns None when the payload is not parseable as an HTTP response —
    mid-flow data packets, for instance.
    """
    if not response_text.startswith("HTTP/"):
        return None
    try:
        response = HttpResponse.parse(response_text)
    except (ValueError, IndexError):
        return None
    return response.content_type or None


def is_video_content(content_type: str | None) -> bool:
    """Whether a Content-Type denotes a video stream."""
    return content_type in VIDEO_CONTENT_TYPES
