"""DSCP constants and priority mapping (DiffServ, an IP-layer concept)."""

from __future__ import annotations

PRIORITY_ANNOTATION = "qos_priority"

# Standard DSCP class selectors mapped onto our priority levels
# (0 = highest).
DSCP_EXPEDITED = 46   # EF
DSCP_ASSURED = 10     # AF11
DSCP_BEST_EFFORT = 0


def dscp_to_priority(dscp: int, levels: int) -> int:
    """Map a DSCP value to an egress queue index (0 = served first)."""
    if not 0 <= dscp <= 63:
        raise ValueError(f"DSCP out of range: {dscp}")
    if levels < 1:
        raise ValueError("levels must be positive")
    if dscp >= DSCP_EXPEDITED:
        return 0
    if dscp >= DSCP_ASSURED:
        return min(1, levels - 1)
    return levels - 1
