"""The packet object exchanged through the simulated data plane.

One ``Packet`` instance corresponds to one DPDK mbuf in a huge page: the NF
Manager and VMs pass *descriptors* referencing it (see
``repro.dataplane.descriptors``) and never copy it, mirroring the paper's
zero-copy design.  ``ref_count`` supports the parallel-processing extension
(§4.2: "we extend the packet data structure used by DPDK to include a
reference counter").

Hot-path notes: the class is slotted, and the header objects and the
``annotations`` dict are materialized lazily — a forwarding-only chain
(Fig. 7's noop NFs) never touches headers, so the common case allocates
one object per packet instead of six.  Buffers themselves come from a
:class:`repro.net.mempool.PacketPool` when the host has one; ``_reset``
rewinds a retired buffer for reuse while still minting a fresh monotonic
``packet_id``.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.net.flow import FiveTuple
from repro.net.headers import (
    PROTO_TCP,
    PROTO_UDP,
    EthernetHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.mempool import PacketPool

ETHERNET_OVERHEAD_BYTES = 24  # preamble 8 + FCS 4 + interframe gap 12

_packet_ids = itertools.count()


class Packet:
    """A simulated packet.

    ``size`` is the full frame length in bytes (headers + payload) and is
    what throughput accounting uses.  ``payload`` carries the serialized
    application data that L7-aware NFs parse.  ``annotations`` is scratch
    space for NFs that tag packets for downstream NFs (e.g. the sampler
    marking a packet as sampled) — the paper's NFs communicate through
    shared packet state in huge pages.
    """

    __slots__ = ("flow", "size", "payload", "created_at", "ref_count",
                 "packet_id", "_eth", "_ip", "_l4", "_annotations",
                 "_pool", "_in_pool")

    def __init__(self, flow: FiveTuple, size: int = 64, payload: str = "",
                 eth: EthernetHeader | None = None,
                 ip: Ipv4Header | None = None,
                 l4: TcpHeader | UdpHeader | None = None,
                 created_at: int = 0,
                 annotations: dict[str, typing.Any] | None = None,
                 ref_count: int = 1,
                 packet_id: int | None = None) -> None:
        if size < 64:
            raise ValueError(f"frame below 64-byte minimum: {size}")
        self.flow = flow
        self.size = size
        self.payload = payload
        self.created_at = created_at
        self.ref_count = ref_count
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id
        self._eth = eth
        self._ip = ip
        self._l4 = l4
        self._annotations = annotations
        self._pool: PacketPool | None = None
        self._in_pool = False

    def _reset(self, flow: FiveTuple, size: int, payload: str,
               created_at: int) -> None:
        """Rewind a retired pooled buffer for reuse.

        Everything observable is re-initialized — headers and annotations
        are dropped (never leaked to the next tenant) and a fresh
        monotonic ``packet_id`` is minted, so reuse is indistinguishable
        from a new allocation.
        """
        if size < 64:
            raise ValueError(f"frame below 64-byte minimum: {size}")
        self.flow = flow
        self.size = size
        self.payload = payload
        self.created_at = created_at
        self.ref_count = 1
        self.packet_id = next(_packet_ids)
        self._eth = None
        self._ip = None
        self._l4 = None
        self._annotations = None

    # ------------------------------------------------------------------
    # Lazily-materialized headers and scratch space
    # ------------------------------------------------------------------
    @property
    def eth(self) -> EthernetHeader:
        header = self._eth
        if header is None:
            header = self._eth = EthernetHeader()
        return header

    @eth.setter
    def eth(self, header: EthernetHeader) -> None:
        self._eth = header

    @property
    def ip(self) -> Ipv4Header:
        header = self._ip
        if header is None:
            flow = self.flow
            header = self._ip = Ipv4Header(src_ip=flow.src_ip,
                                           dst_ip=flow.dst_ip,
                                           protocol=flow.protocol)
        return header

    @ip.setter
    def ip(self, header: Ipv4Header) -> None:
        self._ip = header

    @property
    def l4(self) -> TcpHeader | UdpHeader | None:
        header = self._l4
        if header is None:
            flow = self.flow
            if flow.protocol == PROTO_TCP:
                header = self._l4 = TcpHeader(src_port=flow.src_port,
                                              dst_port=flow.dst_port)
            elif flow.protocol == PROTO_UDP:
                header = self._l4 = UdpHeader(src_port=flow.src_port,
                                              dst_port=flow.dst_port)
        return header

    @l4.setter
    def l4(self, header: TcpHeader | UdpHeader | None) -> None:
        self._l4 = header

    @property
    def annotations(self) -> dict[str, typing.Any]:
        scratch = self._annotations
        if scratch is None:
            scratch = self._annotations = {}
        return scratch

    @annotations.setter
    def annotations(self, scratch: dict[str, typing.Any]) -> None:
        self._annotations = scratch

    @property
    def pool(self) -> PacketPool | None:
        """The mempool this buffer belongs to (None = plain heap packet)."""
        return self._pool

    # ------------------------------------------------------------------
    # Mutation and reference counting
    # ------------------------------------------------------------------
    def rewrite_destination(self, dst_ip: str, dst_port: int) -> None:
        """Redirect the packet (the memcached proxy's header rewrite)."""
        flow = self.flow
        self.flow = FiveTuple(src_ip=flow.src_ip, dst_ip=dst_ip,
                              protocol=flow.protocol, src_port=flow.src_port,
                              dst_port=dst_port)
        self._ip = dataclasses.replace(self.ip, dst_ip=dst_ip)
        l4 = self.l4
        if isinstance(l4, (TcpHeader, UdpHeader)):
            self._l4 = dataclasses.replace(l4, dst_port=dst_port)

    def add_reference(self, count: int = 1) -> None:
        """Account ``count`` additional concurrent holders of this buffer."""
        if count < 1:
            raise ValueError("reference count increment must be >= 1")
        self.ref_count += count

    def release(self) -> bool:
        """Drop one reference.  Returns True when the buffer is now free.

        Pure reference accounting — the buffer is *not* returned to its
        pool here, because a zero-ref packet may still be on the wire
        (NIC TX FIFO, fabric propagation, egress stores).  Terminal
        owners call :meth:`free` or ``pool.reclaim`` instead.
        """
        if self.ref_count <= 0:
            raise RuntimeError("releasing an already-freed packet")
        self.ref_count -= 1
        return self.ref_count == 0

    def free(self) -> bool:
        """Drop one reference and recycle the buffer when it hits zero.

        The terminal-owner variant of :meth:`release`: at refcount zero
        the buffer goes back to its :class:`PacketPool` (no-op for plain
        heap packets).  Returns True when the buffer was freed.
        """
        if self.release():
            pool = self._pool
            if pool is not None:
                pool.reclaim(self)
            return True
        return False


def wire_bits(size_bytes: int) -> int:
    """Bits a frame of ``size_bytes`` occupies on an Ethernet link."""
    return (size_bytes + ETHERNET_OVERHEAD_BYTES) * 8


def transmission_ns(size_bytes: int, gbps: float) -> int:
    """Serialization delay for one frame at ``gbps`` line rate."""
    if gbps <= 0:
        raise ValueError("line rate must be positive")
    return max(1, round(wire_bits(size_bytes) / gbps))
