"""The packet object exchanged through the simulated data plane.

One ``Packet`` instance corresponds to one DPDK mbuf in a huge page: the NF
Manager and VMs pass *descriptors* referencing it (see
``repro.dataplane.descriptors``) and never copy it, mirroring the paper's
zero-copy design.  ``ref_count`` supports the parallel-processing extension
(§4.2: "we extend the packet data structure used by DPDK to include a
reference counter").
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.net.flow import FiveTuple
from repro.net.headers import (
    PROTO_TCP,
    PROTO_UDP,
    EthernetHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)

ETHERNET_OVERHEAD_BYTES = 24  # preamble 8 + FCS 4 + interframe gap 12

_packet_ids = itertools.count()


@dataclasses.dataclass
class Packet:
    """A simulated packet.

    ``size`` is the full frame length in bytes (headers + payload) and is
    what throughput accounting uses.  ``payload`` carries the serialized
    application data that L7-aware NFs parse.  ``annotations`` is scratch
    space for NFs that tag packets for downstream NFs (e.g. the sampler
    marking a packet as sampled) — the paper's NFs communicate through
    shared packet state in huge pages.
    """

    flow: FiveTuple
    size: int = 64
    payload: str = ""
    eth: EthernetHeader = dataclasses.field(default_factory=EthernetHeader)
    ip: Ipv4Header | None = None
    l4: TcpHeader | UdpHeader | None = None
    created_at: int = 0
    annotations: dict[str, typing.Any] = dataclasses.field(
        default_factory=dict)
    ref_count: int = 1
    packet_id: int = dataclasses.field(
        default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size < 64:
            raise ValueError(f"frame below 64-byte minimum: {self.size}")
        if self.ip is None:
            self.ip = Ipv4Header(src_ip=self.flow.src_ip,
                                 dst_ip=self.flow.dst_ip,
                                 protocol=self.flow.protocol)
        if self.l4 is None:
            if self.flow.protocol == PROTO_TCP:
                self.l4 = TcpHeader(src_port=self.flow.src_port,
                                    dst_port=self.flow.dst_port)
            elif self.flow.protocol == PROTO_UDP:
                self.l4 = UdpHeader(src_port=self.flow.src_port,
                                    dst_port=self.flow.dst_port)

    def rewrite_destination(self, dst_ip: str, dst_port: int) -> None:
        """Redirect the packet (the memcached proxy's header rewrite)."""
        self.flow = dataclasses.replace(self.flow, dst_ip=dst_ip,
                                        dst_port=dst_port)
        assert self.ip is not None
        self.ip = dataclasses.replace(self.ip, dst_ip=dst_ip)
        if isinstance(self.l4, (TcpHeader, UdpHeader)):
            self.l4 = dataclasses.replace(self.l4, dst_port=dst_port)

    def add_reference(self, count: int = 1) -> None:
        """Account ``count`` additional concurrent holders of this buffer."""
        if count < 1:
            raise ValueError("reference count increment must be >= 1")
        self.ref_count += count

    def release(self) -> bool:
        """Drop one reference.  Returns True when the buffer is now free."""
        if self.ref_count <= 0:
            raise RuntimeError("releasing an already-freed packet")
        self.ref_count -= 1
        return self.ref_count == 0


def wire_bits(size_bytes: int) -> int:
    """Bits a frame of ``size_bytes`` occupies on an Ethernet link."""
    return (size_bytes + ETHERNET_OVERHEAD_BYTES) * 8


def transmission_ns(size_bytes: int, gbps: float) -> int:
    """Serialization delay for one frame at ``gbps`` line rate."""
    if gbps <= 0:
        raise ValueError("line rate must be positive")
    return max(1, round(wire_bits(size_bytes) / gbps))
