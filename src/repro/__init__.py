"""SDNFV reproduction library.

Reproduces "SDNFV: Flexible and Dynamic Software Defined Control of an
Application- and Flow-Aware Data Plane" (Middleware 2016) as a pure-Python
discrete-event simulation of the full system: the NFV host dataplane, the
SDN control tier, and the SDNFV hierarchical control framework on top.

Public entry points:

- :mod:`repro.sim` — discrete-event kernel (integer-nanosecond clock).
- :mod:`repro.net` — packets, headers, flows, HTTP/memcached payload models.
- :mod:`repro.topology` — network graphs, links, Rocketfuel-like generator.
- :mod:`repro.dataplane` — NF Manager, ring buffers, flow tables, VMs.
- :mod:`repro.control` — SDN controller, NFV orchestrator, OpenFlow messages.
- :mod:`repro.core` — service graphs, SDNFV application, placement engine.
- :mod:`repro.nfs` — library of network functions used by the paper.
- :mod:`repro.baselines` — OVS, SDN-only, TwemProxy, plain-DPDK comparators.
- :mod:`repro.workloads` — PktGen-like traffic generators.
- :mod:`repro.metrics` — throughput/latency/time-series instrumentation.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
