"""TwemProxy: the kernel-path memcached proxy baseline of Fig. 12.

"TwemProxy ... uses interrupt driven packet processing and requires
multiple packet data copies between kernel and user space.  TwemProxy also
needs to negotiate traffic in both directions since it maintains separate
socket connections with the client and server."

Modeled as a single event-loop server whose per-request service time
composes those kernel-path costs — about 11 µs per request, saturating
near the paper's 90 k req/s.  Both a closed-form M/M/1 latency curve and a
discrete-event queue are provided.
"""

from __future__ import annotations

import dataclasses

from repro.metrics.latency import LatencyRecorder
from repro.sim.randomness import RandomStreams
from repro.sim.simulator import Simulator
from repro.sim.store import Store
from repro.sim.units import US


@dataclasses.dataclass
class TwemproxyCosts:
    """Per-request cost components of the kernel proxy path (ns)."""

    interrupt_ns: int = 2_500          # NIC interrupt + softirq
    syscall_pair_ns: int = 2_000       # recvfrom + sendto
    copy_ns_per_byte: float = 0.45     # kernel<->user, both directions
    parse_and_hash_ns: int = 1_500     # twemproxy request handling
    server_side_socket_ns: int = 4_800  # separate server connection legs

    def service_ns(self, request_bytes: int = 96) -> int:
        copies = round(2 * request_bytes * self.copy_ns_per_byte)
        return (self.interrupt_ns + self.syscall_pair_ns + copies
                + self.parse_and_hash_ns + self.server_side_socket_ns)


class TwemproxyModel:
    """Latency-vs-rate model for TwemProxy."""

    def __init__(self, costs: TwemproxyCosts | None = None,
                 request_bytes: int = 96,
                 server_rtt_ns: int = 90_000) -> None:
        self.costs = costs or TwemproxyCosts()
        self.request_bytes = request_bytes
        self.service_ns = self.costs.service_ns(request_bytes)
        self.server_rtt_ns = server_rtt_ns

    @property
    def capacity_rps(self) -> float:
        """Saturation rate of the single event loop (≈90 k req/s)."""
        return 1e9 / self.service_ns

    def mean_rtt_us(self, rate_rps: float) -> float:
        """M/M/1 expected round trip at an offered rate (µs).

        Past ~99.5% utilization the closed form diverges; we clamp there —
        the paper likewise reports the proxy as simply 'overloaded'.
        """
        if rate_rps < 0:
            raise ValueError("rate must be non-negative")
        rho = min(rate_rps / self.capacity_rps, 0.995)
        queue_wait = rho * self.service_ns / (1 - rho)
        return (self.server_rtt_ns + self.service_ns + queue_wait) / US


class TwemproxySim:
    """Discrete-event TwemProxy: one event loop, FIFO socket queue."""

    def __init__(self, sim: Simulator,
                 model: TwemproxyModel | None = None,
                 queue_depth: int = 1024,
                 seed: int = 23) -> None:
        self.sim = sim
        self.model = model or TwemproxyModel()
        self.latency = LatencyRecorder("twemproxy-rtt")
        self.dropped = 0
        self.served = 0
        self._queue = Store(sim, capacity=queue_depth)
        self._rng = RandomStreams(seed=seed).stream("twemproxy")
        sim.process(self._loop())

    def offer(self) -> None:
        """One incoming get() request at the current time."""
        if not self._queue.try_put(self.sim.now):
            self.dropped += 1

    def drive(self, rate_rps: float, duration_ns: int):
        """A generator process offering Poisson traffic at ``rate_rps``."""
        mean_gap = 1e9 / rate_rps
        deadline = self.sim.now + duration_ns
        while self.sim.now < deadline:
            self.offer()
            yield self.sim.timeout(
                max(1, round(self._rng.exponential(mean_gap))))

    def _loop(self):
        while True:
            arrived_at: int = yield self._queue.get()
            yield self.sim.timeout(self.model.service_ns)
            self.served += 1
            rtt = (self.sim.now - arrived_at) + self.model.server_rtt_ns
            self.latency.record(rtt)
