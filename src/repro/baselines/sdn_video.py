"""The SDN-only video system: application logic inside the controller.

§5.3: "In current SDNs, the Video Detector and Policy Engine must be
integrated into the SDN controller itself because only the controller has
decision making power over flows.  As a result, the first two packets of
each flow ... must be sent to the SDN controller."

Consequences reproduced here:

- every new flow costs **two** controller transactions before its rule is
  installed, so the controller saturates near its request capacity
  (Fig. 10);
- a policy change only affects flows that set up *after* it, because
  established flows already have rules and never revisit the controller
  (Fig. 11's lag).
"""

from __future__ import annotations

import typing

from repro.control.controller import SdnController
from repro.metrics.throughput import ThroughputMeter
from repro.net.flow import FiveTuple
from repro.net.http import classify_content_type, is_video_content
from repro.net.mempool import DEFAULT_POOL_SIZE, PacketPool
from repro.net.packet import Packet
from repro.sim.simulator import Simulator
from repro.sim.store import Store
from repro.sim.units import MS, NS


class SdnVideoSystem:
    """Host data plane with controller-resident video logic."""

    def __init__(self, sim: Simulator, controller: SdnController,
                 fast_path_ns: int = 300 * NS,
                 transcode_keep_ratio: float = 0.5,
                 flow_setup_buffer: int = 8192,
                 window_ns: int = 500 * MS,
                 pool_size: int = DEFAULT_POOL_SIZE) -> None:
        self.sim = sim
        self.controller = controller
        self.fast_path_ns = fast_path_ns
        self.transcode_keep_ratio = transcode_keep_ratio
        self.throttle = False
        self.out_meter = ThroughputMeter(window_ns=window_ns)
        self.completed_flows = 0
        self.forwarded = 0
        self.transcode_dropped = 0
        # flow -> "out" (send directly) or "transcode" (halve the rate)
        self._rules: dict[FiveTuple, str] = {}
        self._pending: dict[FiveTuple, list[Packet]] = {}
        # Same mempool discipline as the SDNFV data plane: workloads
        # allocate buffers from ``packet_pool`` and terminal paths
        # (forwarded, transcode-dropped, setup overflow) reclaim them.
        self.packet_pool: PacketPool | None = (
            PacketPool(pool_size) if pool_size else None)
        self._setup_slots = Store(sim, capacity=flow_setup_buffer)
        self._ingress = Store(sim, recycle=True)
        self._credit: dict[FiveTuple, float] = {}
        self.on_egress: typing.Callable[[Packet], None] | None = None
        sim.process(self._worker())

    # ------------------------------------------------------------------
    def inject(self, _port: str, packet: Packet) -> None:
        """PktGen-compatible entry point (the port name is ignored)."""
        self._ingress.try_put(packet)

    def set_throttle(self, enabled: bool) -> None:
        """Policy change in the controller module — no recall mechanism
        exists, so existing rules stay as installed."""
        self.throttle = enabled

    # ------------------------------------------------------------------
    def _worker(self):
        while True:
            packet: Packet = yield self._ingress.get()
            yield self.sim.timeout(self.fast_path_ns)
            action = self._rules.get(packet.flow)
            if action is not None:
                self._apply(packet, action)
                continue
            pending = self._pending.get(packet.flow)
            if pending is None:
                if not self._setup_slots.try_put(packet.flow):
                    # Setup table overflow: drop the flow.
                    if packet.pool is not None:
                        packet.free()
                    continue
                self._pending[packet.flow] = [packet]
                # First packet (TCP ACK) goes to the controller.
                self.sim.process(self._consult(packet.flow, packet, None))
            else:
                pending.append(packet)
                if len(pending) == 2:
                    # Second packet (HTTP reply) carries the payload the
                    # controller-resident detector inspects.
                    self.sim.process(self._consult(packet.flow, packet,
                                                   packet.payload))

    def _consult(self, flow: FiveTuple, packet: Packet,
                 payload: str | None):
        def decide() -> str | None:
            if payload is None:
                return None  # packet 1: the controller just looks
            content = classify_content_type(payload)
            video = is_video_content(content)
            if video and self.throttle:
                return "transcode"
            return "out"

        action = yield self.controller.submit_work(decide)
        if action is None:
            return
        self._rules[flow] = action
        self._setup_slots.try_get()
        self.completed_flows += 1
        for buffered in self._pending.pop(flow, ()):
            self._apply(buffered, action)

    def _apply(self, packet: Packet, action: str) -> None:
        if action == "transcode":
            credit = (self._credit.get(packet.flow, 0.0)
                      + self.transcode_keep_ratio)
            if credit < 1.0:
                self._credit[packet.flow] = credit
                self.transcode_dropped += 1
                if packet.pool is not None:
                    packet.free()
                return
            self._credit[packet.flow] = credit - 1.0
        self.forwarded += 1
        self.out_meter.record(self.sim.now, packet.size)
        if self.on_egress is not None:
            self.on_egress(packet)
        if packet.pool is not None:
            packet.free()

    # ------------------------------------------------------------------
    def completed_per_second(self, elapsed_ns: int) -> float:
        return self.completed_flows * 1e9 / max(1, elapsed_ns)
