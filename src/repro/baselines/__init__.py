"""Comparison systems the paper evaluates against.

- :func:`make_dpdk_forwarder` — the 0-VM DPDK forwarding app (Table 2,
  Fig. 7 baseline);
- :class:`OvsControllerModel` / :class:`OvsSwitchSim` — Open vSwitch
  punting a fraction of packets to a POX controller (Fig. 1);
- :class:`SdnVideoSystem` — the "current SDN" design with the video
  detector and policy engine living *inside* the controller (Figs. 10/11);
- :class:`TwemproxyModel` — Twitter's kernel-path memcached proxy
  (Fig. 12).
"""

from repro.baselines.dpdk import make_dpdk_forwarder
from repro.baselines.ovs import OvsControllerModel, OvsSwitchSim
from repro.baselines.sdn_video import SdnVideoSystem
from repro.baselines.twemproxy import TwemproxyModel

__all__ = [
    "OvsControllerModel",
    "OvsSwitchSim",
    "SdnVideoSystem",
    "TwemproxyModel",
    "make_dpdk_forwarder",
]
