"""Open vSwitch punting to a POX controller: the Fig. 1 motivation study.

"OVS includes a software switch with a flow table; if there is a flow
table miss, then a request is sent to the SDN controller. ... the maximum
throughput that can be achieved quickly drops when the proportion of
packets that must contact the controller increases."

Two forms:

- :class:`OvsControllerModel` — the closed-form capacity model: achieved
  throughput = min(line rate, switch fast path, controller capacity / p);
- :class:`OvsSwitchSim` — a discrete-event OVS: a fast-path worker plus a
  bounded punt queue into an :class:`~repro.control.controller.SdnController`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.control.controller import SdnController
from repro.metrics.throughput import ThroughputMeter
from repro.net.mempool import DEFAULT_POOL_SIZE, PacketPool
from repro.net.packet import Packet, wire_bits
from repro.sim.randomness import RandomStreams
from repro.sim.simulator import Simulator
from repro.sim.store import Store
from repro.sim.units import MS


@dataclasses.dataclass
class OvsControllerModel:
    """Analytic max-throughput model for the controller-punt path.

    ``fast_path_pps`` is the software switch's packet rate ceiling;
    ``controller_rps`` the single-threaded controller's request capacity.
    With fraction ``p`` of packets punted, sustainable packet rate is
    ``min(line, fast_path, controller_rps / p)``.
    """

    line_rate_gbps: float = 10.0
    fast_path_pps: float = 3.3e6
    controller_rps: float = 10_000.0

    def max_throughput_gbps(self, punt_fraction: float,
                            packet_size: int) -> float:
        if not 0.0 <= punt_fraction <= 1.0:
            raise ValueError("punt fraction must be in [0, 1]")
        bits = wire_bits(packet_size)
        line_pps = self.line_rate_gbps * 1e9 / bits
        rates = [line_pps, self.fast_path_pps]
        if punt_fraction > 0:
            rates.append(self.controller_rps / punt_fraction)
        return min(rates) * bits / 1e9

    def sweep(self, punt_percents: typing.Sequence[float],
              packet_size: int) -> list[tuple[float, float]]:
        """(percent, Gbps) series — one Fig. 1 curve."""
        return [(pct, self.max_throughput_gbps(pct / 100.0, packet_size))
                for pct in punt_percents]


class OvsSwitchSim:
    """Discrete-event OVS: fast path worker + controller punt path.

    Packets enter via :meth:`offer`; a fraction are punted to the
    controller (miss) and forwarded only once the reply returns; the punt
    buffer is bounded, so an overloaded controller causes drops — the
    throughput collapse of Fig. 1.
    """

    def __init__(self, sim: Simulator, controller: SdnController,
                 punt_fraction: float,
                 fast_path_pps: float = 3.3e6,
                 punt_buffer: int = 1024,
                 window_ns: int = 10 * MS,
                 pool_size: int = DEFAULT_POOL_SIZE,
                 seed: int = 3) -> None:
        if not 0.0 <= punt_fraction <= 1.0:
            raise ValueError("punt fraction must be in [0, 1]")
        self.sim = sim
        self.controller = controller
        self.punt_fraction = punt_fraction
        self.fast_service_ns = max(1, round(1e9 / fast_path_pps))
        self.out_meter = ThroughputMeter(window_ns=window_ns)
        self.dropped_punts = 0
        self.punts_completed = 0
        self.forwarded = 0
        # Baselines share the mempool discipline of the SDNFV data plane:
        # drivers allocate via ``packet_pool`` and every terminal path
        # (forwarded or dropped) returns the buffer to the slab.
        self.packet_pool: PacketPool | None = (
            PacketPool(pool_size) if pool_size else None)
        self._ingress = Store(sim, capacity=4096, recycle=True)
        self._punt_queue = Store(sim, capacity=punt_buffer)
        self._rng = RandomStreams(seed=seed).stream("ovs")
        sim.process(self._fast_path())

    def offer(self, packet: Packet) -> bool:
        """Offer a packet to the switch (False = ingress queue overflow).

        Overflowed pooled buffers are reclaimed here, like a NIC dropping
        a frame whose descriptor never left the mempool.
        """
        if self._ingress.try_put(packet):
            return True
        if packet.pool is not None:
            packet.free()
        return False

    def _fast_path(self):
        while True:
            packet: Packet = yield self._ingress.get()
            yield self.sim.timeout(self.fast_service_ns)
            if self._rng.random() < self.punt_fraction:
                if self._punt_queue.try_put(packet):
                    self.sim.process(self._punt(packet))
                else:
                    self.dropped_punts += 1
                    if packet.pool is not None:
                        packet.free()
                continue
            self._emit(packet)

    def _punt(self, packet: Packet):
        yield self.controller.flow_request("ovs", "miss", packet.flow)
        # Remove our reservation from the bounded punt buffer.
        self._punt_queue.try_get()
        self.punts_completed += 1
        self._emit(packet)

    def _emit(self, packet: Packet) -> None:
        self.forwarded += 1
        self.out_meter.record(self.sim.now, packet.size)
        if packet.pool is not None:
            packet.free()

    def achieved_gbps(self) -> float:
        return self.out_meter.mean_gbps()
