"""The plain DPDK forwarder: packets bounce port-to-port, no VMs.

Table 2's "0VM (dpdk)" row and Fig. 7's line-rate reference: "a simple
DPDK forwarding application that doesn't involve any virtualization
overheads".  Built as an SDNFV host whose only rule forwards ingress
straight to the egress port — no VM ever touches the packet, so the only
simulated costs are the RX classify and NIC serialization.
"""

from __future__ import annotations

from repro.dataplane.costs import HostCosts
from repro.dataplane.flow_table import FlowTableEntry
from repro.dataplane.actions import ToPort
from repro.dataplane.host import NfvHost
from repro.net.flow import FlowMatch
from repro.sim.simulator import Simulator


def make_dpdk_forwarder(sim: Simulator, name: str = "dpdk0",
                        costs: HostCosts | None = None,
                        in_port: str = "eth0", out_port: str = "eth1",
                        line_rate_gbps: float = 10.0) -> NfvHost:
    """A host that forwards every packet from ``in_port`` to ``out_port``."""
    host = NfvHost(sim, name=name, costs=costs,
                   ports=(in_port, out_port),
                   line_rate_gbps=line_rate_gbps)
    host.install_rule(FlowTableEntry(
        scope=in_port, match=FlowMatch.any(),
        actions=(ToPort(out_port),)))
    return host
