"""Optional-dependency detection.

numpy accelerates the columnar batch columns, the seeded random
streams, and the latency percentile math, but none of those need it
for correctness: every consumer keeps a stdlib fallback that produces
the same *kinds* of results (and, for the columnar arrays, bit-identical
ones).  Import ``HAVE_NUMPY`` from here instead of try/excepting numpy
locally so the whole tree flips together.

Setting ``SDNFV_NO_NUMPY=1`` in the environment forces the fallback
paths even when numpy is importable — that is how the parity suite
pins the stdlib ``array`` code without a second virtualenv.
"""

from __future__ import annotations

import os

try:
    if os.environ.get("SDNFV_NO_NUMPY"):
        raise ImportError("numpy disabled via SDNFV_NO_NUMPY")
    import numpy
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via subprocess tests
    numpy = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = ["HAVE_NUMPY", "numpy"]
