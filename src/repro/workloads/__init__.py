"""Traffic generators (the simulation's PktGen-DPDK).

:class:`PktGen` drives a host's NIC ports with configurable flows and
measures round-trip latency and receive throughput exactly the way the
paper's traffic generator does (timestamp in the packet, RTT measured at
return).  Scenario-specific workloads build on it: flow churn (Fig. 10),
video sessions (Fig. 11), DDoS ramps (Fig. 9), memcached request streams
(Fig. 12).
"""

from repro.workloads.attack import DdosRampWorkload
from repro.workloads.imix import SIMPLE_IMIX, ImixProfile, ImixSource
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.pktgen import FlowSpec, PktGen
from repro.workloads.sessions import FlowChurnWorkload, VideoSessionWorkload
from repro.workloads.trace import (
    TraceRecord,
    TraceReplayer,
    trace_from_csv,
    trace_to_csv,
)

__all__ = [
    "DdosRampWorkload",
    "FlowChurnWorkload",
    "FlowSpec",
    "ImixProfile",
    "ImixSource",
    "MemcachedWorkload",
    "PktGen",
    "SIMPLE_IMIX",
    "TraceRecord",
    "TraceReplayer",
    "VideoSessionWorkload",
    "trace_from_csv",
    "trace_to_csv",
]
