"""Session-structured workloads: flow churn (Fig. 10) and video sessions
(Fig. 11).

Fig. 10's workload "varies the number of new incoming flows per second;
after a flow has been established (i.e., it has sent two packets), it is
replaced with a new flow".  Fig. 11's "mimics the behavior of 400 video
flows, which each last for an average of 40 seconds before being replaced
by a new flow".
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.dataplane.host import NfvHost
from repro.metrics.throughput import ThroughputMeter
from repro.net.flow import FiveTuple
from repro.net.headers import PROTO_TCP
from repro.net.http import HttpResponse
from repro.net.packet import Packet, wire_bits
from repro.sim.randomness import RandomStreams
from repro.sim.simulator import Simulator
from repro.sim.units import MS, S

_flow_counter = itertools.count()


def _fresh_flow(server_ip: str = "10.1.0.1") -> FiveTuple:
    """A unique server→client flow (the video server side of §5.3)."""
    index = next(_flow_counter)
    client = f"10.2.{(index >> 8) % 250 + 1}.{index % 250 + 1}"
    return FiveTuple(src_ip=server_ip, dst_ip=client, protocol=PROTO_TCP,
                     src_port=80, dst_port=10000 + index % 50000)


def _attach_egress_hook(host, measure_ports, hook) -> None:
    """Attach an egress observer to an NfvHost's ports, or to a baseline
    system exposing a single ``on_egress`` hook (e.g. SdnVideoSystem)."""
    if hasattr(host, "port"):
        for port_name in measure_ports:
            host.port(port_name).on_egress = hook
    else:
        host.on_egress = hook


def video_reply_payload(bitrate_kbps: int = 2000) -> str:
    """An HTTP response header announcing video content."""
    return HttpResponse(
        status=200, reason="OK",
        headers={"Content-Type": "video/mp4",
                 "X-Bitrate-Kbps": str(bitrate_kbps)},
        body="").serialize()


class FlowChurnWorkload:
    """New flows at a configurable rate, two packets each (Fig. 10).

    Packet 1 models the TCP connection ACK, packet 2 the HTTP reply whose
    payload the Video Detector parses.  ``completed_flows`` counts flows
    whose second packet made it out of the system — the 'output flows per
    second' metric of Fig. 10.
    """

    def __init__(self, sim: Simulator, host: NfvHost,
                 new_flows_per_second: float,
                 ingress_port: str = "eth0",
                 measure_ports: typing.Sequence[str] = ("eth1",),
                 packet_size: int = 256,
                 window_ns: int = 500 * MS,
                 seed: int = 7) -> None:
        if new_flows_per_second <= 0:
            raise ValueError("flow rate must be positive")
        self.sim = sim
        self.host = host
        self.ingress_port = ingress_port
        self.packet_size = packet_size
        # Mean gap between new flows: a real-valued rate parameter, not
        # an integer-ns quantity (each drawn gap is quantized below).
        self.mean_gap = S / new_flows_per_second
        self.out_meter = ThroughputMeter(window_ns=window_ns)
        self.flows_started = 0
        self.completed_flows = 0
        self._second_packet_ids: set[int] = set()
        self._rng = RandomStreams(seed=seed).stream("churn")
        _attach_egress_hook(host, measure_ports, self._on_out)
        sim.process(self._run())

    def _on_out(self, packet: Packet) -> None:
        self.out_meter.record(self.sim.now, packet.size)
        if packet.packet_id in self._second_packet_ids:
            self._second_packet_ids.discard(packet.packet_id)
            self.completed_flows += 1
        # Measurement sink = terminal owner: zero-ref pooled buffers go
        # back to the slab (fresh packet_ids on reuse keep the
        # second-packet tracking sound).
        pool = packet.pool
        if pool is not None and packet.ref_count == 0:
            pool.reclaim(packet)

    def _alloc(self, flow: FiveTuple, size: int, payload: str) -> Packet:
        pool = getattr(self.host, "packet_pool", None)
        if pool is not None:
            return pool.alloc(flow=flow, size=size, payload=payload,
                              created_at=self.sim.now)
        return Packet(flow=flow, size=size, payload=payload,
                      created_at=self.sim.now)

    def _run(self):
        while True:
            flow = _fresh_flow()
            self.flows_started += 1
            ack = self._alloc(flow, 64, "")
            self.host.inject(self.ingress_port, ack)
            reply = self._alloc(flow, self.packet_size,
                                video_reply_payload())
            self._second_packet_ids.add(reply.packet_id)
            # Second packet follows shortly after the first.
            self.sim.schedule(50_000, lambda p=reply: self.host.inject(
                self.ingress_port, p))
            gap = max(1, round(self._rng.exponential(self.mean_gap)))
            yield self.sim.timeout(gap)

    def completed_per_second(self, elapsed_ns: int) -> float:
        return self.completed_flows * S / max(1, elapsed_ns)


@dataclasses.dataclass
class _VideoSession:
    flow: FiveTuple
    ends_at: int
    packets_sent: int = 0


class VideoSessionWorkload:
    """A fixed population of concurrent video flows (Fig. 11).

    Each session streams packets at ``per_flow_mbps``; when a session's
    exponentially-distributed lifetime expires it is replaced by a fresh
    flow.  The first packet of each session carries the HTTP video header
    so the Video Detector can classify it.
    """

    def __init__(self, sim: Simulator, host: NfvHost,
                 concurrent_flows: int = 400,
                 mean_lifetime_ns: int = 40 * S,
                 per_flow_mbps: float = 0.2,
                 packet_size: int = 512,
                 ingress_port: str = "eth0",
                 measure_ports: typing.Sequence[str] = ("eth1",),
                 window_ns: int = 1 * S,
                 seed: int = 11) -> None:
        self.sim = sim
        self.host = host
        self.ingress_port = ingress_port
        self.packet_size = packet_size
        self.mean_lifetime_ns = mean_lifetime_ns
        self.per_flow_mbps = per_flow_mbps
        self.out_meter = ThroughputMeter(window_ns=window_ns)
        self.sessions_started = 0
        self._rng = RandomStreams(seed=seed).stream("video")
        _attach_egress_hook(host, measure_ports, self._on_out)
        for _ in range(concurrent_flows):
            self.sim.process(self._session_loop())

    def _on_out(self, packet: Packet) -> None:
        self.out_meter.record(self.sim.now, packet.size)
        pool = packet.pool
        if pool is not None and packet.ref_count == 0:
            pool.reclaim(packet)

    def _interval_ns(self) -> int:
        return max(1, round(wire_bits(self.packet_size) * 1000.0
                            / self.per_flow_mbps))

    def _session_loop(self):
        # Stagger session starts so replacements don't synchronize.
        yield self.sim.timeout(
            int(self._rng.integers(0, self._interval_ns() + 1)))
        while True:
            session = _VideoSession(
                flow=_fresh_flow(),
                ends_at=self.sim.now + max(1, round(self._rng.exponential(
                    self.mean_lifetime_ns))))
            self.sessions_started += 1
            while self.sim.now < session.ends_at:
                # Paper setup: packet 1 is the TCP connection ACK, packet
                # 2 the HTTP reply whose payload classifies the flow.
                if session.packets_sent == 0:
                    payload, size = "", 64
                elif session.packets_sent == 1:
                    payload, size = video_reply_payload(), self.packet_size
                else:
                    payload, size = "", self.packet_size
                pool = getattr(self.host, "packet_pool", None)
                if pool is not None:
                    packet = pool.alloc(flow=session.flow, size=size,
                                        payload=payload,
                                        created_at=self.sim.now)
                else:
                    packet = Packet(flow=session.flow, size=size,
                                    payload=payload,
                                    created_at=self.sim.now)
                self.host.inject(self.ingress_port, packet)
                session.packets_sent += 1
                yield self.sim.timeout(self._interval_ns())

    def out_pps_series(self) -> list[tuple[float, float]]:
        return self.out_meter.pps_series()
