"""PktGen: paced traffic flows plus RTT / throughput measurement.

The paper measures with PktGen-DPDK: the generator stamps packets, the
system under test returns them out a port, and the generator computes
round-trip latency and receive rate.  :class:`PktGen` reproduces that
harness around a simulated :class:`~repro.dataplane.host.NfvHost`.

The host-external wire (generator NIC, cables, switch NIC) is modeled as
``wire_base_rtt_ns ± wire_jitter_ns`` from the host's cost table, added at
measurement time — the inside-host pipeline is simulated packet by packet.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.dataplane.host import NfvHost
from repro.metrics.latency import LatencyRecorder
from repro.metrics.throughput import ThroughputMeter
from repro.net.flow import FiveTuple
from repro.net.headers import ip_to_int
from repro.net.packet import Packet, wire_bits
from repro.sim.randomness import RandomStreams
from repro.sim.simulator import Simulator
from repro.sim.units import MS


@dataclasses.dataclass
class FlowSpec:
    """One generated flow.  ``rate_mbps`` may be changed mid-run."""

    flow: FiveTuple
    rate_mbps: float
    packet_size: int = 64
    start_ns: int = 0
    stop_ns: int | None = None
    payload: typing.Callable[[int], str] | str = ""
    pacing: str = "uniform"  # or "poisson"
    # Cycle packets round-robin over this many distinct five-tuples
    # derived from ``flow`` (incrementing src_port, rolling into src_ip)
    # — the Fig. 10 saturation-sweep knob: at 10^5 concurrent flows the
    # data plane's per-flow caches churn on every packet.  Deterministic
    # (sequence-indexed), so it draws nothing from the pacing RNG.
    flow_count: int = 1

    def __post_init__(self) -> None:
        if self.rate_mbps <= 0:
            raise ValueError("rate must be positive")
        if self.packet_size < 64:
            raise ValueError("packet size below 64-byte minimum")
        if self.pacing not in ("uniform", "poisson"):
            raise ValueError(f"unknown pacing {self.pacing!r}")
        if self.flow_count < 1:
            raise ValueError("flow_count must be at least 1")
        self._flows: tuple[FiveTuple, ...] | None = None

    def payload_for(self, sequence: int) -> str:
        if callable(self.payload):
            return self.payload(sequence)
        return self.payload

    def flow_for(self, sequence: int) -> FiveTuple:
        """The five-tuple of packet ``sequence`` (round-robin)."""
        if self.flow_count == 1:
            return self.flow
        if self._flows is None:
            self._flows = tuple(self._variant(index)
                                for index in range(self.flow_count))
        return self._flows[sequence % self.flow_count]

    def _variant(self, index: int) -> FiveTuple:
        base = self.flow
        offset = base.src_port + index
        ip = (ip_to_int(base.src_ip) + offset // 65536) & 0xFFFFFFFF
        return FiveTuple(
            f"{ip >> 24}.{(ip >> 16) & 255}.{(ip >> 8) & 255}.{ip & 255}",
            base.dst_ip, base.protocol, offset % 65536, base.dst_port)

    def mean_gap(self) -> float:
        """Mean inter-packet gap in ns at the current rate.

        A real-valued distribution parameter (line rates rarely divide
        into whole nanoseconds) — callers quantize each actual gap.
        """
        return wire_bits(self.packet_size) * 1000.0 / self.rate_mbps


class PktGen:
    """Traffic generator + measurement harness around one host."""

    def __init__(self, sim: Simulator, host: NfvHost,
                 ingress_port: str = "eth0",
                 measure_ports: typing.Sequence[str] = ("eth1",),
                 window_ns: int = 100 * MS,
                 seed: int = 42) -> None:
        self.sim = sim
        self.host = host
        self.ingress_port = ingress_port
        self.latency = LatencyRecorder("pktgen-rtt")
        self.rx_meter = ThroughputMeter(window_ns=window_ns)
        self.tx_meter = ThroughputMeter(window_ns=window_ns)
        self.sent = 0
        self.received = 0
        self.per_flow_latency: dict[FiveTuple, LatencyRecorder] = {}
        self._rng = RandomStreams(seed=seed).stream("pktgen")
        self._stopped = False
        for port_name in measure_ports:
            self.host.port(port_name).on_egress = self._on_return

    # ------------------------------------------------------------------
    # Measurement side
    # ------------------------------------------------------------------
    def _on_return(self, packet: Packet) -> None:
        now = self.sim.now
        self.received += 1
        self.rx_meter.record(now, packet.size)
        costs = self.host.costs
        jitter = 0
        if costs.wire_jitter_ns:
            jitter = int(self._rng.integers(-costs.wire_jitter_ns,
                                            costs.wire_jitter_ns + 1))
        rtt = (now - packet.created_at) + costs.wire_base_rtt_ns + jitter
        self.latency.record(max(0, rtt))
        recorder = self.per_flow_latency.get(packet.flow)
        if recorder is not None:
            recorder.record(max(0, rtt))
        # The measurement sink is the buffer's terminal owner: once the
        # RTT is recorded, a zero-ref pooled buffer goes back to the slab
        # (ignored for plain heap packets and still-referenced buffers).
        pool = packet.pool
        if pool is not None and packet.ref_count == 0:
            pool.reclaim(packet)

    def track_flow(self, flow: FiveTuple) -> LatencyRecorder:
        """Keep a separate latency series for one flow (Fig. 8)."""
        recorder = self.per_flow_latency.setdefault(
            flow, LatencyRecorder(str(flow)))
        return recorder

    # ------------------------------------------------------------------
    # Generation side
    # ------------------------------------------------------------------
    def add_flow(self, spec: FlowSpec) -> FlowSpec:
        """Start generating a flow; returns the (mutable) spec handle."""
        # The per-flow driver is a self-rearming bare timer, not a
        # generator process: each tick allocates a buffer from the pool,
        # injects it, and re-arms — like a DPDK pktgen TX lane, the
        # steady-state loop touches no Event machinery at all.
        if spec.start_ns:
            self.sim.call_later(0, self._start_flow, spec)
        else:
            self.sim.call_later(0, self._drive_tick, (spec, 0))
        return spec

    def stop(self) -> None:
        """Stop all generation at the current time."""
        self._stopped = True

    def _start_flow(self, spec: FlowSpec) -> None:
        self.sim.call_later(spec.start_ns, self._drive_tick, (spec, 0))

    def _drive_tick(self, state: tuple[FlowSpec, int]) -> None:
        spec, sequence = state
        if self._stopped:
            return
        now = self.sim.now
        if spec.stop_ns is not None and now >= spec.stop_ns:
            return
        flow = spec.flow_for(sequence)
        pool = getattr(self.host, "packet_pool", None)
        if pool is not None:
            packet = pool.alloc(flow=flow, size=spec.packet_size,
                                payload=spec.payload_for(sequence),
                                created_at=now)
        else:
            packet = Packet(flow=flow, size=spec.packet_size,
                            payload=spec.payload_for(sequence),
                            created_at=now)
        self.host.inject(self.ingress_port, packet)
        self.sent += 1
        self.tx_meter.record(now, spec.packet_size)
        # mean_gap() is recomputed every tick on purpose: rate_mbps is
        # documented as mutable mid-run (Fig. 9 rate steps).
        mean_gap = spec.mean_gap()
        if spec.pacing == "poisson":
            gap = max(1, round(self._rng.exponential(mean_gap)))
        else:
            gap = max(1, round(mean_gap))
        self.sim.call_later(gap, self._drive_tick, (spec, sequence + 1))

    # ------------------------------------------------------------------
    def offered_gbps(self) -> float:
        """Mean offered load over the run so far."""
        return self.tx_meter.mean_gbps()

    def achieved_gbps(self) -> float:
        """Mean receive rate over the run so far (what Fig. 7 plots)."""
        return self.rx_meter.mean_gbps()
