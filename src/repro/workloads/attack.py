"""The DDoS workload of Fig. 9: steady normal traffic + a ramping attack.

"We send normal traffic at a constant rate (500Mbps), and start sending
low rate DDoS traffic at 30s ... the incoming traffic gradually rises
until reaching our threshold (3.2Gbps)."  Attack packets come from many
sources inside one IP prefix so the detector's per-prefix aggregation has
something to aggregate.
"""

from __future__ import annotations

import typing

from repro.dataplane.host import NfvHost
from repro.metrics.throughput import ThroughputMeter
from repro.net.flow import FiveTuple
from repro.net.headers import PROTO_UDP
from repro.net.packet import Packet, wire_bits
from repro.sim.randomness import RandomStreams
from repro.sim.simulator import Simulator
from repro.sim.units import MS, S


class DdosRampWorkload:
    """Constant legitimate traffic plus a linearly ramping attack."""

    def __init__(self, sim: Simulator, host: NfvHost,
                 normal_mbps: float = 500.0,
                 attack_start_ns: int = 30 * S,
                 attack_ramp_mbps_per_s: float = 25.0,
                 attack_max_mbps: float = 4000.0,
                 attack_prefix: str = "66.66.0.0",
                 packet_size: int = 1024,
                 attack_sources: int = 64,
                 ingress_port: str = "eth0",
                 measure_ports: typing.Sequence[str] = ("eth1",),
                 window_ns: int = 1 * S,
                 seed: int = 13) -> None:
        self.sim = sim
        self.host = host
        self.ingress_port = ingress_port
        self.packet_size = packet_size
        self.normal_mbps = normal_mbps
        self.attack_start_ns = attack_start_ns
        self.attack_ramp_mbps_per_s = attack_ramp_mbps_per_s
        self.attack_max_mbps = attack_max_mbps
        self.in_meter = ThroughputMeter(window_ns=window_ns)
        self.out_meter = ThroughputMeter(window_ns=window_ns)
        self._rng = RandomStreams(seed=seed).stream("ddos")
        prefix_octets = attack_prefix.split(".")
        self._attack_flows = [
            FiveTuple(
                src_ip=(f"{prefix_octets[0]}.{prefix_octets[1]}."
                        f"{i % 250 + 1}.{i // 250 + 1}"),
                dst_ip="10.3.0.1", protocol=PROTO_UDP,
                src_port=20000 + i, dst_port=80)
            for i in range(attack_sources)]
        self._normal_flow = FiveTuple(
            src_ip="10.2.0.1", dst_ip="10.3.0.1", protocol=PROTO_UDP,
            src_port=5000, dst_port=80)
        for port_name in measure_ports:
            host.port(port_name).on_egress = self._on_out
        sim.process(self._normal_loop())
        sim.process(self._attack_loop())

    def _on_out(self, packet: Packet) -> None:
        self.out_meter.record(self.sim.now, packet.size)

    def _inject(self, flow: FiveTuple) -> None:
        packet = Packet(flow=flow, size=self.packet_size,
                        created_at=self.sim.now)
        self.in_meter.record(self.sim.now, packet.size)
        self.host.inject(self.ingress_port, packet)

    def _gap_ns(self, rate_mbps: float) -> int:
        return max(1, round(wire_bits(self.packet_size) * 1000.0
                            / rate_mbps))

    def _normal_loop(self):
        while True:
            self._inject(self._normal_flow)
            yield self.sim.timeout(self._gap_ns(self.normal_mbps))

    def attack_rate_mbps(self, now_ns: int) -> float:
        """The attack's offered rate at a point in time."""
        if now_ns < self.attack_start_ns:
            return 0.0
        ramped = ((now_ns - self.attack_start_ns) / S
                  * self.attack_ramp_mbps_per_s)
        return min(self.attack_max_mbps, ramped)

    def _attack_loop(self):
        yield self.sim.timeout(self.attack_start_ns)
        index = 0
        while True:
            rate = self.attack_rate_mbps(self.sim.now)
            if rate <= 0:
                yield self.sim.timeout(100 * MS)
                continue
            flow = self._attack_flows[index % len(self._attack_flows)]
            index += 1
            self._inject(flow)
            yield self.sim.timeout(self._gap_ns(rate))
