"""Trace replay: drive a host from a recorded packet schedule.

Replaces the paper's production-trace experiments (no real traces are
available offline): a trace is a list of :class:`TraceRecord` rows —
timestamp, 5-tuple, size, payload — replayable at any speed, with a CSV
round trip so synthetic traces can be stored alongside experiments.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import typing

from repro.net.flow import FiveTuple
from repro.net.packet import Packet
from repro.sim.simulator import Simulator


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One packet in a trace."""

    timestamp_ns: int
    flow: FiveTuple
    size: int = 64
    payload: str = ""

    def __post_init__(self) -> None:
        if self.timestamp_ns < 0:
            raise ValueError("negative timestamp")
        if self.size < 64:
            raise ValueError("frame below 64-byte minimum")


_CSV_FIELDS = ["timestamp_ns", "src_ip", "dst_ip", "protocol",
               "src_port", "dst_port", "size", "payload"]


def trace_to_csv(records: typing.Sequence[TraceRecord]) -> str:
    """Serialize a trace to CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_CSV_FIELDS)
    writer.writeheader()
    for record in records:
        writer.writerow({
            "timestamp_ns": record.timestamp_ns,
            "src_ip": record.flow.src_ip,
            "dst_ip": record.flow.dst_ip,
            "protocol": record.flow.protocol,
            "src_port": record.flow.src_port,
            "dst_port": record.flow.dst_port,
            "size": record.size,
            "payload": record.payload,
        })
    return buffer.getvalue()


def trace_from_csv(text: str) -> list[TraceRecord]:
    """Parse a trace from CSV text (raises on malformed rows)."""
    records = []
    for row in csv.DictReader(io.StringIO(text)):
        records.append(TraceRecord(
            timestamp_ns=int(row["timestamp_ns"]),
            flow=FiveTuple(src_ip=row["src_ip"], dst_ip=row["dst_ip"],
                           protocol=int(row["protocol"]),
                           src_port=int(row["src_port"]),
                           dst_port=int(row["dst_port"])),
            size=int(row["size"]),
            payload=row["payload"],
        ))
    return records


class TraceReplayer:
    """Injects a trace into a host at a configurable speed."""

    def __init__(self, sim: Simulator, host: typing.Any,
                 records: typing.Sequence[TraceRecord],
                 ingress_port: str = "eth0",
                 speedup: float = 1.0) -> None:
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        self.sim = sim
        self.host = host
        self.ingress_port = ingress_port
        self.speedup = speedup
        self.records = sorted(records, key=lambda r: r.timestamp_ns)
        self.injected = 0
        self.done = sim.process(self._run())

    def _run(self):
        start = self.sim.now
        for record in self.records:
            due = start + round(record.timestamp_ns / self.speedup)
            if due > self.sim.now:
                yield self.sim.timeout(due - self.sim.now)
            packet = Packet(flow=record.flow, size=record.size,
                            payload=record.payload,
                            created_at=self.sim.now)
            self.host.inject(self.ingress_port, packet)
            self.injected += 1
        return self.injected
