"""IMIX traffic: the standard internet packet-size mixture.

The classic "simple IMIX" distribution — 7:4:1 packets of 64, 576 and
1500 bytes (≈58.3 % / 33.3 % / 8.3 %) — as a drop-in generator for
throughput experiments that shouldn't assume a single packet size.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.net.flow import FiveTuple
from repro.net.packet import Packet, wire_bits
from repro.sim.randomness import RandomStreams
from repro.sim.simulator import Simulator

SIMPLE_IMIX: tuple[tuple[int, int], ...] = ((64, 7), (576, 4), (1500, 1))


@dataclasses.dataclass(frozen=True)
class ImixProfile:
    """A weighted packet-size mixture."""

    buckets: tuple[tuple[int, int], ...] = SIMPLE_IMIX

    def __post_init__(self) -> None:
        if not self.buckets:
            raise ValueError("empty IMIX profile")
        for size, weight in self.buckets:
            if size < 64 or weight <= 0:
                raise ValueError(f"bad IMIX bucket ({size}, {weight})")

    def mean_size(self) -> float:
        total_weight = sum(weight for _size, weight in self.buckets)
        return sum(size * weight
                   for size, weight in self.buckets) / total_weight

    def mean_wire_bits(self) -> float:
        total_weight = sum(weight for _size, weight in self.buckets)
        return sum(wire_bits(size) * weight
                   for size, weight in self.buckets) / total_weight

    def sample(self, rng) -> int:
        sizes = [size for size, _weight in self.buckets]
        weights = [weight for _size, weight in self.buckets]
        total = sum(weights)
        draw = rng.random() * total
        for size, weight in self.buckets:
            draw -= weight
            if draw < 0:
                return size
        return sizes[-1]


class ImixSource:
    """Paced IMIX stream into a host port at a target bit rate."""

    def __init__(self, sim: Simulator, host: typing.Any,
                 flow: FiveTuple, rate_mbps: float,
                 profile: ImixProfile | None = None,
                 ingress_port: str = "eth0",
                 stop_ns: int | None = None,
                 seed: int = 29) -> None:
        if rate_mbps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.host = host
        self.flow = flow
        self.rate_mbps = rate_mbps
        self.profile = profile or ImixProfile()
        self.ingress_port = ingress_port
        self.stop_ns = stop_ns
        self.sent = 0
        self.sent_bytes = 0
        self._rng = RandomStreams(seed=seed).stream("imix")
        sim.process(self._run())

    def _run(self):
        while self.stop_ns is None or self.sim.now < self.stop_ns:
            size = self.profile.sample(self._rng)
            packet = Packet(flow=self.flow, size=size,
                            created_at=self.sim.now)
            self.host.inject(self.ingress_port, packet)
            self.sent += 1
            self.sent_bytes += size
            gap = wire_bits(size) * 1000.0 / self.rate_mbps
            yield self.sim.timeout(max(1, round(gap)))
