"""The memcached request workload of Fig. 12.

UDP get requests with Zipf-distributed keys at a configurable rate, driven
through a proxy (the SDNFV memcached-proxy NF or the TwemProxy baseline).
"""

from __future__ import annotations

import typing

from repro.dataplane.host import NfvHost
from repro.metrics.latency import LatencyRecorder
from repro.net.flow import FiveTuple
from repro.net.headers import PROTO_UDP
from repro.net.memcached import MEMCACHED_PORT, MemcachedRequest
from repro.net.packet import Packet
from repro.sim.randomness import RandomStreams
from repro.sim.simulator import Simulator
from repro.sim.units import S


class MemcachedWorkload:
    """Zipf-keyed get() stream through an SDNFV host."""

    def __init__(self, sim: Simulator, host: NfvHost,
                 requests_per_second: float,
                 key_space: int = 10000,
                 zipf_s: float = 1.1,
                 ingress_port: str = "eth0",
                 measure_ports: typing.Sequence[str] = ("eth1",),
                 clients: int = 8,
                 server_rtt_ns: int = 90_000,
                 seed: int = 17) -> None:
        if requests_per_second <= 0:
            raise ValueError("request rate must be positive")
        self.sim = sim
        self.host = host
        self.ingress_port = ingress_port
        self.requests_per_second = requests_per_second
        self.key_space = key_space
        self.zipf_s = zipf_s
        # Server-side round trip (wire + memcached service) added to the
        # measured proxy traversal; responses bypass the proxy (§5.4).
        self.server_rtt_ns = server_rtt_ns
        self.latency = LatencyRecorder("memcached-rtt")
        self.sent = 0
        self.forwarded = 0
        self._rng = RandomStreams(seed=seed).stream("memcached")
        self._flows = [
            FiveTuple(src_ip=f"10.9.0.{i + 1}", dst_ip="10.8.0.1",
                      protocol=PROTO_UDP, src_port=30000 + i,
                      dst_port=MEMCACHED_PORT)
            for i in range(clients)]
        for port_name in measure_ports:
            host.port(port_name).on_egress = self._on_forwarded
        sim.process(self._run())

    def _zipf_key(self) -> str:
        rank = int(self._rng.zipf(self.zipf_s))
        return f"key{(rank - 1) % self.key_space}"

    def _on_forwarded(self, packet: Packet) -> None:
        if "memcached_key" not in packet.annotations:
            return
        self.forwarded += 1
        proxy_ns = self.sim.now - packet.created_at
        self.latency.record(proxy_ns + self.server_rtt_ns)

    def _run(self):
        mean_gap = S / self.requests_per_second
        while True:
            flow = self._flows[self.sent % len(self._flows)]
            request = MemcachedRequest(command="get", key=self._zipf_key())
            payload = request.serialize()
            packet = Packet(flow=flow,
                            size=max(64, request.wire_length() + 42),
                            payload=payload, created_at=self.sim.now)
            self.host.inject(self.ingress_port, packet)
            self.sent += 1
            yield self.sim.timeout(
                max(1, round(self._rng.exponential(mean_gap))))
