"""Measurement instrumentation: latency, throughput, time series, reports."""

from repro.metrics.controlplane import ControlPlaneMonitor, aggregate_miss_rate
from repro.metrics.eventlog import (
    ControlEvent,
    EventLog,
    mean_time_to_repair_ns,
    recovery_spans,
)
from repro.metrics.latency import LatencyRecorder
from repro.metrics.reporting import (
    comparison_table,
    control_plane_counters,
    counters_table,
    series_table,
)
from repro.metrics.throughput import ThroughputMeter
from repro.metrics.timeseries import TimeSeries

__all__ = [
    "ControlEvent",
    "ControlPlaneMonitor",
    "EventLog",
    "LatencyRecorder",
    "ThroughputMeter",
    "TimeSeries",
    "aggregate_miss_rate",
    "comparison_table",
    "control_plane_counters",
    "counters_table",
    "mean_time_to_repair_ns",
    "recovery_spans",
    "series_table",
]
