"""Measurement instrumentation: latency, throughput, time series, reports."""

from repro.metrics.eventlog import ControlEvent, EventLog
from repro.metrics.latency import LatencyRecorder
from repro.metrics.reporting import (
    comparison_table,
    counters_table,
    series_table,
)
from repro.metrics.throughput import ThroughputMeter
from repro.metrics.timeseries import TimeSeries

__all__ = [
    "ControlEvent",
    "EventLog",
    "LatencyRecorder",
    "ThroughputMeter",
    "TimeSeries",
    "comparison_table",
    "counters_table",
    "series_table",
]
