"""A minimal (time, value) series with resampling, for timeline plots."""

from __future__ import annotations

import bisect

from repro.sim.units import S


class TimeSeries:
    """Append-only (timestamp_ns, value) series."""

    def __init__(self, name: str = "series") -> None:
        self.name = name
        self._times: list[int] = []
        self._values: list[float] = []

    def append(self, now_ns: int, value: float) -> None:
        if self._times and now_ns < self._times[-1]:
            raise ValueError("timestamps must be non-decreasing")
        self._times.append(now_ns)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    def points(self) -> list[tuple[float, float]]:
        """(seconds, value) pairs."""
        return [(t / S, v) for t, v in zip(self._times, self._values, strict=True)]

    def last(self) -> float:
        """The most recent value."""
        if not self._values:
            raise ValueError(f"{self.name}: empty series")
        return self._values[-1]

    def max_value(self) -> float:
        """The largest value seen (e.g. a queue-depth peak)."""
        if not self._values:
            raise ValueError(f"{self.name}: empty series")
        return max(self._values)

    def mean(self) -> float:
        """Unweighted mean over all samples."""
        if not self._values:
            raise ValueError(f"{self.name}: empty series")
        return sum(self._values) / len(self._values)

    def value_at(self, now_ns: int) -> float:
        """Step interpolation: the last value at or before ``now_ns``."""
        if not self._times:
            raise ValueError(f"{self.name}: empty series")
        index = bisect.bisect_right(self._times, now_ns) - 1
        if index < 0:
            raise ValueError(f"{self.name}: no value at {now_ns}")
        return self._values[index]

    def window_mean(self, start_ns: int, stop_ns: int) -> float:
        lo = bisect.bisect_left(self._times, start_ns)
        hi = bisect.bisect_left(self._times, stop_ns)
        if hi <= lo:
            raise ValueError("no points in window")
        window = self._values[lo:hi]
        return sum(window) / len(window)
