"""Windowed throughput measurement (what the traffic generator reports)."""

from __future__ import annotations

from repro.net.packet import wire_bits
from repro.sim.units import MS, S


class ThroughputMeter:
    """Counts frames into fixed windows; reports Gbps/Mbps/pps series."""

    def __init__(self, window_ns: int = 100 * MS,
                 count_wire_overhead: bool = True) -> None:
        if window_ns <= 0:
            raise ValueError("window must be positive")
        self.window_ns = window_ns
        self.count_wire_overhead = count_wire_overhead
        self._windows: dict[int, list[int]] = {}  # index -> [bits, packets]
        self.total_packets = 0
        self.total_bits = 0
        self.first_ns: int | None = None
        self.last_ns: int | None = None

    def record(self, now_ns: int, size_bytes: int,
               packets: int = 1) -> None:
        bits = (wire_bits(size_bytes) if self.count_wire_overhead
                else size_bytes * 8) * packets
        index = now_ns // self.window_ns
        window = self._windows.setdefault(index, [0, 0])
        window[0] += bits
        window[1] += packets
        self.total_packets += packets
        self.total_bits += bits
        if self.first_ns is None:
            self.first_ns = now_ns
        self.last_ns = now_ns

    def gbps_series(self) -> list[tuple[float, float]]:
        """(window_start_seconds, Gbps) per window, sorted."""
        return [(index * self.window_ns / S,
                 bits / self.window_ns)
                for index, (bits, _packets)
                in sorted(self._windows.items())]

    def pps_series(self) -> list[tuple[float, float]]:
        return [(index * self.window_ns / S,
                 packets * S / self.window_ns)
                for index, (_bits, packets)
                in sorted(self._windows.items())]

    def mean_gbps(self, start_ns: int | None = None,
                  stop_ns: int | None = None) -> float:
        """Average over [start, stop) or the full observed span.

        Accounting is at window granularity: every window overlapping the
        requested span contributes all of its bits.
        """
        if self.first_ns is None:
            return 0.0
        start = self.first_ns if start_ns is None else start_ns
        stop = (self.last_ns + 1) if stop_ns is None else stop_ns
        bits = sum(
            window_bits
            for index, (window_bits, _p) in self._windows.items()
            if (index * self.window_ns < stop
                and (index + 1) * self.window_ns > start))
        elapsed = max(1, stop - start)
        return bits / elapsed
