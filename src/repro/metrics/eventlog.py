"""A structured control-plane event log.

Fig. 2's numbered steps, as data: rule installs, cross-layer messages,
VM launches, alarms, validation rejections.  Attach one log to the
managers / app / orchestrator (``component.event_log = log``) and every
control-plane action leaves a timestamped record — the observability
surface a real deployment of this system would need, and a convenient
assertion target in tests.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.sim.simulator import Simulator
from repro.sim.units import S


@dataclasses.dataclass(frozen=True)
class ControlEvent:
    """One control-plane action."""

    timestamp_ns: int
    category: str
    host: str
    detail: tuple[tuple[str, typing.Any], ...]

    def get(self, key: str, default: typing.Any = None) -> typing.Any:
        for name, value in self.detail:
            if name == key:
                return value
        return default

    def __str__(self) -> str:
        fields = " ".join(f"{name}={value}" for name, value in self.detail)
        return (f"[{self.timestamp_ns / S:10.6f}s] "
                f"{self.category:<18} host={self.host or '-':<8} {fields}")


class EventLog:
    """Append-only, queryable log of control events."""

    def __init__(self, sim: Simulator, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.events: list[ControlEvent] = []
        self.dropped = 0

    def record(self, category: str, host: str = "",
               **detail: typing.Any) -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(ControlEvent(
            timestamp_ns=self.sim.now, category=category, host=host,
            detail=tuple(sorted(detail.items()))))

    def __len__(self) -> int:
        return len(self.events)

    def filter(self, category: str | None = None,
               host: str | None = None,
               since_ns: int = 0) -> list[ControlEvent]:
        return [event for event in self.events
                if (category is None or event.category == category)
                and (host is None or event.host == host)
                and event.timestamp_ns >= since_ns]

    def categories(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def format(self, **filter_kw: typing.Any) -> str:
        """Readable timeline (optionally filtered)."""
        return "\n".join(str(event)
                         for event in self.filter(**filter_kw))


def recovery_spans(events: typing.Iterable[ControlEvent],
                   down_category: str, up_category: str,
                   key: str | None = None
                   ) -> list[tuple[typing.Any, int, int]]:
    """Pair failure/recovery events into ``(identity, down_ns, up_ns)``
    spans — the MTTR raw material.

    ``key`` names the detail field identifying *what* failed (e.g.
    ``"shard"`` for ``controller_shard_down`` / ``_restored`` pairs);
    ``None`` treats every down/up pair as one global resource.  Unpaired
    downs (never recovered within the log) are omitted.
    """
    open_spans: dict[typing.Any, int] = {}
    spans: list[tuple[typing.Any, int, int]] = []
    for event in events:
        identity = event.get(key) if key is not None else None
        if event.category == down_category:
            open_spans.setdefault(identity, event.timestamp_ns)
        elif event.category == up_category and identity in open_spans:
            spans.append((identity, open_spans.pop(identity),
                          event.timestamp_ns))
    return spans


def mean_time_to_repair_ns(events: typing.Iterable[ControlEvent],
                           down_category: str, up_category: str,
                           key: str | None = None) -> int:
    """Mean down→up duration over :func:`recovery_spans`, rounded to
    whole nanoseconds (0 when no complete span exists)."""
    spans = recovery_spans(events, down_category, up_category, key=key)
    if not spans:
        return 0
    return round(sum(up - down for _identity, down, up in spans)
                 / len(spans))


def merge_events(per_shard: typing.Sequence[
        typing.Sequence[ControlEvent]]) -> list[ControlEvent]:
    """Deterministically merge per-shard event streams.

    Order: timestamp first, then shard id, then each shard's own append
    order.  Every input stream is already time-sorted (append-only logs
    of a monotonic clock), so the merge is total and reproducible — the
    same shard outputs always produce the same global timeline, whatever
    order the shards finished in.
    """
    merged: list[tuple[int, int, int, ControlEvent]] = []
    for shard_id, events in enumerate(per_shard):
        merged.extend((event.timestamp_ns, shard_id, position, event)
                      for position, event in enumerate(events))
    merged.sort(key=lambda item: item[:3])
    return [item[3] for item in merged]
