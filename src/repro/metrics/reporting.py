"""Formatting helpers for paper-vs-measured benchmark reports."""

from __future__ import annotations

import typing


def comparison_table(title: str,
                     rows: typing.Sequence[tuple[str, str, str]],
                     headers: tuple[str, str, str] = (
                         "metric", "paper", "measured")) -> str:
    """Three-column paper-vs-measured table as fixed-width text."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def fmt(cells: typing.Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(width)
                         for cell, width in zip(cells, widths))

    lines = [f"== {title} ==", fmt(headers),
             fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def series_table(title: str, columns: dict[str, typing.Sequence],
                 float_format: str = "{:.3f}") -> str:
    """Multi-column numeric series (one row per index position)."""
    names = list(columns)
    length = len(columns[names[0]])
    for name in names:
        if len(columns[name]) != length:
            raise ValueError("all series must share a length")

    def render(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    cells = [[render(columns[name][row]) for name in names]
             for row in range(length)]
    widths = [max(len(name), *(len(row[index]) for row in cells))
              if cells else len(name)
              for index, name in enumerate(names)]
    lines = [f"== {title} ==",
             "  ".join(name.ljust(width)
                       for name, width in zip(names, widths)),
             "  ".join("-" * width for width in widths)]
    for row in cells:
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)
