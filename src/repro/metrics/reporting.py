"""Formatting helpers for paper-vs-measured benchmark reports."""

from __future__ import annotations

import typing


def comparison_table(title: str,
                     rows: typing.Sequence[tuple[str, str, str]],
                     headers: tuple[str, str, str] = (
                         "metric", "paper", "measured")) -> str:
    """Three-column paper-vs-measured table as fixed-width text."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def fmt(cells: typing.Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(width)
                         for cell, width in zip(cells, widths, strict=True))

    lines = [f"== {title} ==", fmt(headers),
             fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def counters_table(title: str,
                   counters: dict[str, int | float],
                   float_format: str = "{:.3f}") -> str:
    """Two-column name/value table for counter dumps.

    Renders e.g. the NIC drop counters (``nic_rx_dropped``,
    ``nic_link_dropped``) and batch-occupancy summaries from
    :meth:`HostStats.summary` / :meth:`HostStats.batch_summary`.
    """
    def render(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rows = [(name, render(value)) for name, value in counters.items()]
    name_width = max((len(name) for name, _ in rows), default=len("counter"))
    name_width = max(name_width, len("counter"))
    value_width = max((len(value) for _, value in rows), default=len("value"))
    value_width = max(value_width, len("value"))
    lines = [f"== {title} ==",
             f"{'counter'.ljust(name_width)}  {'value'.ljust(value_width)}",
             f"{'-' * name_width}  {'-' * value_width}"]
    lines.extend(f"{name.ljust(name_width)}  {value.rjust(value_width)}"
                 for name, value in rows)
    return "\n".join(lines)


def control_plane_counters(plane: typing.Any,
                           hosts: typing.Iterable[typing.Any] = (),
                           elapsed_ns: int | None = None
                           ) -> dict[str, int | float]:
    """Flattened control-plane counters ready for :func:`counters_table`.

    One dict mixing the hosts' miss-classifier rollup (reactive miss
    rate, proactive/reactive hit counts) with per-shard controller load
    (requests, queue depth, utilization).  ``plane`` may be a
    :class:`~repro.control.plane.ControlPlane` or a plain
    :class:`~repro.control.controller.SdnController` (one shard).
    """
    from repro.metrics.controlplane import aggregate_miss_rate

    shards = list(getattr(plane, "shards", None) or (plane,))
    rate, misses, setups = aggregate_miss_rate(hosts)
    hits_proactive = 0
    hits_reactive = 0
    fallbacks = 0
    for host in hosts:
        stats = host.stats if hasattr(host, "stats") else host
        hits_proactive += stats.proactive_hits
        hits_reactive += stats.reactive_hits
        fallbacks += stats.miss_fallbacks
    counters: dict[str, int | float] = {
        "flow_setups": setups,
        "proactive_hits": hits_proactive,
        "reactive_hits": hits_reactive,
        "reactive_misses": misses,
        "miss_fallbacks": fallbacks,
        "reactive_miss_rate": rate,
        "control_shards": len(shards),
    }
    for index, shard in enumerate(shards):
        counters[f"shard{index}_requests"] = shard.stats.requests
        counters[f"shard{index}_queue_depth"] = shard.queue_depth
        counters[f"shard{index}_max_queue"] = shard.stats.max_queue
        if elapsed_ns is not None:
            counters[f"shard{index}_utilization"] = (
                shard.stats.utilization(elapsed_ns))
    stats = getattr(plane, "stats", None)
    if stats is not None and hasattr(stats, "failovers"):
        counters["failovers"] = stats.failovers
        counters["transactions"] = stats.transactions
        counters["shard_outages"] = stats.outages
    return counters


def series_table(title: str, columns: dict[str, typing.Sequence],
                 float_format: str = "{:.3f}") -> str:
    """Multi-column numeric series (one row per index position)."""
    names = list(columns)
    length = len(columns[names[0]])
    for name in names:
        if len(columns[name]) != length:
            raise ValueError("all series must share a length")

    def render(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    cells = [[render(columns[name][row]) for name in names]
             for row in range(length)]
    widths = [max(len(name), *(len(row[index]) for row in cells))
              if cells else len(name)
              for index, name in enumerate(names)]
    lines = [f"== {title} ==",
             "  ".join(name.ljust(width)
                       for name, width in zip(names, widths, strict=True)),
             "  ".join("-" * width for width in widths)]
    for row in cells:
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths, strict=True)))
    return "\n".join(lines)
