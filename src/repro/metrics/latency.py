"""Round-trip latency collection: means, percentiles, CDFs.

Statistics run on numpy when available and on pure stdlib arithmetic
otherwise, with identical results: the fallback percentile implements
numpy's default ``'linear'`` interpolation and the fallback CDF picks
the same ``linspace`` sample indices.
"""

from __future__ import annotations


from repro._compat import HAVE_NUMPY, numpy as np
from repro.sim.units import US


class LatencyRecorder:
    """Accumulates latency samples (nanoseconds)."""

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self._samples: list[int] = []

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self._samples.append(latency_ns)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples_ns(self) -> list[int]:
        return list(self._samples)

    def _require_samples(self) -> list[int]:
        if not self._samples:
            raise ValueError(f"{self.name}: no samples recorded")
        return self._samples

    def mean_us(self) -> float:
        samples = self._require_samples()
        return (sum(samples) / len(samples)) / US

    def min_us(self) -> float:
        return min(self._require_samples()) / US

    def max_us(self) -> float:
        return max(self._require_samples()) / US

    def percentile_us(self, percentile: float) -> float:
        samples = self._require_samples()
        if HAVE_NUMPY:
            data = np.asarray(samples, dtype=np.float64)
            return float(np.percentile(data, percentile)) / US
        return _percentile_linear(sorted(samples), percentile) / US

    def cdf_points(self, points: int = 100
                   ) -> list[tuple[float, float]]:
        """(latency_us, cumulative_fraction) pairs for CDF plots (Fig. 6)."""
        samples = self._require_samples()
        n = len(samples)
        data = sorted(float(sample) / US for sample in samples)
        fractions = [(index + 1) / n for index in range(n)]
        if n <= points:
            return list(zip(data, fractions, strict=True))
        # numpy linspace(0, n-1, points).astype(int) index selection.
        step = (n - 1) / (points - 1)
        indices = [int(index * step) for index in range(points)]
        return [(data[index], fractions[index]) for index in indices]

    def summary(self) -> dict[str, float]:
        return {
            "count": float(len(self._samples)),
            "avg_us": self.mean_us(),
            "min_us": self.min_us(),
            "max_us": self.max_us(),
            "p50_us": self.percentile_us(50),
            "p99_us": self.percentile_us(99),
        }


def _percentile_linear(ordered: list[int], percentile: float) -> float:
    """numpy's default ``'linear'`` percentile on a pre-sorted list."""
    n = len(ordered)
    if n == 1:
        return float(ordered[0])
    rank = (n - 1) * percentile / 100.0
    lower = int(rank)
    upper = min(lower + 1, n - 1)
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight
