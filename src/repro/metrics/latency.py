"""Round-trip latency collection: means, percentiles, CDFs."""

from __future__ import annotations


import numpy as np

from repro.sim.units import US


class LatencyRecorder:
    """Accumulates latency samples (nanoseconds)."""

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self._samples: list[int] = []

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self._samples.append(latency_ns)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples_ns(self) -> list[int]:
        return list(self._samples)

    def _require_samples(self) -> np.ndarray:
        if not self._samples:
            raise ValueError(f"{self.name}: no samples recorded")
        return np.asarray(self._samples, dtype=np.float64)

    def mean_us(self) -> float:
        return float(self._require_samples().mean()) / US

    def min_us(self) -> float:
        return float(self._require_samples().min()) / US

    def max_us(self) -> float:
        return float(self._require_samples().max()) / US

    def percentile_us(self, percentile: float) -> float:
        return float(np.percentile(self._require_samples(),
                                   percentile)) / US

    def cdf_points(self, points: int = 100
                   ) -> list[tuple[float, float]]:
        """(latency_us, cumulative_fraction) pairs for CDF plots (Fig. 6)."""
        data = np.sort(self._require_samples()) / US
        fractions = np.arange(1, len(data) + 1) / len(data)
        if len(data) <= points:
            return list(zip(data.tolist(), fractions.tolist(), strict=True))
        indices = np.linspace(0, len(data) - 1, points).astype(int)
        return list(zip(data[indices].tolist(),
                        fractions[indices].tolist(), strict=True))

    def summary(self) -> dict[str, float]:
        return {
            "count": float(len(self._samples)),
            "avg_us": self.mean_us(),
            "min_us": self.min_us(),
            "max_us": self.max_us(),
            "p50_us": self.percentile_us(50),
            "p99_us": self.percentile_us(99),
        }
