"""Control-plane observability: per-shard load and the reactive miss rate.

The two quantities the distributed control plane is supposed to move
(Figs. 1 and 10): how hard each controller shard works — utilization and
queue depth over time — and what fraction of flow setups still take the
reactive slow path once proactive pre-population covers the rest.

Attach a monitor to a :class:`~repro.control.plane.ControlPlane` (a
plain :class:`~repro.control.controller.SdnController` works too — it is
treated as one shard) and the hosts whose miss classifiers feed the
rate::

    monitor = ControlPlaneMonitor(sim, plane, hosts=app.hosts.values())
    monitor.start(interval_ns=1 * MS)
    sim.run(until=...)
    print(counters_table("control plane", monitor.summary()))
"""

from __future__ import annotations

import typing

from repro.metrics.timeseries import TimeSeries
from repro.sim.simulator import Simulator
from repro.sim.units import MS


def aggregate_miss_rate(hosts: typing.Iterable[typing.Any]
                        ) -> tuple[float, int, int]:
    """Network-wide ``(miss_rate, reactive_misses, flow_setups)`` over
    the hosts' miss classifiers (:class:`HostStats`)."""
    misses = 0
    setups = 0
    for host in hosts:
        stats = host.stats if hasattr(host, "stats") else host
        misses += stats.reactive_misses
        setups += stats.flow_setups()
    return (misses / setups if setups else 0.0), misses, setups


class ControlPlaneMonitor:
    """Periodic sampler: per-shard utilization/queue-depth timeseries
    plus the aggregate reactive-miss-rate series."""

    def __init__(self, sim: Simulator, plane: typing.Any,
                 hosts: typing.Iterable[typing.Any] = ()) -> None:
        self.sim = sim
        self.plane = plane
        self.hosts = list(hosts)
        self._shards = list(getattr(plane, "shards", None) or (plane,))
        count = len(self._shards)
        self.utilization = [TimeSeries(f"shard{i}/utilization")
                            for i in range(count)]
        self.queue_depth = [TimeSeries(f"shard{i}/queue_depth")
                            for i in range(count)]
        self.miss_rate = TimeSeries("reactive_miss_rate")
        self._last_ns = sim.now
        self._last_busy = [shard.stats.busy_ns for shard in self._shards]

    def start(self, interval_ns: int = 1 * MS) -> ControlPlaneMonitor:
        if interval_ns <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim.process(self._loop(interval_ns))
        return self

    def _loop(self, interval_ns: int):
        while True:
            yield self.sim.timeout(interval_ns)
            self.sample()

    def sample(self) -> None:
        """Take one sample now (the loop calls this; tests may too)."""
        now = self.sim.now
        window = now - self._last_ns
        for index, shard in enumerate(self._shards):
            busy = shard.stats.busy_ns
            if window > 0:
                self.utilization[index].append(
                    now, (busy - self._last_busy[index]) / window)
            self._last_busy[index] = busy
            self.queue_depth[index].append(now, shard.queue_depth)
        rate, _misses, _setups = aggregate_miss_rate(self.hosts)
        self.miss_rate.append(now, rate)
        self._last_ns = now

    def summary(self) -> dict[str, int | float]:
        """Scalar rollup for :func:`repro.metrics.reporting.
        counters_table`: final miss rate, setup totals, and per-shard
        load."""
        rate, misses, setups = aggregate_miss_rate(self.hosts)
        out: dict[str, int | float] = {
            "reactive_miss_rate": rate,
            "reactive_misses": misses,
            "flow_setups": setups,
        }
        for index, shard in enumerate(self._shards):
            out[f"shard{index}_requests"] = shard.stats.requests
            out[f"shard{index}_queue_depth"] = shard.queue_depth
            out[f"shard{index}_max_queue"] = shard.stats.max_queue
            out[f"shard{index}_utilization"] = (
                shard.stats.utilization(self.sim.now))
        return out
