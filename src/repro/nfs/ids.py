"""Signature-based intrusion detection (the IDS of §2.2).

Scans packet payloads for "malicious signatures such as SQL exploits in
HTTP packets".  Detection cost scales with payload length — the kind of
data-dependent processing §4.2's queue-length load balancing targets.
"""

from __future__ import annotations

import typing

from repro.dataplane.actions import Verdict
from repro.net.packet import Packet
from repro.nfs.base import NetworkFunction, NfContext

DEFAULT_SIGNATURES = (
    "' OR 1=1",
    "UNION SELECT",
    "DROP TABLE",
    "<script>",
    "../../etc/passwd",
)


class IntrusionDetector(NetworkFunction):
    """Payload signature scanner.

    On a match the packet is marked suspicious; if ``alert_service`` is set
    (the tightly-coupled IDS+Scrubber pairing of §3.4), the packet is
    diverted there, and **subsequent packets of the flow** are also flagged
    via per-flow state.
    """

    read_only = True

    def __init__(self, service_id: str,
                 signatures: typing.Sequence[str] = DEFAULT_SIGNATURES,
                 alert_service: str | None = None,
                 scan_ns_per_byte: float = 0.5) -> None:
        super().__init__(service_id)
        self.signatures = tuple(signatures)
        self.alert_service = alert_service
        self.scan_ns_per_byte = scan_ns_per_byte
        self.alerts = 0
        self.flagged_flows: set = set()

    def processing_cost_ns(self, packet: Packet, ctx: NfContext) -> int:
        return max(20, round(len(packet.payload)
                             * self.scan_ns_per_byte))

    def _is_malicious(self, packet: Packet) -> bool:
        if packet.flow in self.flagged_flows:
            return True
        payload = packet.payload
        return any(signature in payload for signature in self.signatures)

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        if self._is_malicious(packet):
            self.alerts += 1
            self.flagged_flows.add(packet.flow)
            packet.annotations["ids_alert"] = True
            if self.alert_service is not None:
                return Verdict.send_to_service(self.alert_service)
        return Verdict.default()
