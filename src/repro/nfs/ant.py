"""The Ant Flow Detector (§5.2): ant/elephant classification with rerouting.

"Classifies incoming flows by observing the size and rate of packets over a
two second time interval."  Ant flows (small packets, modest rate) are
rerouted to a faster, lower-latency path via ChangeDefault; when a flow's
phase changes back to elephant behaviour it is returned to the bulk path.
"""

from __future__ import annotations

import dataclasses

from repro.dataplane.actions import Verdict
from repro.dataplane.messages import ChangeDefault
from repro.net.flow import FiveTuple, FlowMatch
from repro.net.packet import Packet
from repro.nfs.base import NetworkFunction, NfContext
from repro.sim.units import S


@dataclasses.dataclass
class _FlowWindow:
    """Per-flow observation accumulator for the current interval."""

    start_ns: int
    packets: int = 0
    bytes: int = 0

    def mean_packet_size(self) -> float:
        return self.bytes / self.packets if self.packets else 0.0

    def rate_mbps(self, now_ns: int) -> float:
        elapsed = max(1, now_ns - self.start_ns)
        return self.bytes * 8e3 / elapsed  # bytes*8 / ns = Gbps; *1e3 = Mbps


class AntFlowDetector(NetworkFunction):
    """Classifies flows each window and reroutes ants to the fast path."""

    read_only = False  # issues routing changes
    per_packet_cost_ns = 45

    def __init__(self, service_id: str, fast_target: str,
                 slow_target: str, window_ns: int = 2 * S,
                 ant_max_packet_size: int = 256,
                 ant_max_rate_mbps: float = 100.0) -> None:
        super().__init__(service_id)
        self.fast_target = fast_target
        self.slow_target = slow_target
        self.window_ns = window_ns
        self.ant_max_packet_size = ant_max_packet_size
        self.ant_max_rate_mbps = ant_max_rate_mbps
        self._windows: dict[FiveTuple, _FlowWindow] = {}
        self.classification: dict[FiveTuple, str] = {}
        self.reclassifications = 0

    def _classify(self, window: _FlowWindow, now_ns: int) -> str:
        small = window.mean_packet_size() <= self.ant_max_packet_size
        slow = window.rate_mbps(now_ns) <= self.ant_max_rate_mbps
        return "ant" if (small and slow) else "elephant"

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        flow = packet.flow
        window = self._windows.get(flow)
        if window is None:
            window = _FlowWindow(start_ns=ctx.now)
            self._windows[flow] = window
        window.packets += 1
        window.bytes += packet.size
        if ctx.now - window.start_ns >= self.window_ns:
            label = self._classify(window, ctx.now)
            self._windows[flow] = _FlowWindow(start_ns=ctx.now)
            previous = self.classification.get(flow)
            if label != previous:
                self.classification[flow] = label
                self.reclassifications += 1
                target = (self.fast_target if label == "ant"
                          else self.slow_target)
                ctx.send_message(ChangeDefault(
                    sender_service=self.service_id,
                    flows=FlowMatch.exact(flow),
                    service=self.service_id,
                    target=target))
        return Verdict.default()
