"""The Sampler NF from the anomaly-detection use case (§2.2).

Takes a subset of incoming traffic — "either random or by shallow header
inspection" — and diverts it for deeper analysis via a non-default edge;
everything else follows the default path untouched.
"""

from __future__ import annotations


from repro.dataplane.actions import Verdict
from repro.net.flow import FlowMatch
from repro.net.packet import Packet
from repro.nfs.base import NetworkFunction, NfContext, action_profile


@action_profile(reads=("src_ip", "dst_ip", "protocol",
                       "src_port", "dst_port"),
                annotations_written=("sampled",), sends=True)
class Sampler(NetworkFunction):
    """Diverts sampled packets to an analysis service.

    ``sample_rate`` selects packets at random; ``header_match`` (when set)
    selects by shallow header inspection instead.  Sampled packets are sent
    to ``analysis_service`` (which must be an allowed next hop in the
    service graph); the rest take the default edge.
    """

    read_only = True
    per_packet_cost_ns = 30

    def __init__(self, service_id: str, analysis_service: str,
                 sample_rate: float = 0.1,
                 header_match: FlowMatch | None = None) -> None:
        super().__init__(service_id)
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be a probability")
        self.analysis_service = analysis_service
        self.sample_rate = sample_rate
        self.header_match = header_match
        self.sampled = 0
        self.passed = 0

    def _selected(self, packet: Packet, rng) -> bool:
        if self.header_match is not None:
            return self.header_match.matches(packet.flow)
        return rng.random() < self.sample_rate

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        if self._selected(packet, ctx.rng):
            self.sampled += 1
            packet.annotations["sampled"] = True
            return Verdict.send_to_service(self.analysis_service)
        self.passed += 1
        return Verdict.default()
