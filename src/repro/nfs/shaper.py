"""A token-bucket traffic shaper NF (the Shaper of the video use case).

"A traffic Shaper, which may limit the flow's rate to meet the desired
network bandwidth level if necessary."  Modeled as a policer: packets
beyond the configured rate are discarded (our NFs cannot hold packets, so
shaping degenerates to policing — the rate-limiting effect the experiment
needs is identical).
"""

from __future__ import annotations

from repro.dataplane.actions import Verdict
from repro.net.flow import FiveTuple
from repro.net.packet import Packet, wire_bits
from repro.nfs.base import NetworkFunction, NfContext
from repro.sim.units import S


class _TokenBucket:
    """Classic token bucket in bits with nanosecond refill."""

    def __init__(self, rate_bps: float, burst_bits: float) -> None:
        self.rate_bps = rate_bps
        self.burst_bits = burst_bits
        self.tokens = burst_bits
        self.last_refill_ns = 0

    def admit(self, bits: int, now_ns: int) -> bool:
        elapsed = now_ns - self.last_refill_ns
        self.last_refill_ns = now_ns
        self.tokens = min(self.burst_bits,
                          self.tokens + elapsed * self.rate_bps / S)
        if self.tokens >= bits:
            self.tokens -= bits
            return True
        return False


class TrafficShaper(NetworkFunction):
    """Rate limiter, aggregate or per-flow."""

    read_only = False  # drops packets

    def __init__(self, service_id: str, rate_mbps: float,
                 burst_kb: float = 64.0, per_flow: bool = False) -> None:
        super().__init__(service_id)
        if rate_mbps <= 0 or burst_kb <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate_bps = rate_mbps * 1e6
        self.burst_bits = burst_kb * 8e3
        self.per_flow = per_flow
        self._aggregate = _TokenBucket(self.rate_bps, self.burst_bits)
        self._buckets: dict[FiveTuple, _TokenBucket] = {}
        self.conformant = 0
        self.policed = 0

    def _bucket(self, flow: FiveTuple) -> _TokenBucket:
        if not self.per_flow:
            return self._aggregate
        bucket = self._buckets.get(flow)
        if bucket is None:
            bucket = _TokenBucket(self.rate_bps, self.burst_bits)
            bucket.last_refill_ns = 0
            self._buckets[flow] = bucket
        return bucket

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        bucket = self._bucket(packet.flow)
        if bucket.admit(wire_bits(packet.size), ctx.now):
            self.conformant += 1
            return Verdict.default()
        self.policed += 1
        return Verdict.discard()
