"""A stateful source-NAT network function.

A classic middlebox with exactly the "interdependence between packets"
the paper's background section calls out: the translation chosen for a
flow's first packet must be applied to all subsequent packets, and reply
traffic must reverse-translate — per-NF external state of the
"Partitioned" kind (§3.1).
"""

from __future__ import annotations

import dataclasses

from repro.dataplane.actions import Verdict
from repro.net.flow import FiveTuple
from repro.net.packet import Packet
from repro.nfs.base import NetworkFunction, NfContext


class NatError(Exception):
    """Port pool exhausted or translation conflict."""


class SourceNat(NetworkFunction):
    """Rewrites private source addresses to one public IP + port."""

    read_only = False
    per_packet_cost_ns = 70

    def __init__(self, service_id: str, public_ip: str,
                 port_range: tuple[int, int] = (20000, 60000)) -> None:
        super().__init__(service_id)
        low, high = port_range
        if not 0 < low < high <= 65535:
            raise ValueError(f"bad port range {port_range}")
        self.public_ip = public_ip
        self._next_port = low
        self._port_limit = high
        # private flow -> allocated public source port
        self._forward: dict[FiveTuple, int] = {}
        # (public port, remote ip, remote port) -> private flow
        self._reverse: dict[tuple[int, str, int], FiveTuple] = {}
        self.translations = 0
        self.reverse_translations = 0

    @property
    def active_bindings(self) -> int:
        return len(self._forward)

    def _allocate(self, flow: FiveTuple) -> int:
        # The pool is [low, high): high is exclusive.
        if self._next_port >= self._port_limit:
            raise NatError("NAT port pool exhausted")
        port = self._next_port
        self._next_port += 1
        self._forward[flow] = port
        self._reverse[(port, flow.dst_ip, flow.dst_port)] = flow
        return port

    def release(self, flow: FiveTuple) -> None:
        """Tear down a binding (e.g. on flow expiry)."""
        port = self._forward.pop(flow, None)
        if port is not None:
            self._reverse.pop((port, flow.dst_ip, flow.dst_port), None)

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        flow = packet.flow
        reverse_key = (flow.dst_port, flow.src_ip, flow.src_port)
        if flow.dst_ip == self.public_ip and reverse_key in self._reverse:
            # Reply traffic: restore the private destination.
            private = self._reverse[reverse_key]
            packet.rewrite_destination(private.src_ip, private.src_port)
            self.reverse_translations += 1
            return Verdict.default()
        port = self._forward.get(flow)
        if port is None:
            port = self._allocate(flow)
        packet.annotations["nat_original_src"] = (flow.src_ip,
                                                  flow.src_port)
        # Outbound: rewrite the source in place (zero-copy, like the
        # memcached proxy's destination rewrite).
        packet.flow = FiveTuple(src_ip=self.public_ip, dst_ip=flow.dst_ip,
                                protocol=flow.protocol, src_port=port,
                                dst_port=flow.dst_port)
        assert packet.ip is not None
        packet.ip = dataclasses.replace(packet.ip,
                                        src_ip=self.public_ip)
        if packet.l4 is not None:
            packet.l4 = dataclasses.replace(packet.l4, src_port=port)
        self.translations += 1
        return Verdict.default()
