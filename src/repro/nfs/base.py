"""The NF programming model (the paper's SDNFV-User library, §4.3).

A network function is "a standard user space application" that receives
packets from its ring buffer, may keep arbitrary internal state, and
returns one of three actions per packet (§3.4).  It can also send
cross-layer messages (SkipMe / RequestMe / ChangeDefault / Message) through
the NF Manager to update flow rules.

Subclass :class:`NetworkFunction` and override :meth:`process`; return a
:class:`~repro.dataplane.actions.Verdict`.  Heavy per-packet computation is
declared via :meth:`processing_cost_ns` so the VM thread charges simulated
time for it.
"""

from __future__ import annotations

import typing

from repro.dataplane.actions import Verdict
from repro.dataplane.messages import NfMessage
from repro.net.packet import Packet

if typing.TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.net.batch import PacketBatch
    from repro.sim.simulator import Simulator


def action_profile(*, reads: typing.Sequence[str] = (),
                   writes: typing.Sequence[str] = (),
                   annotations_read: typing.Sequence[str] = (),
                   annotations_written: typing.Sequence[str] = (),
                   drops: bool = False, sends: bool = False,
                   messages: bool = False) -> typing.Callable[[type], type]:
    """Declare an NF class's action profile explicitly.

    The declaration takes precedence over AST inference everywhere a
    profile is consulted (``auto_parallel_layout``, the merge stage),
    and lint rule NF002 checks it *covers* the inferred effects — an NF
    may declare more than it does (conservative) but never less.

    Field names come from :data:`repro.analysis.profiles.PACKET_FIELDS`
    (``src_ip``, ``dst_ip``, ``protocol``, ``src_port``, ``dst_port``,
    ``dscp``, ``ttl``, ``payload``, ``size``).  The raw declaration is
    stored on the class; :func:`repro.analysis.profiles.declared_profile`
    turns it into an ``ActionProfile`` — this module deliberately never
    imports the analysis package.
    """
    declaration = {
        "reads": tuple(reads),
        "writes": tuple(writes),
        "annotations_read": tuple(annotations_read),
        "annotations_written": tuple(annotations_written),
        "drops": drops,
        "sends": sends,
        "messages": messages,
    }

    def decorate(cls: type) -> type:
        cls.__sdnfv_declared_profile__ = declaration
        return cls

    return decorate


class NfContext:
    """What an NF can see and do, scoped to its VM.

    Provides the simulation clock, a per-VM random stream, and the
    message channel to the NF Manager.  The manager reference is kept
    private; NFs interact with it only through :meth:`send_message`,
    matching the paper's design where NFs never touch the flow table
    directly.
    """

    def __init__(self, sim: Simulator, service_id: str, vm_id: str,
                 submit_message: typing.Callable[[NfMessage], None],
                 rng: np.random.Generator) -> None:
        self.sim = sim
        self.service_id = service_id
        self.vm_id = vm_id
        self.rng = rng
        self._submit_message = submit_message

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self.sim.now

    def send_message(self, message: NfMessage) -> None:
        """Send a cross-layer message to the NF Manager (asynchronous)."""
        if message.sender_service != self.service_id:
            raise ValueError(
                f"message claims sender {message.sender_service!r} but this "
                f"NF is {self.service_id!r}")
        self._submit_message(message)


class NetworkFunction:
    """Base class for all network functions.

    Attributes:
        service_id: the abstract service this NF implements (§3.2's layer
            of indirection between services and VM addresses).
        read_only: declared at registration; the NF Manager only permits
            read-only NFs to share a packet in parallel (§3.3).
        per_packet_cost_ns: default extra compute charged per packet on top
            of the VM's base handling cost.
    """

    read_only: bool = False
    per_packet_cost_ns: int = 0

    def __init__(self, service_id: str) -> None:
        if not service_id:
            raise ValueError("an NF needs a service_id")
        self.service_id = service_id
        self.packets_seen = 0

    def on_register(self, ctx: NfContext) -> None:
        """Called once when the VM advertises itself to the NF Manager."""

    def processing_cost_ns(self, packet: Packet, ctx: NfContext) -> int:
        """Simulated compute charged for this packet (override for
        data-dependent costs, e.g. payload scanning)."""
        return self.per_packet_cost_ns

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        """Handle one packet and return the requested action."""
        raise NotImplementedError

    def handle_packet(self, packet: Packet, ctx: NfContext) -> Verdict:
        """Wrapper the VM calls: bookkeeping + the NF's own logic."""
        self.packets_seen += 1
        verdict = self.process(packet, ctx)
        if not isinstance(verdict, Verdict):
            raise TypeError(
                f"{type(self).__name__}.process returned "
                f"{type(verdict).__name__}, expected Verdict")
        return verdict

    def process_batch(self, batch: PacketBatch, ctx: NfContext) -> Verdict:
        """Handle a whole columnar batch with one verdict.

        Opt-in: NFs that can decide from the batch columns (or one pass
        over uniform-flow metadata) override this, and the columnar VM
        loop then skips per-packet materialization entirely.  NFs that
        leave it unimplemented get rematerialized ``Packet`` objects via
        :meth:`process` — correct, just slower (counted in
        ``HostStats.object_fallbacks``).  Only called when
        :meth:`processing_cost_ns` is not overridden either, so flat
        per-packet costs stay a single multiply.
        """
        raise NotImplementedError

    def handle_batch(self, batch: PacketBatch, ctx: NfContext) -> Verdict:
        """Wrapper the columnar VM loop calls — bookkeeping identical
        to ``batch.count`` :meth:`handle_packet` calls."""
        self.packets_seen += batch.count
        verdict = self.process_batch(batch, ctx)
        if not isinstance(verdict, Verdict):
            raise TypeError(
                f"{type(self).__name__}.process_batch returned "
                f"{type(verdict).__name__}, expected Verdict")
        return verdict

    def __repr__(self) -> str:
        return f"<{type(self).__name__} service={self.service_id!r}>"
