"""DDoS detection and mitigation NFs (§2.2 use case, §5.2 experiment).

The detector aggregates traffic volume **across flows** by source prefix
within a monitoring window — exactly the multi-flow data-plane state the
paper argues the SDN controller cannot efficiently hold.  When the rate
from a prefix exceeds the threshold it raises an alarm UserMessage, which
the SDNFV Application turns into a Scrubber VM boot; the scrubber then
issues RequestMe so all traffic is rerouted through it (§5.2's timeline).
"""

from __future__ import annotations

from repro.dataplane.actions import Verdict
from repro.dataplane.messages import RequestMe, UserMessage
from repro.net.flow import FlowMatch
from repro.net.headers import ip_to_int, ip_to_str
from repro.net.packet import Packet, wire_bits
from repro.nfs.base import NetworkFunction, NfContext
from repro.sim.units import MS

DDOS_ALARM_KEY = "ddos_alarm"


class DdosDetector(NetworkFunction):
    """Per-prefix rate monitor with a Gbps alarm threshold."""

    read_only = True
    per_packet_cost_ns = 50

    def __init__(self, service_id: str, threshold_gbps: float = 3.2,
                 prefix_bits: int = 16,
                 window_ns: int = 500 * MS) -> None:
        super().__init__(service_id)
        if not 0 < prefix_bits <= 32:
            raise ValueError("prefix_bits must be in (0, 32]")
        if window_ns <= 0:
            raise ValueError("window must be positive")
        self.threshold_gbps = threshold_gbps
        self.prefix_bits = prefix_bits
        self.window_ns = window_ns
        self._window_start = 0
        self._window_bits: dict[int, int] = {}
        self.alarmed_prefixes: set[int] = set()
        self.alarms_sent = 0

    def _prefix(self, packet: Packet) -> int:
        return ip_to_int(packet.flow.src_ip) >> (32 - self.prefix_bits)

    def prefix_match(self, prefix: int) -> FlowMatch:
        """A FlowMatch selecting all sources in an alarmed prefix."""
        base_ip = ip_to_str(prefix << (32 - self.prefix_bits))
        return FlowMatch(src_ip=base_ip, src_prefix_bits=self.prefix_bits)

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        now = ctx.now
        if now - self._window_start >= self.window_ns:
            self._window_start = now
            self._window_bits.clear()
        prefix = self._prefix(packet)
        self._window_bits[prefix] = (self._window_bits.get(prefix, 0)
                                     + wire_bits(packet.size))
        rate_gbps = self._window_bits[prefix] / max(1, self.window_ns)
        if (rate_gbps > self.threshold_gbps
                and prefix not in self.alarmed_prefixes):
            self.alarmed_prefixes.add(prefix)
            self.alarms_sent += 1
            ctx.send_message(UserMessage(
                sender_service=self.service_id,
                key=DDOS_ALARM_KEY,
                value={"prefix": prefix,
                       "prefix_bits": self.prefix_bits,
                       "rate_gbps": rate_gbps,
                       "match": self.prefix_match(prefix)}))
        return Verdict.default()


class DdosScrubber(NetworkFunction):
    """Drops traffic from attack prefixes; passes everything else.

    On registration it sends RequestMe so that nodes with an edge to it
    make it their default next hop (§5.2: "The Scrubber VM sends the
    message RequestMe to the NF manager").
    """

    read_only = False  # terminates malicious flows; not parallel-safe
    per_packet_cost_ns = 200  # detailed inspection

    def __init__(self, service_id: str,
                 attack_matches: list[FlowMatch] | None = None,
                 request_on_register: bool = True) -> None:
        super().__init__(service_id)
        self.attack_matches = list(attack_matches or [])
        self.request_on_register = request_on_register
        self.scrubbed = 0
        self.passed = 0

    def on_register(self, ctx: NfContext) -> None:
        if self.request_on_register:
            ctx.send_message(RequestMe(sender_service=self.service_id,
                                       service=self.service_id))

    def add_attack_match(self, match: FlowMatch) -> None:
        self.attack_matches.append(match)

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        if any(match.matches(packet.flow) for match in self.attack_matches):
            self.scrubbed += 1
            return Verdict.discard()
        self.passed += 1
        return Verdict.default()
