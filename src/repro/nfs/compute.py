"""A compute-intensive NF (the Fig. 6 latency-CDF workload)."""

from __future__ import annotations

from repro.dataplane.actions import Verdict
from repro.net.packet import Packet
from repro.nfs.base import NetworkFunction, NfContext


class ComputeNf(NetworkFunction):
    """Charges a configurable per-packet computation.

    ``cost_ns`` is the mean per-packet work; ``jitter_ns`` adds a uniform
    ±jitter to model data-dependent processing (payload analysis cost
    varies per packet, §4.2).  ``read_only`` is constructor-selectable so
    the same NF exercises both parallel and sequential placement.
    """

    def __init__(self, service_id: str, cost_ns: int,
                 jitter_ns: int = 0, read_only: bool = True) -> None:
        super().__init__(service_id)
        if cost_ns < 0 or jitter_ns < 0:
            raise ValueError("costs must be non-negative")
        if jitter_ns > cost_ns:
            raise ValueError("jitter cannot exceed the mean cost")
        self.cost_ns = cost_ns
        self.jitter_ns = jitter_ns
        self.read_only = read_only

    def processing_cost_ns(self, packet: Packet, ctx: NfContext) -> int:
        if not self.jitter_ns:
            return self.cost_ns
        return int(ctx.rng.integers(self.cost_ns - self.jitter_ns,
                                    self.cost_ns + self.jitter_ns + 1))

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        return Verdict.default()
