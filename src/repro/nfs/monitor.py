"""FlowMonitor: periodic per-flow statistics pushed up the hierarchy.

§3.4 ("NF–SDN Coordination"): the paper wants NFs to "provide generic
statistics such as flow or drop rates" to the SDN tier.  FlowMonitor
counts per-flow packets and bytes and, every reporting window, pushes a
``UserMessage(key="flow_stats")`` whose value is a rate summary — the
SDNFV Application subscribes with ``app.on_message("flow_stats", ...)``.
"""

from __future__ import annotations

import dataclasses

from repro.dataplane.actions import Verdict
from repro.dataplane.messages import UserMessage
from repro.net.flow import FiveTuple
from repro.net.packet import Packet, wire_bits
from repro.nfs.base import NetworkFunction, NfContext
from repro.sim.units import S

FLOW_STATS_KEY = "flow_stats"


@dataclasses.dataclass(frozen=True)
class FlowStatsReport:
    """One reporting window's aggregate."""

    window_start_ns: int
    window_end_ns: int
    flows: int
    packets: int
    bits: int
    top_flow: FiveTuple | None
    top_flow_mbps: float

    @property
    def total_mbps(self) -> float:
        elapsed = max(1, self.window_end_ns - self.window_start_ns)
        return self.bits * 1e3 / elapsed


class FlowMonitor(NetworkFunction):
    """Counts flows and reports rate summaries each window."""

    read_only = True
    per_packet_cost_ns = 35

    def __init__(self, service_id: str,
                 report_interval_ns: int = 1 * S) -> None:
        super().__init__(service_id)
        if report_interval_ns <= 0:
            raise ValueError("report interval must be positive")
        self.report_interval_ns = report_interval_ns
        self._window_start = 0
        self._packets: dict[FiveTuple, int] = {}
        self._bits: dict[FiveTuple, int] = {}
        self.reports_sent = 0

    def _flush(self, ctx: NfContext) -> None:
        now = ctx.now
        top_flow, top_bits = None, -1
        total_bits = 0
        total_packets = 0
        for flow, bits in self._bits.items():
            total_bits += bits
            total_packets += self._packets[flow]
            if bits > top_bits:
                top_flow, top_bits = flow, bits
        elapsed = max(1, now - self._window_start)
        report = FlowStatsReport(
            window_start_ns=self._window_start,
            window_end_ns=now,
            flows=len(self._bits),
            packets=total_packets,
            bits=total_bits,
            top_flow=top_flow,
            top_flow_mbps=(top_bits * 1e3 / elapsed
                           if top_flow is not None else 0.0))
        ctx.send_message(UserMessage(sender_service=self.service_id,
                                     key=FLOW_STATS_KEY, value=report))
        self.reports_sent += 1
        self._window_start = now
        self._packets.clear()
        self._bits.clear()

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        if (self._packets
                and ctx.now - self._window_start
                >= self.report_interval_ns):
            self._flush(ctx)
        flow = packet.flow
        self._packets[flow] = self._packets.get(flow, 0) + 1
        self._bits[flow] = (self._bits.get(flow, 0)
                            + wire_bits(packet.size))
        return Verdict.default()
