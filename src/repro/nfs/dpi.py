"""Deep packet inspection: protocol classification with steering.

The application-awareness showcase of the paper generalized: classify
flows by payload (HTTP, memcached, TLS, unknown), remember the verdict as
per-flow state, and optionally steer each protocol to a different
downstream service ("all HTTP through the cache, everything TLS straight
out").
"""

from __future__ import annotations

from repro.dataplane.actions import Verdict
from repro.net.flow import FiveTuple
from repro.net.packet import Packet
from repro.nfs.base import NetworkFunction, NfContext

PROTOCOL_ANNOTATION = "dpi_protocol"

HTTP_METHODS = ("GET ", "POST ", "PUT ", "HEAD ", "DELETE ", "OPTIONS ")


def classify_payload(payload: str) -> str:
    """Best-effort application-protocol guess from one payload."""
    if not payload:
        return "unknown"
    if payload.startswith("HTTP/") or payload.startswith(HTTP_METHODS):
        return "http"
    if payload.startswith(("get ", "set ", "VALUE ", "END")):
        return "memcached"
    if payload.startswith("\x16\x03"):
        return "tls"
    return "unknown"


class ProtocolClassifier(NetworkFunction):
    """Per-flow L7 protocol detection with optional per-protocol routing.

    ``steering`` maps protocol names to Service IDs; classified flows are
    sent there (the targets must be allowed next hops in the service
    graph), everything else follows the default edge.  A flow keeps its
    first non-unknown classification.
    """

    read_only = True

    def __init__(self, service_id: str,
                 steering: dict[str, str] | None = None,
                 scan_ns_per_byte: float = 0.3) -> None:
        super().__init__(service_id)
        self.steering = dict(steering or {})
        self.scan_ns_per_byte = scan_ns_per_byte
        self.flow_protocol: dict[FiveTuple, str] = {}
        self.counts: dict[str, int] = {}

    def processing_cost_ns(self, packet: Packet, ctx: NfContext) -> int:
        return max(25, round(len(packet.payload)
                             * self.scan_ns_per_byte))

    def protocol_of(self, flow: FiveTuple) -> str:
        return self.flow_protocol.get(flow, "unknown")

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        known = self.flow_protocol.get(packet.flow)
        if known is None or known == "unknown":
            guess = classify_payload(packet.payload)
            if guess != "unknown" or known is None:
                self.flow_protocol[packet.flow] = guess
        protocol = self.flow_protocol[packet.flow]
        packet.annotations[PROTOCOL_ANNOTATION] = protocol
        self.counts[protocol] = self.counts.get(protocol, 0) + 1
        target = self.steering.get(protocol)
        if target is not None:
            return Verdict.send_to_service(target)
        return Verdict.default()
