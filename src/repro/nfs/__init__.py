"""Network function library.

Every NF from the paper's use cases (§2.2) and evaluation (§5), written
against the SDNFV-User-style API in :mod:`repro.nfs.base`: an NF receives a
packet plus a context, does its work, and returns a verdict (Discard /
Send-to / Default), optionally sending cross-layer messages.
"""

from repro.nfs.ant import AntFlowDetector
from repro.nfs.base import NetworkFunction, NfContext, action_profile
from repro.nfs.cache import HttpCache
from repro.nfs.compute import ComputeNf
from repro.nfs.ddos import DdosDetector, DdosScrubber
from repro.nfs.dpi import (
    PROTOCOL_ANNOTATION,
    ProtocolClassifier,
    classify_payload,
)
from repro.nfs.firewall import Firewall, FirewallRule
from repro.nfs.ids import IntrusionDetector
from repro.nfs.memcached_proxy import MemcachedProxy
from repro.nfs.monitor import FLOW_STATS_KEY, FlowMonitor, FlowStatsReport
from repro.nfs.nat import NatError, SourceNat
from repro.nfs.noop import CounterNf, NoOpNf
from repro.nfs.qos import DscpMarker, MarkingRule
from repro.nfs.sampler import Sampler
from repro.nfs.scrubber import Scrubber
from repro.nfs.shaper import TrafficShaper
from repro.nfs.video import (
    PolicyEngine,
    QualityDetector,
    Transcoder,
    VideoFlowDetector,
)

__all__ = [
    "AntFlowDetector",
    "ComputeNf",
    "CounterNf",
    "DdosDetector",
    "DdosScrubber",
    "DscpMarker",
    "FLOW_STATS_KEY",
    "MarkingRule",
    "Firewall",
    "FirewallRule",
    "FlowMonitor",
    "FlowStatsReport",
    "HttpCache",
    "IntrusionDetector",
    "MemcachedProxy",
    "NatError",
    "NetworkFunction",
    "action_profile",
    "NfContext",
    "PROTOCOL_ANNOTATION",
    "ProtocolClassifier",
    "SourceNat",
    "classify_payload",
    "NoOpNf",
    "PolicyEngine",
    "QualityDetector",
    "Sampler",
    "Scrubber",
    "TrafficShaper",
    "Transcoder",
    "VideoFlowDetector",
]
