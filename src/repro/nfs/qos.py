"""DscpMarker: a QoS classification/marking NF.

Writes the IP DSCP field (and the ``qos_priority`` annotation) based on
flow-match rules, so downstream priority-aware egress ports
(:class:`~repro.dataplane.qos.PriorityNicPort`) schedule the traffic
accordingly.  The classic ingress-edge middlebox of a DiffServ domain.
"""

from __future__ import annotations

import dataclasses

from repro.dataplane.actions import Verdict
from repro.net.qos import PRIORITY_ANNOTATION, dscp_to_priority
from repro.net.flow import FlowMatch
from repro.net.packet import Packet
from repro.nfs.base import NetworkFunction, NfContext, action_profile


@dataclasses.dataclass(frozen=True)
class MarkingRule:
    """First-match classification: flows matching ``match`` get ``dscp``."""

    match: FlowMatch
    dscp: int

    def __post_init__(self) -> None:
        if not 0 <= self.dscp <= 63:
            raise ValueError(f"DSCP out of range: {self.dscp}")


@action_profile(reads=("src_ip", "dst_ip", "protocol", "src_port",
                       "dst_port", "ttl", "dscp"),
                writes=("dscp",),
                annotations_written=("qos_priority",))
class DscpMarker(NetworkFunction):
    """Marks packets' DSCP by flow rules (first match wins)."""

    read_only = False  # rewrites the IP header
    per_packet_cost_ns = 45

    def __init__(self, service_id: str,
                 rules: list[MarkingRule] | None = None,
                 default_dscp: int | None = None,
                 priority_levels: int = 3) -> None:
        super().__init__(service_id)
        if default_dscp is not None and not 0 <= default_dscp <= 63:
            raise ValueError(f"DSCP out of range: {default_dscp}")
        self.rules = list(rules or [])
        self.default_dscp = default_dscp
        self.priority_levels = priority_levels
        self.marked = 0
        self.unmarked = 0

    def add_rule(self, rule: MarkingRule) -> None:
        self.rules.append(rule)

    def _dscp_for(self, packet: Packet) -> int | None:
        for rule in self.rules:
            if rule.match.matches(packet.flow):
                return rule.dscp
        return self.default_dscp

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        dscp = self._dscp_for(packet)
        if dscp is None:
            self.unmarked += 1
            return Verdict.default()
        assert packet.ip is not None
        packet.ip = dataclasses.replace(packet.ip, dscp=dscp)
        packet.annotations[PRIORITY_ANNOTATION] = dscp_to_priority(
            dscp, self.priority_levels)
        self.marked += 1
        return Verdict.default()
