"""A stateless firewall NF.

The paper's firewall is the loosely-coupled NF archetype (§3.4): it "may
have no knowledge of other NFs in the service graph", so it only ever drops
packets by its own rules or forwards them along the default action.
"""

from __future__ import annotations

import dataclasses

from repro.dataplane.actions import Verdict
from repro.net.flow import FlowMatch
from repro.net.packet import Packet
from repro.nfs.base import NetworkFunction, NfContext


@dataclasses.dataclass(frozen=True)
class FirewallRule:
    """First-match rule: allow or deny flows matching ``match``."""

    match: FlowMatch
    allow: bool


class Firewall(NetworkFunction):
    """Ordered first-match firewall with a configurable default action."""

    # DISCARD is a verdict, not a packet mutation: the parallel merge
    # resolves it by action priority without touching the shared buffer,
    # and profile-driven layouts separately exclude dropping NFs from
    # groups with writers (drop-vs-modify), so read-only stays truthful.
    read_only = True  # sdnfv: noqa NF001
    per_packet_cost_ns = 40  # rule scan

    def __init__(self, service_id: str,
                 rules: list[FirewallRule] | None = None,
                 default_allow: bool = True) -> None:
        super().__init__(service_id)
        self.rules = list(rules or [])
        self.default_allow = default_allow
        self.allowed = 0
        self.denied = 0

    def add_rule(self, rule: FirewallRule) -> None:
        self.rules.append(rule)

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        for rule in self.rules:
            if rule.match.matches(packet.flow):
                if rule.allow:
                    self.allowed += 1
                    return Verdict.default()
                self.denied += 1
                return Verdict.discard()
        if self.default_allow:
            self.allowed += 1
            return Verdict.default()
        self.denied += 1
        return Verdict.discard()
