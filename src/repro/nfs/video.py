"""The video-optimization NFs (§2.2 use case, §5.3 experiment).

Four cooperating NFs:

- :class:`VideoFlowDetector` parses HTTP headers to classify each flow's
  content type (kept as per-flow state after the first classified packet);
- :class:`PolicyEngine` decides per flow whether it must be transcoded,
  based on a dynamic bandwidth policy, and uses ChangeDefault / RequestMe
  to retarget flows **without contacting the SDN controller**;
- :class:`QualityDetector` checks whether transcoding would retain the
  desired quality;
- :class:`Transcoder` emulates down-sampling "by dropping packets"
  (exactly what the paper's own evaluation does), halving a flow's rate.
"""

from __future__ import annotations

from repro.dataplane.actions import Verdict
from repro.dataplane.messages import ChangeDefault, RequestMe
from repro.net.flow import FiveTuple, FlowMatch
from repro.net.http import classify_content_type, is_video_content
from repro.net.packet import Packet
from repro.nfs.base import NetworkFunction, NfContext


class VideoFlowDetector(NetworkFunction):
    """Classifies flows as video / non-video from HTTP response headers."""

    read_only = True
    per_packet_cost_ns = 80  # header parse

    def __init__(self, service_id: str) -> None:
        super().__init__(service_id)
        self.flow_content: dict[FiveTuple, str | None] = {}
        self.video_flows = 0

    def is_video_flow(self, flow: FiveTuple) -> bool | None:
        """Classification for a flow (None = not yet determined)."""
        if flow not in self.flow_content:
            return None
        return is_video_content(self.flow_content[flow])

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        flow = packet.flow
        if flow not in self.flow_content:
            content_type = classify_content_type(packet.payload)
            if content_type is not None:
                self.flow_content[flow] = content_type
                if is_video_content(content_type):
                    self.video_flows += 1
                    packet.annotations["video"] = True
        elif is_video_content(self.flow_content[flow]):
            packet.annotations["video"] = True
        return Verdict.default()


class PolicyEngine(NetworkFunction):
    """Per-flow routing policy with dynamic throttling (§5.3).

    When throttling is off, each examined flow is released: the engine
    issues ``ChangeDefault(flow, detector → exit)`` so subsequent packets
    bypass it entirely, and sends the current packet straight out.  When a
    policy change turns throttling on, the engine issues ``RequestMe`` to
    pull **all existing flows** back through itself, then retargets each
    to the transcoder — the paper's key flexibility claim.
    """

    read_only = False  # it rewrites flow rules

    def __init__(self, service_id: str, detector_service: str,
                 transcoder_service: str, exit_port: str,
                 throttle: bool = False) -> None:
        super().__init__(service_id)
        self.detector_service = detector_service
        self.transcoder_service = transcoder_service
        self.exit_port = exit_port
        self._throttle = throttle
        self._ctx: NfContext | None = None
        self.flows_released: set[FiveTuple] = set()
        self.flows_throttled: set[FiveTuple] = set()

    def on_register(self, ctx: NfContext) -> None:
        self._ctx = ctx

    @property
    def throttling(self) -> bool:
        return self._throttle

    def set_throttle(self, enabled: bool) -> None:
        """Flip the policy.  Turning throttling on recalls all flows."""
        if enabled == self._throttle:
            return
        self._throttle = enabled
        if self._ctx is None:
            return
        if enabled:
            # Pull every flow (including previously released ones) back
            # through the policy engine so each can be re-decided.
            self._ctx.send_message(RequestMe(
                sender_service=self.service_id, service=self.service_id))
            self.flows_released.clear()
        else:
            self.flows_throttled.clear()

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        flow = packet.flow
        if self._throttle:
            if flow not in self.flows_throttled:
                self.flows_throttled.add(flow)
                ctx.send_message(ChangeDefault(
                    sender_service=self.service_id,
                    flows=FlowMatch.exact(flow),
                    service=self.service_id,
                    target=self.transcoder_service))
            return Verdict.send_to_service(self.transcoder_service)
        if flow not in self.flows_released:
            self.flows_released.add(flow)
            # Subsequent packets of this flow skip the policy engine: the
            # detector sends them straight out the NIC (Fig. 4's per-flow
            # rule specialisation).
            ctx.send_message(ChangeDefault(
                sender_service=self.service_id,
                flows=FlowMatch.exact(flow),
                service=self.detector_service,
                target=f"port:{self.exit_port}"))
        return Verdict.send_to_port(self.exit_port)


class QualityDetector(NetworkFunction):
    """Decides if a video "can still retain the desired quality after
    transcoding" — modeled as a bitrate-annotation threshold."""

    read_only = True
    per_packet_cost_ns = 60

    def __init__(self, service_id: str,
                 min_bitrate_kbps: int = 500) -> None:
        super().__init__(service_id)
        self.min_bitrate_kbps = min_bitrate_kbps
        self.approved = 0
        self.rejected = 0

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        bitrate = packet.annotations.get("bitrate_kbps", 2000)
        if bitrate / 2 >= self.min_bitrate_kbps:
            self.approved += 1
            packet.annotations["transcode_ok"] = True
        else:
            self.rejected += 1
            packet.annotations["transcode_ok"] = False
        return Verdict.default()


class Transcoder(NetworkFunction):
    """Emulates down-sampling by dropping alternate packets per flow.

    ``keep_ratio`` = 0.5 halves each flow's rate (the §5.3 configuration).
    """

    read_only = False  # consumes packets

    def __init__(self, service_id: str, keep_ratio: float = 0.5,
                 per_packet_cost_ns: int = 500) -> None:
        super().__init__(service_id)
        if not 0.0 < keep_ratio <= 1.0:
            raise ValueError("keep_ratio must be in (0, 1]")
        self.keep_ratio = keep_ratio
        self.per_packet_cost_ns = per_packet_cost_ns
        self._credit: dict[FiveTuple, float] = {}
        self.transcoded = 0
        self.dropped = 0

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        credit = self._credit.get(packet.flow, 0.0) + self.keep_ratio
        if credit >= 1.0:
            self._credit[packet.flow] = credit - 1.0
            self.transcoded += 1
            packet.annotations["transcoded"] = True
            if "bitrate_kbps" in packet.annotations:
                packet.annotations["bitrate_kbps"] //= 2
            return Verdict.default()
        self._credit[packet.flow] = credit
        self.dropped += 1
        return Verdict.discard()
