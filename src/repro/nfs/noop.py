"""No-op and counting NFs (the paper's Table 2 measurement workload)."""

from __future__ import annotations

import collections

from repro.dataplane.actions import Verdict
from repro.net.batch import PacketBatch, columnar_kernel
from repro.net.packet import Packet
from repro.nfs.base import NetworkFunction, NfContext


class NoOpNf(NetworkFunction):
    """Performs no processing on each packet (Table 2's latency probe)."""

    read_only = True

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        return Verdict.default()

    @columnar_kernel
    def process_batch(self, batch: PacketBatch, ctx: NfContext) -> Verdict:
        return Verdict.default()


class CounterNf(NetworkFunction):
    """Counts packets and bytes per flow; forwards everything unchanged.

    A minimal example of an NF keeping "NF-specific internal state"
    (§3.1) — useful for monitoring chains and in tests.
    """

    read_only = True

    def __init__(self, service_id: str) -> None:
        super().__init__(service_id)
        self.packets = collections.Counter()
        self.bytes = collections.Counter()

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        self.packets[packet.flow] += 1
        self.bytes[packet.flow] += packet.size
        return Verdict.default()

    def process_batch(self, batch: PacketBatch, ctx: NfContext) -> Verdict:
        flow = batch.uniform_flow
        if flow is not None:
            self.packets[flow] += batch.count
            self.bytes[flow] += batch.total_bytes
            return Verdict.default()
        for packet in batch.packets:
            self.packets[packet.flow] += 1
            self.bytes[packet.flow] += packet.size
        return Verdict.default()

    def totals(self) -> tuple[int, int]:
        """(total packets, total bytes) across all flows."""
        return sum(self.packets.values()), sum(self.bytes.values())
