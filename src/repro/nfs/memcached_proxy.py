"""The application-aware memcached proxy NF (§5.4).

"Parses incoming UDP memcached requests to determine what key is being
requested.  The key is then mapped to a specific server using a hashing
function, and the packet's header is rewritten to direct it to that
server."  Responses flow directly back to clients without touching the
proxy — the asymmetry that (with zero-copy) gives the 102× win over
TwemProxy in Fig. 12.
"""

from __future__ import annotations

import collections
import typing

from repro.dataplane.actions import Verdict
from repro.net.memcached import MemcachedRequest
from repro.net.packet import Packet
from repro.nfs.base import NetworkFunction, NfContext


def _fnv1a(key: str) -> int:
    value = 2166136261
    for byte in key.encode():
        value ^= byte
        value = (value * 16777619) % (1 << 32)
    return value


class MemcachedProxy(NetworkFunction):
    """Key-hashing L7 load balancer for memcached over UDP."""

    read_only = False  # rewrites packet headers
    per_packet_cost_ns = 90  # parse + hash + header rewrite

    def __init__(self, service_id: str,
                 servers: typing.Sequence[tuple[str, int]],
                 parse_cost_ns: int | None = None) -> None:
        super().__init__(service_id)
        if not servers:
            raise ValueError("need at least one memcached server")
        self.servers = list(servers)
        if parse_cost_ns is not None:
            if parse_cost_ns < 0:
                raise ValueError("parse cost must be non-negative")
            self.per_packet_cost_ns = parse_cost_ns
        self.requests_forwarded = 0
        self.parse_errors = 0
        self.per_server = collections.Counter()

    def server_for_key(self, key: str) -> tuple[str, int]:
        """Deterministic key → server mapping."""
        return self.servers[_fnv1a(key) % len(self.servers)]

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        try:
            request = MemcachedRequest.parse(packet.payload)
        except (ValueError, IndexError):
            self.parse_errors += 1
            return Verdict.default()
        server_ip, server_port = self.server_for_key(request.key)
        packet.rewrite_destination(server_ip, server_port)
        packet.annotations["memcached_key"] = request.key
        self.per_server[(server_ip, server_port)] += 1
        self.requests_forwarded += 1
        return Verdict.default()
