"""An HTTP response cache NF (the Cache of the video use case, §2.2).

"The video flow passes through a Cache so that subsequent requests can be
served locally."  Responses are stored keyed by (host, path); a request
that hits is answered from the cache (short-circuited out the reply port)
instead of continuing to the origin.
"""

from __future__ import annotations

import collections

from repro.dataplane.actions import Verdict
from repro.net.http import HttpRequest, HttpResponse
from repro.net.packet import Packet
from repro.nfs.base import NetworkFunction, NfContext


class HttpCache(NetworkFunction):
    """LRU cache over serialized HTTP responses."""

    read_only = False  # serves replies; rewrites flow direction
    per_packet_cost_ns = 150

    def __init__(self, service_id: str, capacity: int = 1024,
                 reply_port: str | None = None) -> None:
        super().__init__(service_id)
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.reply_port = reply_port
        self._store: collections.OrderedDict[tuple[str, str], str] = (
            collections.OrderedDict())
        self.hits = 0
        self.misses = 0
        self.stored = 0

    def _remember(self, key: tuple[str, str], body: str) -> None:
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = body
        self.stored += 1
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)

    def lookup(self, host: str, path: str) -> str | None:
        """Cache lookup (promotes the entry on hit)."""
        key = (host, path)
        if key not in self._store:
            return None
        self._store.move_to_end(key)
        return self._store[key]

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        payload = packet.payload
        if payload.startswith("HTTP/"):
            # A response heading downstream: remember it for next time.
            try:
                response = HttpResponse.parse(payload)
            except (ValueError, IndexError):
                return Verdict.default()
            request_key = packet.annotations.get("request_key")
            if request_key is not None:
                self._remember(tuple(request_key), payload)
            return Verdict.default()
        if payload.startswith(("GET ", "HEAD ")):
            try:
                request = HttpRequest.parse(payload)
            except (ValueError, IndexError):
                return Verdict.default()
            packet.annotations["request_key"] = (request.host, request.path)
            cached = self.lookup(request.host, request.path)
            if cached is not None:
                self.hits += 1
                packet.annotations["served_from_cache"] = True
                if self.reply_port is not None:
                    return Verdict.send_to_port(self.reply_port)
                return Verdict.discard()  # absorbed: answered locally
            self.misses += 1
        return Verdict.default()
