"""The generic Scrubber NF of the anomaly-detection graph (§2.2).

"Performs a more detailed inspection of the packets to determine if they
truly pose a threat" — here: deep payload re-scan of packets the IDS or
DDoS detector flagged, dropping those confirmed malicious.
"""

from __future__ import annotations

import typing

from repro.dataplane.actions import Verdict
from repro.net.packet import Packet
from repro.nfs.base import NetworkFunction, NfContext
from repro.nfs.ids import DEFAULT_SIGNATURES


class Scrubber(NetworkFunction):
    """Deep inspection of flagged packets.

    A packet is confirmed malicious when a second, more expensive scan
    (modeled at 4× the IDS per-byte cost) also matches.  False positives —
    flagged by upstream but clean on deep scan — are forwarded on the
    default path.
    """

    read_only = False  # may terminate flows
    scan_ns_per_byte = 2.0

    def __init__(self, service_id: str,
                 signatures: typing.Sequence[str] = DEFAULT_SIGNATURES
                 ) -> None:
        super().__init__(service_id)
        self.signatures = tuple(signatures)
        self.confirmed = 0
        self.false_positives = 0

    def processing_cost_ns(self, packet: Packet, ctx: NfContext) -> int:
        return max(100, round(len(packet.payload)
                              * self.scan_ns_per_byte))

    def process(self, packet: Packet, ctx: NfContext) -> Verdict:
        if any(signature in packet.payload
               for signature in self.signatures):
            self.confirmed += 1
            return Verdict.discard()
        self.false_positives += 1
        return Verdict.default()
