"""The NF Manager watchdog: detect dead or wedged VMs, fail over.

Paper §3.1 makes the NF Manager responsible for "respond[ing] to failure
or overload" locally, without waiting for the global tier.  The watchdog
is that responder: it periodically samples each VM's heartbeat — the
progress counters the VM publishes on its shared ring state
(``last_progress_ns``, the same head/tail movement a real manager
observes on its lock-free rings; under bursts the heartbeat reference
also covers the batch the thread legitimately holds, see
:meth:`NfVm.stalled`) — and when a VM is dead (crashed) or wedged
(holding a descriptor with a stale heartbeat), it:

1. kills the wedged thread (``Process.interrupt`` through
   :meth:`NfVm.crash`),
2. salvages the VM's RX ring — and the burst-dequeued batch the thread
   was still holding (everything but the in-flight head) — via
   :meth:`NfManager.fail_vm`; descriptors are re-dispatched to surviving
   replicas or along the service's default edge (graceful degradation),
3. quarantines the service when no replica is left — flow rules whose
   default leads to it are rewritten to its own default edge, not leaked —
4. and notifies an ``on_failure`` callback, through which the SDNFV
   Application boots a replacement
   (``SdnfvApp.launch_nf(..., mode="standby_process" | "restore")``).

When the replacement registers, :meth:`notify_replacement` reinstates the
displaced rules and records the recovery (MTTR, packets lost during the
outage) in the manager's event log, so failover cost is measurable.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.dataplane.manager import NfManager
from repro.dataplane.vm import NfVm
from repro.sim.units import MS


def _drop_total(manager: NfManager) -> int:
    stats = manager.stats
    return (stats.dropped_no_vm + stats.dropped_no_rule
            + stats.dropped_ring_full + stats.lost_in_nf)


@dataclasses.dataclass(frozen=True)
class FailureRecord:
    """One detected VM failure."""

    service: str
    vm_id: str
    cause: str
    detected_at_ns: int
    requeued: int
    degraded: int
    lost: int
    drops_before: int


@dataclasses.dataclass(frozen=True)
class RecoveryRecord:
    """One completed failover (replacement VM serving again)."""

    service: str
    detected_at_ns: int
    recovered_at_ns: int
    lost_packets: int

    @property
    def mttr_ns(self) -> int:
        return self.recovered_at_ns - self.detected_at_ns


class NfWatchdog:
    """Heartbeat-driven failure detector and failover driver for one host."""

    def __init__(self, manager: NfManager,
                 interval_ns: int = 10 * MS,
                 heartbeat_timeout_ns: int = 50 * MS,
                 on_failure: typing.Callable[[str, NfVm, str], None]
                 | None = None) -> None:
        if interval_ns <= 0:
            raise ValueError("watchdog interval must be positive")
        if heartbeat_timeout_ns <= 0:
            raise ValueError("heartbeat timeout must be positive")
        self.manager = manager
        self.sim = manager.sim
        self.interval_ns = interval_ns
        self.heartbeat_timeout_ns = heartbeat_timeout_ns
        self.on_failure = on_failure
        self.failures: list[FailureRecord] = []
        self.recoveries: list[RecoveryRecord] = []
        # service -> displaced flow rules awaiting a replacement VM
        self._quarantined: dict[str, list] = {}
        # service -> detection time of the failure awaiting recovery
        self._pending: dict[str, FailureRecord] = {}
        self._started = False

    def start(self) -> NfWatchdog:
        """Begin periodic sweeps (opt-in, like the overload monitor)."""
        if self._started:
            raise RuntimeError("watchdog already started")
        self._started = True
        self.sim.call_later(self.interval_ns, self._tick)
        return self

    def _tick(self, _arg=None) -> None:
        """One heartbeat: sweep, then re-arm on the bare timer lane.

        A self-rearming ``call_later`` instead of a generator process:
        the periodic heartbeat allocates no Event objects at all, like a
        DPDK ``rte_timer`` callback.
        """
        self.sweep()
        self.sim.call_later(self.interval_ns, self._tick)

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def sweep(self) -> list[FailureRecord]:
        """One detection pass (also callable directly, e.g. from tests)."""
        now = self.sim.now
        detected: list[FailureRecord] = []
        for service, vms in list(self.manager.vms_by_service.items()):
            for vm in list(vms):
                if vm.crashed:
                    detected.append(self._handle_failure(vm, "crash"))
                elif vm.stalled(now, self.heartbeat_timeout_ns):
                    detected.append(self._handle_failure(vm, "hang"))
        return detected

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _handle_failure(self, vm: NfVm, cause: str) -> FailureRecord:
        service = vm.service_id
        drops_before = _drop_total(self.manager)
        salvage = self.manager.fail_vm(vm, cause)
        record = FailureRecord(
            service=service, vm_id=vm.vm_id, cause=cause,
            detected_at_ns=self.sim.now, drops_before=drops_before,
            **salvage)
        self.failures.append(record)
        # Earliest unrecovered failure defines the outage window.
        self._pending.setdefault(service, record)
        if not self.manager.vms_by_service.get(service):
            displaced = self.manager.quarantine_service(service)
            if displaced:
                self._quarantined.setdefault(service, []).extend(displaced)
        if self.on_failure is not None:
            self.on_failure(service, vm, cause)
        return record

    def notify_replacement(self, service: str) -> RecoveryRecord | None:
        """A replacement VM for ``service`` is registered and serving.

        Reinstates quarantined rules and closes the outage window.
        """
        displaced = self._quarantined.pop(service, None)
        if displaced:
            self.manager.restore_service(service, displaced)
        failure = self._pending.pop(service, None)
        if failure is None:
            return None
        lost = _drop_total(self.manager) - failure.drops_before
        record = RecoveryRecord(
            service=service, detected_at_ns=failure.detected_at_ns,
            recovered_at_ns=self.sim.now, lost_packets=lost)
        self.recoveries.append(record)
        if self.manager.event_log is not None:
            self.manager.event_log.record(
                "nf_recovered", host=self.manager.name, service=service,
                mttr_ns=record.mttr_ns, lost=lost)
        return record

    @property
    def degraded_services(self) -> set[str]:
        """Services currently routed around (quarantined)."""
        return set(self._quarantined)
