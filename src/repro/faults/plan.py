"""Deterministic, schedulable fault plans.

A :class:`FaultPlan` is a list of fault descriptions — *what* breaks and
*when* — decoupled from the machinery that breaks it (the
:class:`~repro.faults.injector.FaultInjector`).  Faults may carry a
``jitter_ns`` half-width; the jitter draw comes from a named
:class:`~repro.sim.randomness.RandomStreams` stream keyed by the fault's
position in the plan, so a plan replays exactly for a given seed no
matter what else in the simulation is reconfigured.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.sim.randomness import RandomStreams


@dataclasses.dataclass(frozen=True, kw_only=True)
class Fault:
    """Base: one scheduled failure event.

    ``at_ns`` is the nominal injection time; ``jitter_ns`` (optional) is a
    uniform ±half-width applied from the plan's seeded stream.
    """

    at_ns: int
    jitter_ns: int = 0

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError("fault time must be non-negative")
        if self.jitter_ns < 0:
            raise ValueError("jitter must be non-negative")


@dataclasses.dataclass(frozen=True, kw_only=True)
class NfCrash(Fault):
    """Kill one replica of ``service`` (its VM thread dies)."""

    service: str
    host: str | None = None   # None: the injector's only/default host
    replica: int = 0          # index into the service's replica list


@dataclasses.dataclass(frozen=True, kw_only=True)
class NfHang(Fault):
    """Wedge one replica of ``service``: it stalls on its next packet and
    stops heartbeating — only a watchdog kill recovers it."""

    service: str
    host: str | None = None
    replica: int = 0


@dataclasses.dataclass(frozen=True, kw_only=True)
class LinkFlap(Fault):
    """Take a NIC port's link down for ``down_ns``."""

    port: str
    down_ns: int
    host: str | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.down_ns <= 0:
            raise ValueError("link must stay down a positive duration")


@dataclasses.dataclass(frozen=True, kw_only=True)
class ControllerOutage(Fault):
    """The SDN controller stops serving for ``down_ns`` (requests queue).

    With a sharded :class:`~repro.control.plane.ControlPlane`,
    ``shard=`` retargets the outage at one controller shard — the other
    shards keep serving their slices of flow space (and, with failover,
    absorb the dead shard's).  ``shard=None`` takes the whole plane (or
    a plain single controller) down.
    """

    down_ns: int
    shard: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.down_ns <= 0:
            raise ValueError("outage needs a positive duration")
        if self.shard is not None and self.shard < 0:
            raise ValueError("shard index must be non-negative")


@dataclasses.dataclass(frozen=True, kw_only=True)
class HostOverload(Fault):
    """Multiply a host's per-packet service costs by ``factor`` for
    ``duration_ns`` (a noisy neighbour stealing cycles)."""

    duration_ns: int
    factor: float = 4.0
    host: str | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration_ns <= 0:
            raise ValueError("overload needs a positive duration")
        if self.factor <= 1.0:
            raise ValueError("overload factor must exceed 1.0")


class FaultPlan:
    """An ordered, seeded collection of faults."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.faults: list[Fault] = []

    def add(self, fault: Fault) -> Fault:
        if not isinstance(fault, Fault):
            raise TypeError(f"{fault!r} is not a Fault")
        self.faults.append(fault)
        return fault

    def extend(self, faults: typing.Iterable[Fault]) -> FaultPlan:
        for fault in faults:
            self.add(fault)
        return self

    def fire_time_ns(self, index: int) -> int:
        """The (jittered) injection time of fault ``index`` — a pure
        function of (seed, index), so plans replay exactly."""
        fault = self.faults[index]
        if not fault.jitter_ns:
            return fault.at_ns
        # A fresh stream per call keeps this a pure function of
        # (seed, index) — re-querying never perturbs the draw.
        rng = RandomStreams(seed=self.seed).stream(f"fault/{index}")
        offset = int(rng.integers(-fault.jitter_ns, fault.jitter_ns + 1))
        return max(0, fault.at_ns + offset)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> typing.Iterator[Fault]:
        return iter(self.faults)
