"""The fault injector: arms a :class:`~repro.faults.plan.FaultPlan`
against a running system.

The injector resolves each fault's target (host / service replica / NIC
port / controller) at fire time, so plans can be armed before the VMs
they will kill even exist.  Every injection is recorded both in
``injector.fired`` and, when an event log is attached to the target
manager, as a ``fault_injected`` control event.
"""

from __future__ import annotations

import typing

from repro.dataplane.host import NfvHost
from repro.dataplane.vm import NfVm
from repro.faults.plan import (
    ControllerOutage,
    Fault,
    FaultPlan,
    HostOverload,
    LinkFlap,
    NfCrash,
    NfHang,
)
from repro.sim.simulator import Simulator

# HostCosts fields scaled by a HostOverload fault.
_OVERLOAD_FIELDS = ("rx_service_ns", "tx_service_ns", "vm_service_ns")


class FaultInjector:
    """Schedules a plan's faults against hosts and a controller."""

    def __init__(self, sim: Simulator, plan: FaultPlan,
                 hosts: typing.Iterable[NfvHost] = (),
                 controller: typing.Any | None = None,
                 app: typing.Any | None = None,
                 only_hosts: typing.Iterable[str] | None = None) -> None:
        self.sim = sim
        self.plan = plan
        self.hosts: dict[str, NfvHost] = {host.name: host for host in hosts}
        if app is not None:
            for name, host in getattr(app, "hosts", {}).items():
                self.hosts.setdefault(name, host)
            if controller is None:
                controller = getattr(app, "controller", None)
        self.controller = controller
        # Shard routing: arm only the faults targeting these hosts.
        # Fire times stay a pure function of (plan seed, plan index), so
        # subsetting by owner never shifts when a fault fires.
        self.only_hosts = None if only_hosts is None else set(only_hosts)
        self.fired: list[tuple[int, Fault]] = []
        self.skipped: list[tuple[int, Fault, str]] = []
        self._armed = False

    def arm(self) -> list[tuple[int, Fault]]:
        """Schedule every fault; returns the (fire_ns, fault) timetable."""
        if self._armed:
            raise RuntimeError("plan already armed")
        self._armed = True
        timetable = []
        for index, fault in enumerate(self.plan):
            fire_ns = self.plan.fire_time_ns(index)
            if fire_ns < self.sim.now:
                raise ValueError(
                    f"fault {index} fires at {fire_ns} ns, in the past")
            if self.only_hosts is not None:
                if isinstance(fault, ControllerOutage):
                    # Controller faults have no host; they arm wherever a
                    # controller (or control-plane replica) is attached.
                    if self.controller is None:
                        continue
                else:
                    target = getattr(fault, "host", None)
                    if target is None or target not in self.only_hosts:
                        continue
            timetable.append((fire_ns, fault))
            self.sim.schedule(fire_ns - self.sim.now,
                              lambda fault=fault: self._fire(fault))
        return timetable

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _fire(self, fault: Fault) -> None:
        if isinstance(fault, NfCrash):
            self._fire_nf(fault, "crash")
        elif isinstance(fault, NfHang):
            self._fire_nf(fault, "hang")
        elif isinstance(fault, LinkFlap):
            self._fire_link(fault)
        elif isinstance(fault, ControllerOutage):
            self._fire_outage(fault)
        elif isinstance(fault, HostOverload):
            self._fire_overload(fault)
        else:
            raise TypeError(f"unknown fault type {type(fault).__name__}")

    def _skip(self, fault: Fault, reason: str) -> None:
        self.skipped.append((self.sim.now, fault, reason))

    def _record(self, fault: Fault, host: NfvHost | None = None,
                **detail: typing.Any) -> None:
        self.fired.append((self.sim.now, fault))
        log = host.manager.event_log if host is not None else None
        if log is not None:
            log.record("fault_injected",
                       host=host.name if host else "",
                       kind=type(fault).__name__, **detail)

    def _resolve_host(self, fault: Fault) -> NfvHost | None:
        name = getattr(fault, "host", None)
        if name is not None:
            return self.hosts.get(name)
        if len(self.hosts) == 1:
            return next(iter(self.hosts.values()))
        return None

    def _fire_nf(self, fault: NfCrash | NfHang, kind: str) -> None:
        host = self._resolve_host(fault)
        if host is None:
            self._skip(fault, "no such host")
            return
        replicas = [vm for vm
                    in host.manager.vms_by_service.get(fault.service, ())
                    if not vm.failed]
        if not replicas:
            self._skip(fault, "no live replica")
            return
        vm: NfVm = replicas[min(fault.replica, len(replicas) - 1)]
        if kind == "crash":
            vm.crash("injected_crash")
        else:
            vm.hang()
        self._record(fault, host, service=fault.service, vm=vm.vm_id)

    def _fire_link(self, fault: LinkFlap) -> None:
        host = self._resolve_host(fault)
        if host is None or fault.port not in host.manager.ports:
            self._skip(fault, "no such port")
            return
        port = host.manager.ports[fault.port]
        port.set_link(False)
        self.sim.schedule(fault.down_ns, lambda: port.set_link(True))
        self._record(fault, host, port=fault.port, down_ns=fault.down_ns)

    def _fire_outage(self, fault: ControllerOutage) -> None:
        if self.controller is None:
            self._skip(fault, "no controller")
            return
        if fault.shard is None:
            self.controller.outage(fault.down_ns)
        else:
            shards = getattr(self.controller, "shards", None)
            if shards is None:
                self._skip(fault, "controller is not sharded")
                return
            if fault.shard >= len(shards):
                self._skip(fault, "no such controller shard")
                return
            self.controller.outage(fault.down_ns, shard=fault.shard)
        self._record(fault, None, down_ns=fault.down_ns,
                     shard=fault.shard)

    def _fire_overload(self, fault: HostOverload) -> None:
        host = self._resolve_host(fault)
        if host is None:
            self._skip(fault, "no such host")
            return
        costs = host.manager.costs
        saved = {field: getattr(costs, field) for field in _OVERLOAD_FIELDS}
        for field, value in saved.items():
            setattr(costs, field, int(value * fault.factor))

        def restore() -> None:
            for field, value in saved.items():
                setattr(costs, field, value)

        self.sim.schedule(fault.duration_ns, restore)
        self._record(fault, host, factor=fault.factor,
                     duration_ns=fault.duration_ns)
