"""Fault injection and resilience (the part of §3 the paper only argues).

SDNFV's hierarchy is pitched as robust: NFs are untrusted and may die,
hosts keep making local decisions when the controller is slow, and the
service graph's default edges give every flow a fallback path.  This
package makes those claims testable:

- :class:`FaultPlan` + :class:`NfCrash` / :class:`NfHang` /
  :class:`LinkFlap` / :class:`ControllerOutage` / :class:`HostOverload` —
  seeded, schedulable fault descriptions that replay deterministically;
- :class:`FaultInjector` — arms a plan against running hosts and a
  controller;
- :class:`NfWatchdog` — the NF Manager's heartbeat-driven failure
  detector and failover driver (drain, requeue, quarantine, restore).

Control-plane hardening (timeout / backoff / retry budget) lives in
:class:`repro.dataplane.ControlPlanePolicy`; wiring the watchdog to
standby-VM launches is ``SdnfvApp.enable_failover``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ControllerOutage,
    Fault,
    FaultPlan,
    HostOverload,
    LinkFlap,
    NfCrash,
    NfHang,
)
from repro.faults.watchdog import FailureRecord, NfWatchdog, RecoveryRecord

__all__ = [
    "ControllerOutage",
    "FailureRecord",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "HostOverload",
    "LinkFlap",
    "NfCrash",
    "NfHang",
    "NfWatchdog",
    "RecoveryRecord",
]
