"""NF action profiles: per-field read/write effects inferred from ASTs.

The paper's NF Manager shares a packet among parallel NFs only when every
member *declared* ``read_only=True`` (§3.3) — one coarse bit.  Following
"SDN based Network Function Parallelism in Cloud" (arXiv:1811.00653),
this module derives parallelizability automatically: it statically
analyzes each :class:`~repro.nfs.base.NetworkFunction` subclass's packet
handlers (``process`` / ``process_batch`` / ``processing_cost_ns``,
following ``self.method(...)`` calls) and produces an
:class:`ActionProfile` — which header fields the NF reads vs. writes
(five-tuple, DSCP, TTL, payload), which annotation keys it touches, and
whether it can DROP, emit SEND, or message the manager.

Pairwise profile *conflicts* then decide what may run in parallel:

- **write/write** — two members write the same field or annotation key;
- **read-after-write** — one member reads a field/key another writes
  (in either direction: members share one zero-copy buffer, so a write
  is visible to a concurrent reader at an execution-order-dependent
  instant);
- **drop-vs-modify** — one member can discard while another mutates
  header or payload bytes (the mutation's visibility would depend on
  merge ordering).

Two deliberate conservatisms: an NF that rewrites any five-tuple field
is never groupable (the data plane itself routes on the flow key
mid-group), and a SEND-capable member must be the *last* member of its
group so a merged SEND verdict resolves against that NF's own flow-table
scope — exactly where it would have resolved sequentially.

Everything here is pure ``ast`` + ``inspect``; the module imports
nothing from the simulator, so the lint rules (NF001–NF003) and the
data plane can both use it without import cycles.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
import sys
import textwrap
import typing

# ----------------------------------------------------------------------
# Field vocabulary
# ----------------------------------------------------------------------

#: Flow-key fields: rewriting any of these mid-group would change what
#: the manager's flow lookups and load balancers see — never groupable.
FIVE_TUPLE_FIELDS = frozenset(
    {"src_ip", "dst_ip", "protocol", "src_port", "dst_port"})

#: What reading ``packet.ip`` (the whole header) touches.
IP_FIELDS = frozenset({"src_ip", "dst_ip", "protocol", "ttl", "dscp"})

#: What reading ``packet.l4`` touches.
L4_FIELDS = frozenset({"src_port", "dst_port"})

#: Non-header packet state the profiles track.
SCALAR_FIELDS = frozenset({"payload", "size"})

PACKET_FIELDS = FIVE_TUPLE_FIELDS | IP_FIELDS | L4_FIELDS | SCALAR_FIELDS

#: Fields the parallel-group merge journal can snapshot and re-apply
#: deterministically (five-tuple fields are excluded by construction).
MERGEABLE_FIELDS = ("dscp", "ttl", "payload")

#: Annotation key standing for "a key the analyzer could not resolve".
ANN_WILDCARD = "*"

#: Handler methods analyzed per NF class (the packet path).  The
#: ``handle_*`` wrappers are included for subclasses that override them;
#: the base-class wrappers themselves are pure bookkeeping.
HANDLER_METHODS = ("process", "handle_packet", "process_batch",
                   "handle_batch", "processing_cost_ns")

#: Packet attributes that carry no data-plane-visible state.
_PACKET_METADATA_ATTRS = frozenset(
    {"created_at", "ref_count", "packet_id", "pool", "eth"})

#: Refcount bookkeeping methods — not header effects (OWN001's domain).
_PACKET_REFCOUNT_METHODS = frozenset({"add_reference", "release", "free"})

_VERDICT_SEND_FACTORIES = frozenset({"send_to_service", "send_to_port"})


def _keys_overlap(left: frozenset[str], right: frozenset[str]) -> bool:
    """Annotation-key overlap; the wildcard overlaps any non-empty set."""
    if not left or not right:
        return False
    if ANN_WILDCARD in left or ANN_WILDCARD in right:
        return True
    return bool(left & right)


# ----------------------------------------------------------------------
# The profile itself
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ActionProfile:
    """Summary of one NF's per-packet effects.

    ``opaque=True`` means the analyzer bailed (the packet escaped into
    code it cannot see); an opaque profile conservatively behaves as if
    the NF reads and writes everything.
    """

    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()
    annotations_read: frozenset[str] = frozenset()
    annotations_written: frozenset[str] = frozenset()
    can_drop: bool = False
    can_send: bool = False
    sends_messages: bool = False
    opaque: bool = False

    # -- declaration helpers ------------------------------------------
    @classmethod
    def opaque_profile(cls) -> ActionProfile:
        return cls(reads=frozenset(PACKET_FIELDS),
                   writes=frozenset(PACKET_FIELDS),
                   annotations_read=frozenset({ANN_WILDCARD}),
                   annotations_written=frozenset({ANN_WILDCARD}),
                   can_drop=True, can_send=True, sends_messages=True,
                   opaque=True)

    @classmethod
    def declared_read_only(cls) -> ActionProfile:
        """The fallback for a service declared read-only in the graph
        but with no analyzable NF: reads anything, mutates nothing —
        exactly the contract §3.3's coarse ``read_only`` bit promises."""
        return cls(reads=frozenset(PACKET_FIELDS),
                   annotations_read=frozenset({ANN_WILDCARD}))

    # -- derived facts -------------------------------------------------
    @property
    def mutates_packet(self) -> bool:
        """Writes any header/payload field (annotations excluded)."""
        return bool(self.writes)

    @property
    def writes_five_tuple(self) -> bool:
        return bool(self.writes & FIVE_TUPLE_FIELDS)

    @property
    def groupable(self) -> bool:
        """Eligible for *any* parallel group at all."""
        return (not self.opaque and not self.writes_five_tuple
                and ANN_WILDCARD not in self.annotations_written)

    # -- the conflict relation ----------------------------------------
    def conflicts_with(self, other: ActionProfile) -> tuple[str, ...]:
        """Why these two NFs cannot share a packet (empty = compatible)."""
        issues: list[str] = []
        if self.opaque or other.opaque:
            issues.append("opaque handler (packet escapes analysis)")
        shared_writes = self.writes & other.writes
        if shared_writes:
            issues.append(
                f"write/write on {sorted(shared_writes)}")
        hazard = (self.writes & other.reads) | (other.writes & self.reads)
        if hazard:
            issues.append(f"read/write overlap on {sorted(hazard)}")
        if _keys_overlap(self.annotations_written,
                         other.annotations_written):
            issues.append("write/write on a shared annotation key")
        if (_keys_overlap(self.annotations_written, other.annotations_read)
                or _keys_overlap(other.annotations_written,
                                 self.annotations_read)):
            issues.append("read/write overlap on an annotation key")
        if ((self.can_drop and other.mutates_packet)
                or (other.can_drop and self.mutates_packet)):
            issues.append("drop-vs-modify ordering")
        return tuple(issues)

    def parallel_safe_with(self, other: ActionProfile) -> bool:
        return (self.groupable and other.groupable
                and not self.conflicts_with(other))

    def merged_with(self, other: ActionProfile) -> ActionProfile:
        """Union of two effect sets (handler methods of one class)."""
        return ActionProfile(
            reads=self.reads | other.reads,
            writes=self.writes | other.writes,
            annotations_read=(self.annotations_read
                              | other.annotations_read),
            annotations_written=(self.annotations_written
                                 | other.annotations_written),
            can_drop=self.can_drop or other.can_drop,
            can_send=self.can_send or other.can_send,
            sends_messages=self.sends_messages or other.sends_messages,
            opaque=self.opaque or other.opaque)

    def as_dict(self) -> dict[str, typing.Any]:
        """Stable, human-diffable form (the golden-snapshot format)."""
        return {
            "reads": sorted(self.reads),
            "writes": sorted(self.writes),
            "annotations_read": sorted(self.annotations_read),
            "annotations_written": sorted(self.annotations_written),
            "can_drop": self.can_drop,
            "can_send": self.can_send,
            "sends_messages": self.sends_messages,
            "opaque": self.opaque,
        }


def chain_conflicts(
        profiles: typing.Sequence[ActionProfile]) -> tuple[str, ...]:
    """All pairwise conflicts within one prospective group, plus the
    structural rules (five-tuple writers never group; a SEND-capable
    member must be last)."""
    issues: list[str] = []
    for index, profile in enumerate(profiles):
        if not profile.groupable:
            issues.append(f"member {index} is not groupable")
        if profile.can_send and index != len(profiles) - 1:
            issues.append(f"member {index} can SEND but is not last")
    for i, left in enumerate(profiles):
        for j in range(i + 1, len(profiles)):
            for issue in left.conflicts_with(profiles[j]):
                issues.append(f"members {i}/{j}: {issue}")
    return tuple(issues)


# ----------------------------------------------------------------------
# Effect accumulation
# ----------------------------------------------------------------------


class _Effects:
    """Mutable accumulator the analyzer writes into."""

    def __init__(self) -> None:
        self.reads: set[str] = set()
        self.writes: set[str] = set()
        self.annotations_read: set[str] = set()
        self.annotations_written: set[str] = set()
        self.can_drop = False
        self.can_send = False
        self.sends_messages = False
        self.opaque = False

    def escape(self) -> None:
        self.opaque = True

    def to_profile(self) -> ActionProfile:
        if self.opaque:
            return ActionProfile.opaque_profile()
        return ActionProfile(
            reads=frozenset(self.reads),
            writes=frozenset(self.writes),
            annotations_read=frozenset(self.annotations_read),
            annotations_written=frozenset(self.annotations_written),
            can_drop=self.can_drop,
            can_send=self.can_send,
            sends_messages=self.sends_messages)


def _annotation_key(node: ast.AST,
                    constants: typing.Mapping[str, str]) -> str:
    """Resolve an annotation-subscript key to a string, else wildcard."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        value = constants.get(node.id)
        if isinstance(value, str):
            return value
    return ANN_WILDCARD


def _qualname_tail(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class _HandlerAnalyzer(ast.NodeVisitor):
    """Walks one handler body, tracking what happens to the packet.

    ``packet_names`` / ``batch_names`` hold every variable currently
    known to alias the packet / the batch.  Patterns that fully account
    for a subtree do not recurse into it; a *bare* packet name reaching
    the generic :meth:`visit_Name` therefore means the packet escaped
    into code the analyzer cannot follow → the profile goes opaque.
    """

    def __init__(self, effects: _Effects,
                 method_table: typing.Mapping[str, ast.AST],
                 constants: typing.Mapping[str, str],
                 packet_names: set[str], batch_names: set[str],
                 call_stack: frozenset[str]) -> None:
        self.effects = effects
        self.method_table = method_table
        self.constants = constants
        self.packet_names = packet_names
        self.batch_names = batch_names
        self.call_stack = call_stack

    # -- small helpers -------------------------------------------------
    def _is_packet(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in self.packet_names

    def _is_batch(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in self.batch_names

    def _is_packet_annotations(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Attribute)
                and node.attr == "annotations"
                and self._is_packet(node.value))

    def _visit_all(self, nodes: typing.Iterable[ast.AST | None]) -> None:
        for node in nodes:
            if node is not None:
                self.visit(node)

    # -- reads ---------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        inner = node.value
        if isinstance(inner, ast.Attribute) and self._is_packet(inner.value):
            # packet.flow.src_ip / packet.ip.dscp / packet.l4.src_port
            if inner.attr == "flow" and node.attr in FIVE_TUPLE_FIELDS:
                self.effects.reads.add(node.attr)
                return
            if inner.attr == "ip" and node.attr in IP_FIELDS:
                self.effects.reads.add(node.attr)
                return
            if inner.attr == "l4" and node.attr in L4_FIELDS:
                self.effects.reads.add(node.attr)
                return
        if self._is_packet(inner):
            if node.attr == "flow":
                self.effects.reads.update(FIVE_TUPLE_FIELDS)
            elif node.attr == "ip":
                self.effects.reads.update(IP_FIELDS)
            elif node.attr == "l4":
                self.effects.reads.update(L4_FIELDS)
            elif node.attr in SCALAR_FIELDS:
                self.effects.reads.add(node.attr)
            elif node.attr == "annotations":
                # Bare .annotations that no specific pattern consumed.
                self.effects.annotations_read.add(ANN_WILDCARD)
            elif node.attr in _PACKET_METADATA_ATTRS:
                pass
            else:
                # Unknown attribute (Packet is slotted — this includes a
                # method object escaping without a call).
                self.effects.escape()
            return
        if self._is_batch(inner):
            if node.attr == "uniform_flow":
                self.effects.reads.update(FIVE_TUPLE_FIELDS)
            elif node.attr in ("total_bytes", "sizes"):
                self.effects.reads.add("size")
            # count/packets/scope/verdict etc.: structural, not header
            # state; iteration over .packets is handled in visit_For.
            return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in self.packet_names or node.id in self.batch_names:
            # A bare packet/batch reference no pattern accounted for.
            self.effects.escape()

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_packet_annotations(node.value):
            key = _annotation_key(node.slice, self.constants)
            if isinstance(node.ctx, ast.Load):
                self.effects.annotations_read.add(key)
            else:
                self.effects.annotations_written.add(key)
            self.visit(node.slice)
            return
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # "key" in packet.annotations
        for op, comparator in zip(node.ops, node.comparators):
            if (isinstance(op, (ast.In, ast.NotIn))
                    and self._is_packet_annotations(comparator)):
                self.effects.annotations_read.add(
                    _annotation_key(node.left, self.constants))
        for child in [node.left, *node.comparators]:
            if not self._is_packet_annotations(child):
                self.visit(child)

    # -- writes --------------------------------------------------------
    def _replace_write_fields(self, value: ast.AST, header_attr: str,
                              allowed: frozenset[str]) -> frozenset[str]:
        """Fields written by ``pkt.<header> = replace(pkt.<header>, k=v)``.

        Anything that is not that exact shape rewrites the whole header.
        """
        if (isinstance(value, ast.Call)
                and _qualname_tail(value.func) == "replace"
                and value.args
                and isinstance(value.args[0], ast.Attribute)
                and value.args[0].attr == header_attr
                and self._is_packet(value.args[0].value)
                and all(kw.arg is not None for kw in value.keywords)):
            return frozenset(kw.arg for kw in value.keywords) & allowed
        return allowed

    def _handle_packet_attr_store(self, target: ast.Attribute,
                                  value: ast.AST | None) -> None:
        attr = target.attr
        if attr == "flow":
            self.effects.writes.update(FIVE_TUPLE_FIELDS)
        elif attr == "ip":
            self.effects.writes.update(
                self._replace_write_fields(value, "ip", IP_FIELDS)
                if value is not None else IP_FIELDS)
        elif attr == "l4":
            self.effects.writes.update(
                self._replace_write_fields(value, "l4", L4_FIELDS)
                if value is not None else L4_FIELDS)
        elif attr in SCALAR_FIELDS:
            self.effects.writes.add(attr)
        elif attr == "annotations":
            self.effects.annotations_written.add(ANN_WILDCARD)
        else:
            self.effects.escape()

    def visit_Assign(self, node: ast.Assign) -> None:
        # alias: p = packet
        if (self._is_packet(node.value) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            self.packet_names.add(node.targets[0].id)
            return
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and self._is_packet(target.value)):
                self._handle_packet_attr_store(target, node.value)
            elif (isinstance(target, ast.Subscript)
                    and self._is_packet_annotations(target.value)):
                self.effects.annotations_written.add(
                    _annotation_key(target.slice, self.constants))
                self.visit(target.slice)
            else:
                self.visit(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if (isinstance(target, ast.Subscript)
                and self._is_packet_annotations(target.value)):
            key = _annotation_key(target.slice, self.constants)
            self.effects.annotations_read.add(key)
            self.effects.annotations_written.add(key)
            self.visit(target.slice)
        elif (isinstance(target, ast.Attribute)
                and self._is_packet(target.value)):
            if target.attr in SCALAR_FIELDS:
                self.effects.reads.add(target.attr)
                self.effects.writes.add(target.attr)
            else:
                self.effects.escape()
        else:
            self.visit(target)
        self.visit(node.value)

    # -- calls ---------------------------------------------------------
    def _bind_and_follow(self, method: ast.AST,
                         node: ast.Call) -> None:
        """Analyze a ``self.method(...)`` call with packet/batch args
        bound to the callee's parameter names."""
        assert isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
        params = [arg.arg for arg in method.args.args]
        if params and params[0] == "self":
            params = params[1:]
        sub_packets: set[str] = set()
        sub_batches: set[str] = set()
        for index, arg in enumerate(node.args):
            if index >= len(params):
                break
            if self._is_packet(arg):
                sub_packets.add(params[index])
            elif self._is_batch(arg):
                sub_batches.add(params[index])
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            if self._is_packet(keyword.value):
                sub_packets.add(keyword.arg)
            elif self._is_batch(keyword.value):
                sub_batches.add(keyword.arg)
        sub = _HandlerAnalyzer(
            self.effects, self.method_table, self.constants,
            sub_packets, sub_batches,
            self.call_stack | {method.name})
        for statement in method.body:
            sub.visit(statement)

    def _visit_call_operands(self, node: ast.Call,
                             skip: typing.Container[ast.AST] = ()) -> None:
        for arg in node.args:
            if arg in skip:
                continue
            if self._is_packet(arg) or self._is_batch(arg):
                self.effects.escape()   # packet handed to opaque code
            else:
                self.visit(arg)
        for keyword in node.keywords:
            if keyword.value in skip:
                continue
            if self._is_packet(keyword.value) or self._is_batch(
                    keyword.value):
                self.effects.escape()
            else:
                self.visit(keyword.value)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        tail = _qualname_tail(func)

        # Verdict factories / manager messages.
        if tail == "send_message":
            self.effects.sends_messages = True
        elif tail in _VERDICT_SEND_FACTORIES:
            self.effects.can_send = True
        elif (tail == "discard" and isinstance(func, ast.Attribute)
                and "Verdict" in _qualname_tail(func.value)):
            self.effects.can_drop = True
        elif tail == "Verdict":
            # Direct construction: Verdict(NfVerdict.DISCARD / SEND).
            for arg in [*node.args,
                        *(kw.value for kw in node.keywords)]:
                kind = _qualname_tail(arg)
                if kind == "DISCARD":
                    self.effects.can_drop = True
                elif kind == "SEND":
                    self.effects.can_send = True

        # self.method(...) — follow into the class's own code.
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"):
            method = self.method_table.get(func.attr)
            if method is not None:
                if func.attr not in self.call_stack:
                    self._bind_and_follow(method, node)
                # Args already bound (or recursion cut); still walk
                # non-packet args for reads like packet.flow.
                for arg in node.args:
                    if not (self._is_packet(arg) or self._is_batch(arg)):
                        self.visit(arg)
                for keyword in node.keywords:
                    value = keyword.value
                    if not (self._is_packet(value)
                            or self._is_batch(value)):
                        self.visit(value)
                return
            self._visit_call_operands(node)
            return

        # Method calls directly on the packet.
        if isinstance(func, ast.Attribute) and self._is_packet(func.value):
            if func.attr == "rewrite_destination":
                self.effects.reads.update(FIVE_TUPLE_FIELDS)
                self.effects.writes.update({"dst_ip", "dst_port"})
                self._visit_call_operands(node)
            elif func.attr in _PACKET_REFCOUNT_METHODS:
                self._visit_call_operands(node)
            else:
                self.effects.escape()
            return

        # Dict-style annotation access: packet.annotations.get(...) etc.
        if (isinstance(func, ast.Attribute)
                and self._is_packet_annotations(func.value)):
            key_node = node.args[0] if node.args else None
            key = (_annotation_key(key_node, self.constants)
                   if key_node is not None else ANN_WILDCARD)
            if func.attr == "get":
                self.effects.annotations_read.add(key)
            elif func.attr in ("setdefault", "pop"):
                self.effects.annotations_read.add(key)
                self.effects.annotations_written.add(key)
            elif func.attr in ("clear", "update"):
                self.effects.annotations_written.add(ANN_WILDCARD)
            else:
                self.effects.annotations_read.add(ANN_WILDCARD)
            self._visit_all(node.args[1:])
            return

        if isinstance(func, ast.Attribute):
            self.visit(func.value)
        self._visit_call_operands(node)

    # -- control flow --------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        # `for pkt in batch.packets:` binds a packet alias.
        iterator = node.iter
        if (isinstance(iterator, ast.Attribute)
                and iterator.attr == "packets"
                and self._is_batch(iterator.value)
                and isinstance(node.target, ast.Name)):
            self.packet_names.add(node.target.id)
        else:
            self.visit(iterator)
        self._visit_all(node.body)
        self._visit_all(node.orelse)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            if self._is_packet(node.value) or self._is_batch(node.value):
                self.effects.escape()
            else:
                self.visit(node.value)


# ----------------------------------------------------------------------
# Class-level analysis (AST mode — usable from the lint rules)
# ----------------------------------------------------------------------


def _class_methods(classdef: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {stmt.name: stmt for stmt in classdef.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _analyze_entry(method: ast.FunctionDef, effects: _Effects,
                   method_table: typing.Mapping[str, ast.AST],
                   constants: typing.Mapping[str, str]) -> None:
    params = [arg.arg for arg in method.args.args]
    if params and params[0] == "self":
        params = params[1:]
    packet_names: set[str] = set()
    batch_names: set[str] = set()
    if params:
        if method.name in ("process_batch", "handle_batch"):
            batch_names.add(params[0])
        else:
            packet_names.add(params[0])
    analyzer = _HandlerAnalyzer(effects, method_table, constants,
                                packet_names, batch_names,
                                frozenset({method.name}))
    for statement in method.body:
        analyzer.visit(statement)


def profile_from_classdef(
        classdef: ast.ClassDef,
        constants: typing.Mapping[str, str] | None = None,
        extra_methods: typing.Mapping[str, ast.FunctionDef] | None = None,
) -> ActionProfile:
    """Infer a profile from a class AST alone (no runtime objects).

    ``constants`` maps names to string values for annotation-key
    resolution (module-level ``KEY = "literal"`` assignments);
    unresolvable keys become the wildcard.  ``extra_methods`` supplies
    inherited helper methods when analyzing a class hierarchy.
    """
    constants = constants or {}
    method_table: dict[str, ast.FunctionDef] = dict(extra_methods or {})
    method_table.update(_class_methods(classdef))
    effects = _Effects()
    for name in HANDLER_METHODS:
        method = _class_methods(classdef).get(name)
        if method is not None:
            _analyze_entry(method, effects, method_table, constants)
    return effects.to_profile()


def module_string_constants(tree: ast.Module) -> dict[str, str]:
    """Top-level ``NAME = "literal"`` assignments (annotation keys)."""
    constants: dict[str, str] = {}
    for statement in tree.body:
        if (isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and isinstance(statement.value, ast.Constant)
                and isinstance(statement.value.value, str)):
            constants[statement.targets[0].id] = statement.value.value
    return constants


# ----------------------------------------------------------------------
# Runtime inference (classes / instances)
# ----------------------------------------------------------------------

_profile_cache: dict[type, ActionProfile] = {}


def _class_chain(cls: type) -> list[type]:
    """MRO slice from ``cls`` up to (excluding) NetworkFunction."""
    chain: list[type] = []
    for base in cls.__mro__:
        if base.__name__ in ("NetworkFunction", "object"):
            break
        chain.append(base)
    return chain


def _parsed_classdef(cls: type) -> ast.ClassDef | None:
    try:
        source = textwrap.dedent(inspect.getsource(cls))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return None
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            return node
    return None


def infer_profile(target: type | object) -> ActionProfile:
    """Infer the action profile of an NF class (or instance).

    Walks the MRO below :class:`NetworkFunction` so inherited handlers
    and helpers are analyzed where they are defined; annotation-key
    names resolve through each defining module's globals.  Classes whose
    source is unavailable — and classes that are not NetworkFunction
    subclasses at all, about which nothing can be claimed — get the
    opaque (never-groupable) profile.  Results are cached per class.
    """
    cls = target if isinstance(target, type) else type(target)
    cached = _profile_cache.get(cls)
    if cached is not None:
        return cached

    if not any(base.__name__ == "NetworkFunction"
               for base in cls.__mro__):
        profile = ActionProfile.opaque_profile()
        _profile_cache[cls] = profile
        return profile

    chain = _class_chain(cls)
    classdefs: list[tuple[type, ast.ClassDef]] = []
    for base in chain:
        classdef = _parsed_classdef(base)
        if classdef is None:
            profile = ActionProfile.opaque_profile()
            _profile_cache[cls] = profile
            return profile
        classdefs.append((base, classdef))

    # Subclass definitions shadow base-class ones, front to back.
    method_table: dict[str, ast.FunctionDef] = {}
    constants: dict[str, str] = {}
    for base, classdef in reversed(classdefs):
        method_table.update(_class_methods(classdef))
        module = sys.modules.get(base.__module__)
        if module is not None:
            constants.update({name: value
                              for name, value in vars(module).items()
                              if isinstance(value, str)})

    effects = _Effects()
    for name in HANDLER_METHODS:
        method = method_table.get(name)
        if method is not None:
            _analyze_entry(method, effects, method_table, constants)
    profile = effects.to_profile()
    _profile_cache[cls] = profile
    return profile


# ----------------------------------------------------------------------
# Declared profiles (the @action_profile decorator in repro.nfs.base)
# ----------------------------------------------------------------------

#: Attribute the decorator stores its raw declaration under.
DECLARATION_ATTR = "__sdnfv_declared_profile__"


def profile_from_declaration(
        raw: typing.Mapping[str, typing.Any]) -> ActionProfile:
    """Build a profile from the raw ``@action_profile`` keyword dict."""
    return ActionProfile(
        reads=frozenset(raw.get("reads", ())),
        writes=frozenset(raw.get("writes", ())),
        annotations_read=frozenset(raw.get("annotations_read", ())),
        annotations_written=frozenset(raw.get("annotations_written", ())),
        can_drop=bool(raw.get("drops", False)),
        can_send=bool(raw.get("sends", False)),
        sends_messages=bool(raw.get("messages", False)))


def declared_profile(target: type | object) -> ActionProfile | None:
    """The profile a class *declared* via ``@action_profile``, if any."""
    cls = target if isinstance(target, type) else type(target)
    raw = getattr(cls, DECLARATION_ATTR, None)
    if raw is None:
        return None
    return profile_from_declaration(raw)


def profile_of(target: type | object) -> ActionProfile:
    """The authoritative profile: the declaration when present (NF002
    lints it against the inference), else the inferred profile."""
    declared = declared_profile(target)
    if declared is not None:
        return declared
    return infer_profile(target)


def undeclared_effects(declared: ActionProfile,
                       inferred: ActionProfile) -> tuple[str, ...]:
    """Inferred effects a declaration fails to cover (NF002's check).

    Over-declaration is allowed (it is merely conservative); wildcard
    annotation keys on the inferred side are skipped — the analyzer
    could not resolve them, so no disagreement is provable.
    """
    issues: list[str] = []
    missing_reads = inferred.reads - declared.reads
    if missing_reads:
        issues.append(f"reads {sorted(missing_reads)} not declared")
    missing_writes = inferred.writes - declared.writes
    if missing_writes:
        issues.append(f"writes {sorted(missing_writes)} not declared")
    missing_ann_reads = (inferred.annotations_read
                         - declared.annotations_read - {ANN_WILDCARD})
    if missing_ann_reads:
        issues.append(f"annotation reads {sorted(missing_ann_reads)} "
                      f"not declared")
    missing_ann_writes = (inferred.annotations_written
                          - declared.annotations_written - {ANN_WILDCARD})
    if missing_ann_writes:
        issues.append(f"annotation writes {sorted(missing_ann_writes)} "
                      f"not declared")
    if inferred.can_drop and not declared.can_drop:
        issues.append("handler can DROP but declaration says drops=False")
    if inferred.can_send and not declared.can_send:
        issues.append("handler can SEND but declaration says sends=False")
    if inferred.sends_messages and not declared.sends_messages:
        issues.append("handler sends manager messages but declaration "
                      "says messages=False")
    return tuple(issues)
