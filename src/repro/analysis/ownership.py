"""Runtime descriptor-ownership verification (the dynamic layer).

``NfvHost(..., verify=True)`` attaches a :class:`HostVerifier` that
shadows the hot-path hand-off points — ``PacketPool.alloc/reclaim``,
every ``RingBuffer`` producer, every ``NicPort`` ingress/egress, and
the flow-table write choke point — with thin instance-level wrappers.
The wrappers feed an :class:`OwnershipLedger` that knows, for every
pooled buffer, *which component holds it right now*, and flag:

- **double-release** — a second reclaim attempt on a buffer already
  back in the slab;
- **use-after-release** — a freed buffer re-entering a ring or port;
- **leak** — buffers still outstanding when the run should have
  drained;
- **flow-conflict** — an NF ``ChangeDefault`` and a controller rule
  install hitting the same (scope, match) with different defaults
  within the conflict window (the §3.4 stateful-control race);

and close each run with a packet-conservation audit over buffer
tenancies: ``injected == delivered + dropped + inflight``.

The wrappers are *instance attributes*, which is why the verifier can
exist at zero cost: a default (``verify=False``) host never executes a
single extra instruction, and the container classes (pool, rings,
ports, manager) deliberately stay un-slotted so they remain wrappable.
Per-buffer identity is ``Packet.packet_id`` — minted fresh on every
``_reset``, so a recycled buffer can never be confused with its
previous tenancy (no ABA).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.net.packet import Packet

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataplane.host import NfvHost
    from repro.dataplane.manager import NicPort
    from repro.dataplane.rings import RingBuffer


class OwnershipError(AssertionError):
    """Raised by :meth:`HostVerifier.assert_clean` on any finding."""


@dataclasses.dataclass(frozen=True)
class OwnershipIssue:
    """One finding: what went wrong, when (sim ns), and the evidence."""

    kind: str  # double-release | use-after-release | leak | flow-conflict
    at_ns: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind} @ {self.at_ns}ns] {self.detail}"


class OwnershipLedger:
    """Who holds every pooled buffer, at every instant.

    Keyed by ``packet_id`` (unique per tenancy).  Buffers the verifier
    never saw allocated (heap fallbacks, hand-built test packets) are
    ignored by every hook — the ledger only audits slab traffic.
    """

    def __init__(self) -> None:
        #: packet_id -> current owner label ("alloc", "nic:eth0",
        #: "ring:vm0-fw/rx", "wire:eth1", ...).
        self.live: dict[int, str] = {}
        #: packet_id -> owner label at reclaim time.
        self.freed: dict[int, str] = {}
        #: packet_ids that entered the host through a NIC port.
        self.injected_ids: set[int] = set()
        self.allocated = 0
        self.issues: list[OwnershipIssue] = []

    # -- hooks ---------------------------------------------------------
    def on_alloc(self, packet_id: int, now: int) -> None:
        self.allocated += 1
        self.live[packet_id] = "alloc"

    def on_transfer(self, packet_id: int, owner: str, now: int,
                    injected: bool = False) -> None:
        """A tracked buffer changed hands (ignored for unknown ids)."""
        if packet_id in self.freed:
            self.issues.append(OwnershipIssue(
                "use-after-release", now,
                f"buffer #{packet_id} handed to {owner} after being "
                f"reclaimed (last owner: {self.freed[packet_id]})"))
            return
        if packet_id in self.live:
            self.live[packet_id] = owner
            if injected:
                self.injected_ids.add(packet_id)

    def on_reclaim(self, packet_id: int, now: int) -> None:
        owner = self.live.pop(packet_id, None)
        if owner is not None:
            self.freed[packet_id] = owner

    def on_double_release(self, packet_id: int, now: int) -> None:
        self.issues.append(OwnershipIssue(
            "double-release", now,
            f"buffer #{packet_id} reclaimed again (freed earlier while "
            f"held by {self.freed.get(packet_id, '?')})"))

    # -- accounting ----------------------------------------------------
    def audit(self) -> dict[str, int | bool]:
        """The conservation audit over buffer tenancies.

        Of every buffer that entered through a NIC port, each must be
        accounted for exactly once: delivered onto the wire, dropped
        somewhere inside the host, or still in flight.
        """
        delivered = sum(1 for pid in self.injected_ids
                        if self.freed.get(pid, "").startswith("wire:"))
        dropped = sum(1 for pid in self.injected_ids
                      if pid in self.freed
                      and not self.freed[pid].startswith("wire:"))
        inflight = sum(1 for pid in self.injected_ids if pid in self.live)
        injected = len(self.injected_ids)
        return {
            "allocated": self.allocated,
            "injected": injected,
            "delivered": delivered,
            "dropped": dropped,
            "inflight": inflight,
            "balanced": injected == delivered + dropped + inflight,
        }


@dataclasses.dataclass
class VerifyReport:
    """Everything a verified run found, ready to assert on or print."""

    issues: list[OwnershipIssue]
    #: (packet_id, owner) for every buffer considered leaked.
    leaked: list[tuple[int, str]]
    audit: dict[str, int | bool]

    @property
    def ok(self) -> bool:
        return not self.issues and not self.leaked \
            and bool(self.audit["balanced"])

    def __str__(self) -> str:
        lines = [f"ownership audit: {self.audit}"]
        lines += [str(issue) for issue in self.issues]
        lines += [f"[leak] buffer #{pid} still held by {owner}"
                  for pid, owner in self.leaked]
        if self.ok:
            lines.append("clean: no leaks, no double-releases, "
                         "conservation holds")
        return "\n".join(lines)


class HostVerifier:
    """Attach the ownership ledger to one :class:`NfvHost`.

    ``conflict_window_ns`` bounds how close (in sim time) an NF write
    and a controller write to the same (scope, match) must land to be
    reported as a race; 0 means "same instant only".
    """

    def __init__(self, host: NfvHost,
                 conflict_window_ns: int = 0) -> None:
        self.host = host
        self.sim = host.sim
        self.conflict_window_ns = conflict_window_ns
        self.ledger = OwnershipLedger()
        #: (owner_object, attribute) pairs shadowed with wrappers.
        self._shadowed: list[tuple[object, str]] = []
        #: Writer context for flow-table writes ("nf:<service>" while an
        #: NF message is being applied, else controller/app = "control").
        self._writer: str | None = None
        self._rule_writes: dict[tuple[str, str], tuple[int, str, str]] = {}
        self._attach()

    # ------------------------------------------------------------------
    # Attachment / detachment
    # ------------------------------------------------------------------
    def _shadow(self, obj: object, attr: str,
                wrapper: typing.Callable) -> None:
        obj.__dict__[attr] = wrapper
        self._shadowed.append((obj, attr))

    def detach(self) -> None:
        """Remove every wrapper, restoring the class-level methods."""
        for obj, attr in self._shadowed:
            obj.__dict__.pop(attr, None)
        self._shadowed.clear()

    def _attach(self) -> None:
        manager = self.host.manager
        pool = manager.packet_pool
        if pool is not None:
            self._wrap_pool(pool)
        for port in manager.ports.values():
            self._wrap_port(port)
        for queue in manager._tx_queues:
            self._wrap_ring(queue)
        for vms in manager.vms_by_service.values():
            for vm in vms:
                self._wrap_ring(vm.rx_ring)
        self._wrap_manager(manager)

    # ------------------------------------------------------------------
    # Wrappers
    # ------------------------------------------------------------------
    def _wrap_pool(self, pool) -> None:
        ledger, sim = self.ledger, self.sim
        inner_alloc, inner_reclaim = pool.alloc, pool.reclaim

        def alloc(flow, size=64, payload="", created_at=0):
            packet = inner_alloc(flow, size=size, payload=payload,
                                 created_at=created_at)
            if packet._pool is pool:  # heap fallbacks stay untracked
                ledger.on_alloc(packet.packet_id, sim.now)
            return packet

        def reclaim(packet):
            packet_id = packet.packet_id
            was_freed = packet_id in ledger.freed
            reclaimed = inner_reclaim(packet)
            if reclaimed:
                ledger.on_reclaim(packet_id, sim.now)
            elif was_freed:
                ledger.on_double_release(packet_id, sim.now)
            return reclaimed

        self._shadow(pool, "alloc", alloc)
        self._shadow(pool, "reclaim", reclaim)

    def _wrap_port(self, port: NicPort) -> None:
        ledger, sim = self.ledger, self.sim
        inner_receive, inner_transmit = port.receive, port.transmit

        def receive(packet):
            ledger.on_transfer(packet.packet_id, f"nic:{port.name}",
                               sim.now, injected=True)
            return inner_receive(packet)

        def transmit(packet):
            ledger.on_transfer(packet.packet_id, f"wire:{port.name}",
                               sim.now)
            inner_transmit(packet)

        self._shadow(port, "receive", receive)
        self._shadow(port, "transmit", transmit)

    def _wrap_ring(self, ring: RingBuffer) -> None:
        ledger, sim = self.ledger, self.sim
        inner_one, inner_burst = ring.try_enqueue, ring.enqueue_burst
        owner = f"ring:{ring.name}"

        def _packet_of(item) -> Packet | None:
            packet = getattr(item, "packet", item)
            return packet if isinstance(packet, Packet) else None

        def try_enqueue(item):
            accepted = inner_one(item)
            packet = _packet_of(item)
            if packet is not None and accepted:
                ledger.on_transfer(packet.packet_id, owner, sim.now)
            return accepted

        def enqueue_burst(items):
            accepted = inner_burst(items)
            for item in items[:accepted]:
                packet = _packet_of(item)
                if packet is not None:
                    ledger.on_transfer(packet.packet_id, owner, sim.now)
            return accepted

        inner_batch = ring.enqueue_batch

        def enqueue_batch(batch):
            # Snapshot before the call: a partial accept splits the
            # accepted prefix *out* of ``batch``, leaving only the tail.
            packets = list(batch.packets)
            accepted = inner_batch(batch)
            for packet in packets[:accepted]:
                ledger.on_transfer(packet.packet_id, owner, sim.now)
            return accepted

        self._shadow(ring, "try_enqueue", try_enqueue)
        self._shadow(ring, "enqueue_burst", enqueue_burst)
        self._shadow(ring, "enqueue_batch", enqueue_batch)

    def _wrap_manager(self, manager) -> None:
        sim = self.sim
        inner_register = manager.register_vm
        inner_add_port = manager.add_port
        inner_install = manager.install_rule
        inner_apply = manager.apply_message

        def register_vm(nf, ring_slots=512, priority=0):
            vm = inner_register(nf, ring_slots=ring_slots,
                                priority=priority)
            self._wrap_ring(vm.rx_ring)
            return vm

        def add_port(name, line_rate_gbps=10.0):
            port = inner_add_port(name, line_rate_gbps=line_rate_gbps)
            self._wrap_port(port)
            return port

        def apply_message(message):
            sender = getattr(message, "sender_service", None)
            self._writer = f"nf:{sender}" if sender else "nf:?"
            try:
                return inner_apply(message)
            finally:
                self._writer = None

        def install_rule(entry):
            writer = self._writer or "control"
            key = (entry.scope, repr(entry.match))
            default = repr(entry.default_action)
            previous = self._rule_writes.get(key)
            if previous is not None:
                prev_ns, prev_writer, prev_default = previous
                if (sim.now - prev_ns <= self.conflict_window_ns
                        and prev_writer != writer
                        and prev_default != default):
                    self.ledger.issues.append(OwnershipIssue(
                        "flow-conflict", sim.now,
                        f"conflicting defaults for scope "
                        f"{entry.scope!r} match {key[1]}: {prev_writer} "
                        f"wrote {prev_default} then {writer} wrote "
                        f"{default} within "
                        f"{self.conflict_window_ns}ns"))
            self._rule_writes[key] = (sim.now, writer, default)
            return inner_install(entry)

        self._shadow(manager, "register_vm", register_vm)
        self._shadow(manager, "add_port", add_port)
        self._shadow(manager, "apply_message", apply_message)
        self._shadow(manager, "install_rule", install_rule)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, expect_drained: bool = True) -> VerifyReport:
        """The run's findings.

        With ``expect_drained`` (the default), every buffer still
        outstanding is reported as a leak — use after the workload has
        wound down.  Pass False mid-run to audit without leak checks.
        """
        leaked = (sorted(self.ledger.live.items()) if expect_drained
                  else [])
        return VerifyReport(issues=list(self.ledger.issues),
                            leaked=leaked, audit=self.ledger.audit())

    def assert_clean(self, expect_drained: bool = True) -> VerifyReport:
        """Raise :class:`OwnershipError` unless the run was spotless."""
        found = self.report(expect_drained=expect_drained)
        if not found.ok:
            raise OwnershipError(str(found))
        return found
