"""``repro.analysis`` — correctness tooling for the reproduction.

Two layers, both born out of the hot-path work (mempools, burst rings,
recycled kernel events, the bare timer lane) that made the data plane
fast by making it easy to break silently:

**Static** (:mod:`repro.analysis.lint`): an AST lint pass with
repo-specific rules — no wall clock or ambient randomness inside the
simulation, integer nanoseconds only, ``__slots__`` on hot-path
classes, no blocking IO in NF handlers, balanced packet-buffer
hand-offs, no mutation of flow-table dicts while iterating, and the
NF001–NF003 action-profile consistency checks.  The CLI lives in
``tools/sdnfv_lint.py`` and runs as a blocking CI gate; the repo must
pass its own lint clean.

**Profiles** (:mod:`repro.analysis.profiles`): the AST action-profile
extractor — per-NF header-field read/write sets, drop/send/message
capabilities, and the pairwise conflict relation that powers
``ServiceGraph.auto_parallel_layout()``, the manager's parallel merge
stage, and the NF-family lint rules.

**Dynamic** (:mod:`repro.analysis.ownership`): an opt-in instrumented
mode (``NfvHost(..., verify=True)``) that wraps the packet pool, ring
buffers, NIC ports, and flow-table writes with an ownership ledger —
which component holds each buffer at every instant — and flags
double-releases, use-after-release, leaked buffers, and conflicting
flow-entry writes, closing each run with a packet-conservation audit.
"""

from repro.analysis.lint import LintViolation, lint_paths, lint_source
from repro.analysis.ownership import (
    HostVerifier,
    OwnershipError,
    OwnershipIssue,
    OwnershipLedger,
    VerifyReport,
)
from repro.analysis.profiles import (
    ActionProfile,
    chain_conflicts,
    declared_profile,
    infer_profile,
    profile_of,
)

__all__ = [
    "ActionProfile",
    "HostVerifier",
    "LintViolation",
    "OwnershipError",
    "OwnershipIssue",
    "OwnershipLedger",
    "VerifyReport",
    "chain_conflicts",
    "declared_profile",
    "infer_profile",
    "lint_paths",
    "lint_source",
    "profile_of",
]
