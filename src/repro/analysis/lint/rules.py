"""Repo-specific lint rules for the SDNFV reproduction.

Every rule exists because the hot-path design makes a specific mistake
cheap to write and expensive to debug:

- **SIM001** — wall-clock or ambient randomness breaks integer-ns
  determinism (the whole reproduction rests on fixed-seed runs).
- **SIM002** — float arithmetic flowing into ``*_ns`` names silently
  de-quantizes the clock; nanoseconds are integers everywhere.
- **SIM003** — hot-path classes (packets, descriptors, kernel events)
  are allocated millions of times; a missing ``__slots__`` regresses
  memory and allocation rate without failing any test.
- **SIM004** — NF ``process``/handler bodies run inside the simulated
  packet loop; blocking IO there stalls the *real* process mid-sim.
- **SIM005** — shards of the sharded kernel may exchange only
  *serialized* boundary events; reaching through a shard handle into
  another shard's live objects (hosts, pools, managers) silently breaks
  worker-mode parity and determinism.  The same rule polices the wire:
  per-event ``pipe.send``/``pickle.dumps`` inside a boundary hot loop
  reintroduces the one-message-per-packet transport the batched codec
  (``repro.net.batch.BoundaryBatch``) replaced.
- **SIM006** — functions marked ``@columnar_kernel`` promise to work on
  batch columns and scalars; per-packet object allocation or per-row
  iteration inside one silently reintroduces the object-path costs the
  columnar refactor removed.
- **OWN001** — every pool-allocated buffer must be handed off exactly
  once per path (to a ring, port, caller, or ``free``/``release``);
  unbalanced paths are leaks or double-releases.
- **FLOW001** — flow-table-style dicts mutated while being iterated
  (the NF/controller concurrency the paper warns about, §3.4).
- **NF001** — a class declares ``read_only = True`` but its inferred
  action profile writes header/payload fields or can DROP; the manager
  trusts the declaration when fusing parallel chains (§3.3), so a lying
  bit corrupts shared packets.
- **NF002** — a class's ``@action_profile(...)`` declaration fails to
  cover its inferred effects; everything consulting the declaration
  (layout synthesis, the merge stage) would under-estimate the NF.
- **NF003** — a hand-built parallel group (a literal
  ``register_parallel_chain([...])`` or a ``FlowTableEntry`` with
  ``parallel=True``) contains members whose profiles conflict.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.engine import LintViolation, register
from repro.analysis.profiles import (
    ActionProfile,
    chain_conflicts,
    module_string_constants,
    profile_from_classdef,
    profile_from_declaration,
    undeclared_effects,
)

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _qualname(node: ast.AST) -> str:
    """Dotted name of a Name/Attribute chain ('' when not a plain chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _violation(path: str, node: ast.AST, rule_id: str,
               message: str) -> LintViolation:
    return LintViolation(path=path, line=node.lineno, col=node.col_offset,
                         rule_id=rule_id, message=message)


# ----------------------------------------------------------------------
# SIM001 — no wall clock, no ambient randomness
# ----------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "os.urandom", "uuid.uuid1", "uuid.uuid4",
})

#: datetime factory methods that read the host clock (matched on the
#: trailing two components so both ``datetime.now`` and
#: ``datetime.datetime.now`` are caught).
_WALL_CLOCK_SUFFIXES = frozenset({
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
})

#: numpy.random attributes that are *constructors* for seeded streams
#: (the blessed path via repro.sim.randomness), not ambient draws.
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence",
                           "BitGenerator", "PCG64", "Philox"})


class _Sim001:
    rule_id = "SIM001"
    summary = ("no wall clock or ambient randomness inside the simulation "
               "(route through the sim clock / repro.sim.randomness)")

    def __call__(self, tree: ast.Module, path: str) -> list[LintViolation]:
        violations = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _qualname(node.func)
            if not name:
                continue
            parts = tuple(name.split("."))
            ambient = (
                name in _WALL_CLOCK_CALLS
                or parts[-2:] in _WALL_CLOCK_SUFFIXES
                or parts[0] in ("random", "secrets")
                and len(parts) > 1
                or parts[:2] in (("np", "random"), ("numpy", "random"))
                and len(parts) > 2 and parts[2] not in _NP_RANDOM_OK
            )
            if ambient:
                violations.append(_violation(
                    path, node, self.rule_id,
                    f"ambient time/randomness call {name}(); use the sim "
                    f"clock (sim.now) or a seeded stream from "
                    f"repro.sim.randomness"))
        return violations


# ----------------------------------------------------------------------
# SIM002 — integer nanoseconds only
# ----------------------------------------------------------------------

_FLOAT_CALLS = frozenset({"float"})
_FLOAT_RNG_METHODS = frozenset({
    "exponential", "normal", "uniform", "random", "gauss", "standard_normal",
    "mean", "average", "std", "median",
})
_FLOAT_MATH = frozenset({
    "sqrt", "exp", "log", "log2", "log10", "sin", "cos", "tan", "pow",
    "hypot", "fsum", "dist",
})
_INT_CALLS = frozenset({"int", "len", "ord", "hash", "index"})


def _maybe_float(node: ast.AST) -> bool:
    """Whether this expression can evaluate to a float.

    Conservative in the false-negative direction: unknown names and
    calls are assumed integer, so the rule only fires on arithmetic that
    is *visibly* float (true division, float literals, known
    float-returning calls) and not laundered through ``int()``/
    ``round(x)``.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _maybe_float(node.left) or _maybe_float(node.right)
    if isinstance(node, ast.UnaryOp):
        return _maybe_float(node.operand)
    if isinstance(node, ast.IfExp):
        return _maybe_float(node.body) or _maybe_float(node.orelse)
    if isinstance(node, ast.BoolOp):
        return any(_maybe_float(value) for value in node.values)
    if isinstance(node, ast.Call):
        name = _qualname(node.func)
        tail = name.rsplit(".", 1)[-1] if name else ""
        if tail in _INT_CALLS:
            return False
        if tail == "round":
            # round(x) is an int; round(x, ndigits) keeps the float.
            return len(node.args) > 1 or bool(node.keywords)
        if tail in _FLOAT_CALLS or tail in _FLOAT_MATH:
            return True
        if tail in _FLOAT_RNG_METHODS:
            return True
        if tail in ("min", "max", "abs", "sum"):
            return any(_maybe_float(arg) for arg in node.args)
        return False
    return False


def _is_float_annotation(annotation: ast.AST | None) -> bool:
    return (isinstance(annotation, ast.Name) and annotation.id == "float") \
        or (isinstance(annotation, ast.Constant)
            and annotation.value == "float")


class _Sim002:
    rule_id = "SIM002"
    summary = "no float arithmetic flowing into *_ns names (integer ns only)"

    def _check_value(self, path: str, node: ast.AST, target_name: str,
                     value: ast.AST | None,
                     violations: list[LintViolation]) -> None:
        if value is not None and _maybe_float(value):
            violations.append(_violation(
                path, node, self.rule_id,
                f"float-valued expression flows into {target_name!r}; "
                f"nanosecond quantities are integers (wrap in round()/"
                f"int() or rename without the _ns suffix)"))

    def __call__(self, tree: ast.Module, path: str) -> list[LintViolation]:
        violations: list[LintViolation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    name = _target_ns_name(target)
                    if name:
                        self._check_value(path, node, name, node.value,
                                          violations)
            elif isinstance(node, ast.AugAssign):
                name = _target_ns_name(node.target)
                if name:
                    self._check_value(path, node, name, node.value,
                                      violations)
            elif isinstance(node, ast.AnnAssign):
                name = _target_ns_name(node.target)
                if name:
                    if _is_float_annotation(node.annotation):
                        violations.append(_violation(
                            path, node, self.rule_id,
                            f"{name!r} is annotated float; nanosecond "
                            f"quantities are integers"))
                    self._check_value(path, node, name, node.value,
                                      violations)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.endswith("_ns"):
                    if _is_float_annotation(node.returns):
                        violations.append(_violation(
                            path, node, self.rule_id,
                            f"{node.name}() is annotated to return float; "
                            f"*_ns functions return integer nanoseconds"))
                    for inner in ast.walk(node):
                        if (isinstance(inner, ast.Return)
                                and inner.value is not None
                                and _maybe_float(inner.value)):
                            self._check_value(path, inner,
                                              f"{node.name}() return",
                                              inner.value, violations)
                for arg, default in _args_with_defaults(node):
                    if arg.arg.endswith("_ns"):
                        if _is_float_annotation(arg.annotation):
                            violations.append(_violation(
                                path, arg, self.rule_id,
                                f"parameter {arg.arg!r} is annotated "
                                f"float; nanosecond quantities are "
                                f"integers"))
                        self._check_value(path, arg, arg.arg, default,
                                          violations)
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg and keyword.arg.endswith("_ns"):
                        self._check_value(path, keyword.value, keyword.arg,
                                          keyword.value, violations)
        return violations


def _target_ns_name(target: ast.AST) -> str | None:
    if isinstance(target, ast.Name) and target.id.endswith("_ns"):
        return target.id
    if isinstance(target, ast.Attribute) and target.attr.endswith("_ns"):
        return target.attr
    return None


def _args_with_defaults(node: ast.FunctionDef | ast.AsyncFunctionDef):
    args = node.args
    every = args.posonlyargs + args.args
    defaults: list[ast.AST | None] = [None] * (len(every)
                                               - len(args.defaults))
    defaults += list(args.defaults)
    yield from zip(every, defaults, strict=True)
    for arg, default in zip(args.kwonlyargs, args.kw_defaults, strict=True):
        yield arg, default


# ----------------------------------------------------------------------
# SIM003 — hot-path classes declare __slots__
# ----------------------------------------------------------------------

#: Classes reachable from the per-packet loop: allocated (or recycled)
#: once per packet / descriptor / kernel event.  Ring *containers*
#: (RingBuffer, NicPort, PacketPool, NfManager) are deliberately absent:
#: they are few per host and stay open for instance-level instrumentation
#: (the ownership verifier wraps their bound methods).
HOT_PATH_CLASSES = frozenset({
    "Packet", "PacketDescriptor", "FiveTuple", "Event", "Timeout",
    "Process", "_Condition", "AnyOf", "AllOf", "Store", "PacketBatch",
})


def _declares_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        targets = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            name = _qualname(decorator.func)
            if name.rsplit(".", 1)[-1] == "dataclass":
                for keyword in decorator.keywords:
                    if (keyword.arg == "slots"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True):
                        return True
    return False


class _Sim003:
    rule_id = "SIM003"
    summary = "hot-path classes (per-packet objects) must declare __slots__"

    def __call__(self, tree: ast.Module, path: str) -> list[LintViolation]:
        violations = []
        for node in ast.walk(tree):
            if (isinstance(node, ast.ClassDef)
                    and node.name in HOT_PATH_CLASSES
                    and not _declares_slots(node)):
                violations.append(_violation(
                    path, node, self.rule_id,
                    f"hot-path class {node.name!r} does not declare "
                    f"__slots__ (allocated per packet/event; dict "
                    f"instances regress the zero-allocation fast path)"))
        return violations


# ----------------------------------------------------------------------
# SIM004 — no blocking / IO calls inside NF handler bodies
# ----------------------------------------------------------------------

_NF_HANDLER_METHODS = frozenset({
    "process", "handle_packet", "processing_cost_ns", "on_register",
})
_BLOCKING_BARE = frozenset({"open", "input", "print", "breakpoint",
                            "exec", "eval", "compile"})
_BLOCKING_EXACT = frozenset({"time.sleep", "os.system", "os.popen",
                             "os.fork", "os.wait"})
_BLOCKING_PREFIXES = ("socket.", "subprocess.", "requests.", "urllib.",
                      "http.", "shutil.")


def _is_nf_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = _qualname(base)
        tail = name.rsplit(".", 1)[-1]
        if "NetworkFunction" in tail or tail.endswith("Nf"):
            return True
    return False


class _Sim004:
    rule_id = "SIM004"
    summary = "no blocking/IO calls inside NF process/handler bodies"

    def __call__(self, tree: ast.Module, path: str) -> list[LintViolation]:
        violations = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.ClassDef) and _is_nf_class(node)):
                continue
            for method in node.body:
                if not (isinstance(method, ast.FunctionDef)
                        and method.name in _NF_HANDLER_METHODS):
                    continue
                for inner in ast.walk(method):
                    if not isinstance(inner, ast.Call):
                        continue
                    name = _qualname(inner.func)
                    if (name in _BLOCKING_BARE or name in _BLOCKING_EXACT
                            or name.startswith(_BLOCKING_PREFIXES)):
                        violations.append(_violation(
                            path, inner, self.rule_id,
                            f"blocking/IO call {name}() inside NF handler "
                            f"{node.name}.{method.name}; NF bodies run in "
                            f"the simulated packet loop — model the cost "
                            f"via processing_cost_ns instead"))
        return violations


# ----------------------------------------------------------------------
# SIM005 — no cross-shard object sharing in the sharded kernel
# ----------------------------------------------------------------------

#: Names of collections that hold per-shard runtimes / worker handles
#: inside ``repro.sim.sharded``.
_SHARD_COLLECTIONS = frozenset({
    "shards", "_shards", "runtimes", "_runtimes", "peers", "workers",
})

#: The serialized conductor protocol — the only attributes conductor
#: code may touch on another shard's handle.  Everything else (hosts,
#: pools, managers, sims) is that shard's private world.
_SHARD_PROTOCOL = frozenset({
    "shard_id", "advance", "deliver", "take_outbox", "collect",
})


#: Loop variables/iterables that mark a *per-event* boundary hot loop.
#: A ``.send``/``pickle.dumps`` call inside such a loop ships one pipe
#: message per packet — the unbatched transport the columnar boundary
#: codec exists to prevent.  Loops over workers, shards, or destination
#: buckets (one payload per peer) are fine.
_PER_EVENT_NAMES = frozenset({
    "event", "events", "packet", "packets", "row", "rows",
    "frame", "frames", "outbox", "tagged", "boundary_events",
})

#: Per-event serialization calls: bare names (``dumps``) and dotted
#: tails (``pickle.dumps``); ``.send`` on anything counts.
_SERIALIZE_CALLS = frozenset({"dumps", "dump"})


def _is_sharded_kernel(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return normalized.endswith("repro/sim/sharded.py")


def _loop_names(node: ast.For) -> set[str]:
    names: set[str] = set()
    for part in (node.target, node.iter):
        for child in ast.walk(part):
            if isinstance(child, ast.Name):
                names.add(child.id)
            elif isinstance(child, ast.Attribute):
                names.add(child.attr)
    return names


class _Sim005:
    rule_id = "SIM005"
    summary = ("no cross-shard object sharing in repro.sim.sharded "
               "(shards exchange batched serialized boundary events "
               "only)")

    def __call__(self, tree: ast.Module, path: str) -> list[LintViolation]:
        if not _is_sharded_kernel(path):
            return []
        violations = []
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                violations.extend(self._check_event_loop(node, path))
            if not (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Subscript)):
                continue
            base = node.value.value
            base_name = (base.id if isinstance(base, ast.Name)
                         else base.attr if isinstance(base, ast.Attribute)
                         else "")
            if base_name not in _SHARD_COLLECTIONS:
                continue
            if node.attr in _SHARD_PROTOCOL:
                continue
            violations.append(_violation(
                path, node, self.rule_id,
                f"cross-shard access {base_name}[...].{node.attr}; one "
                f"shard may not touch another shard's live objects — "
                f"exchange serialized boundary events via the "
                f"advance/deliver/take_outbox/collect protocol"))
        return violations

    def _check_event_loop(self, loop: ast.For,
                          path: str) -> list[LintViolation]:
        """Flag per-event pipe sends / pickling inside boundary loops."""
        if not (_loop_names(loop) & _PER_EVENT_NAMES):
            return []
        violations = []
        for body_item in loop.body + loop.orelse:
            for node in ast.walk(body_item):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = (func.attr if isinstance(func, ast.Attribute)
                        else func.id if isinstance(func, ast.Name)
                        else "")
                if name == "send" or name in _SERIALIZE_CALLS:
                    violations.append(_violation(
                        path, node, self.rule_id,
                        f"per-event {name}() inside a boundary hot "
                        f"loop ships one pipe message per packet; "
                        f"encode the window's events once "
                        f"(BoundaryBatch / the transport codec) and "
                        f"send the batch"))
        return violations


# ----------------------------------------------------------------------
# SIM006 — columnar kernels touch columns and scalars only
# ----------------------------------------------------------------------

_COLUMNAR_MARKER = "columnar_kernel"

#: Per-packet escape hatches: constructing row objects or rematerializing
#: the row store defeats the whole point of a columnar kernel.
_ROW_OBJECT_CALLS = frozenset({
    "Packet", "PacketDescriptor", "_desc_alloc", "materialize",
})


def _is_columnar_kernel(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = (decorator.func if isinstance(decorator, ast.Call)
                  else decorator)
        name = _qualname(target)
        if name and name.rsplit(".", 1)[-1] == _COLUMNAR_MARKER:
            return True
    return False


def _iterates_row_store(iter_node: ast.AST) -> bool:
    """Whether this iterable walks the per-packet row store
    (``something.packets``, possibly through enumerate/zip/reversed or a
    slice)."""
    if isinstance(iter_node, ast.Attribute):
        return iter_node.attr == "packets"
    if isinstance(iter_node, ast.Subscript):
        return _iterates_row_store(iter_node.value)
    if isinstance(iter_node, ast.Call):
        return any(_iterates_row_store(arg) for arg in iter_node.args)
    return False


class _Sim006:
    rule_id = "SIM006"
    summary = ("columnar kernels (@columnar_kernel) work on columns and "
               "scalars only — no per-packet objects, no per-row iteration")

    def __call__(self, tree: ast.Module, path: str) -> list[LintViolation]:
        violations: list[LintViolation] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_columnar_kernel(node):
                continue
            self._check_kernel(node, path, violations)
        return violations

    def _check_kernel(self, kernel, path: str,
                      violations: list[LintViolation]) -> None:
        for inner in ast.walk(kernel):
            if isinstance(inner, ast.Call):
                name = _qualname(inner.func)
                tail = name.rsplit(".", 1)[-1] if name else ""
                if tail in _ROW_OBJECT_CALLS:
                    violations.append(_violation(
                        path, inner, self.rule_id,
                        f"per-packet object call {tail}() inside columnar "
                        f"kernel {kernel.name}(); kernels operate on batch "
                        f"columns — move row materialization to the "
                        f"object-path fallback"))
            elif isinstance(inner, (ast.For, ast.AsyncFor)):
                if _iterates_row_store(inner.iter):
                    violations.append(_violation(
                        path, inner, self.rule_id,
                        f"per-row iteration over the packet store inside "
                        f"columnar kernel {kernel.name}(); use the batch "
                        f"columns (sizes/packed_keys/flags) instead"))
            elif isinstance(inner, (ast.ListComp, ast.SetComp, ast.DictComp,
                                    ast.GeneratorExp)):
                for generator in inner.generators:
                    if _iterates_row_store(generator.iter):
                        violations.append(_violation(
                            path, inner, self.rule_id,
                            f"per-row comprehension over the packet store "
                            f"inside columnar kernel {kernel.name}(); use "
                            f"the batch columns instead"))


# ----------------------------------------------------------------------
# OWN001 — pool allocations are handed off exactly once per path
# ----------------------------------------------------------------------

_RELEASE_METHODS = frozenset({"free", "release"})

#: Hand-off counts are capped here: anything >= 2 is already a bug.
_MANY = 2


def _lambda_captures(node: ast.Lambda, var: str) -> bool:
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name) and inner.id == var:
            return True
    return False


def _handoffs_in_expr(node: ast.AST | None, var: str) -> int:
    """How many times ``var``'s buffer escapes in this expression.

    An escape is: being passed as a call argument, returned/yielded,
    stored somewhere, captured by a closure, or an explicit
    ``var.free()`` / ``var.release()``.  Plain reads (``var.field``,
    comparisons, boolean tests) do not count.
    """
    if node is None:
        return 0
    if isinstance(node, ast.Name):
        return 1 if node.id == var else 0
    if isinstance(node, ast.Attribute):
        return 0  # field/method read, not an escape
    if isinstance(node, (ast.Compare, ast.BoolOp)):
        return 0  # truth-value reads
    if isinstance(node, ast.Lambda):
        captured = _lambda_captures(node, var)
        captured = captured or any(_handoffs_in_expr(default, var)
                                   for default in node.args.defaults)
        return 1 if captured else 0
    if isinstance(node, ast.Call):
        count = 0
        func = node.func
        if isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name) and func.value.id == var):
                if func.attr in _RELEASE_METHODS:
                    count += 1
                # other var.method() calls are reads on the buffer
            else:
                count += _handoffs_in_expr(func.value, var)
        for arg in node.args:
            count += _handoffs_in_expr(arg, var)
        for keyword in node.keywords:
            count += _handoffs_in_expr(keyword.value, var)
        return count
    if isinstance(node, ast.Subscript):
        return _handoffs_in_expr(node.value, var)
    if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
        return 0
    if isinstance(node, ast.Yield):
        return _handoffs_in_expr(node.value, var)
    count = 0
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.expr):
            count += _handoffs_in_expr(child, var)
    return count


def _is_pool_alloc(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr in ("alloc", "_alloc")
    return isinstance(func, ast.Name) and func.id in ("alloc", "_alloc")


class _Own001:
    rule_id = "OWN001"
    summary = ("every PacketPool allocation is handed off exactly once per "
               "path (ring/port/caller or free/release)")

    def __call__(self, tree: ast.Module, path: str) -> list[LintViolation]:
        violations: list[LintViolation] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node, path, violations)
        return violations

    def _check_function(self, fn, path: str,
                        violations: list[LintViolation]) -> None:
        allocs: dict[str, ast.AST] = {}
        exit_env, finished = self._walk(fn.body, {}, allocs)
        for env in [*finished, exit_env]:
            for var, counts in env.items():
                if 0 in counts:
                    violations.append(_violation(
                        path, allocs[var], self.rule_id,
                        f"buffer {var!r} from pool alloc may leak: some "
                        f"path through {fn.name}() neither hands it off "
                        f"nor frees it"))
                if any(count >= _MANY for count in counts):
                    violations.append(_violation(
                        path, allocs[var], self.rule_id,
                        f"buffer {var!r} from pool alloc may be handed "
                        f"off/released more than once on a path through "
                        f"{fn.name}()"))

    # -- tiny path-sensitive walker ----------------------------------
    # env: var -> set of hand-off counts reachable on live paths.
    def _walk(self, statements, env, allocs):
        env = {var: set(counts) for var, counts in env.items()}
        finished: list[dict] = []

        def bump(expressions) -> None:
            for var in list(env):
                hit = sum(_handoffs_in_expr(expr, var)
                          for expr in expressions)
                if hit:
                    env[var] = {min(count + hit, _MANY)
                                for count in env[var]}

        for statement in statements:
            if isinstance(statement, ast.Assign):
                bump([statement.value])
                if (_is_pool_alloc(statement.value)
                        and len(statement.targets) == 1
                        and isinstance(statement.targets[0], ast.Name)):
                    name = statement.targets[0].id
                    allocs[name] = statement
                    env[name] = {0}
            elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
                bump([statement.value])
            elif isinstance(statement, ast.Expr):
                bump([statement.value])
            elif isinstance(statement, ast.Return):
                bump([statement.value])
                finished.append(dict(env))
                return {}, finished
            elif isinstance(statement, ast.Raise):
                # Error path: ownership obligations void (caller unwinds).
                return {}, finished
            elif isinstance(statement, ast.If):
                then_env, then_done = self._walk(statement.body, env,
                                                 allocs)
                else_env, else_done = self._walk(statement.orelse, env,
                                                 allocs)
                finished.extend(then_done)
                finished.extend(else_done)
                env = _merge(then_env, else_env)
            elif isinstance(statement, (ast.For, ast.While)):
                body_env, body_done = self._walk(statement.body, env,
                                                 allocs)
                finished.extend(body_done)
                # 0-or-1 iterations: enough to catch straight-line bugs
                # without modeling loop fixpoints.
                env = _merge(env, body_env)
            elif isinstance(statement, ast.Try):
                ok_env, ok_done = self._walk(
                    statement.body + statement.orelse
                    + statement.finalbody, env, allocs)
                finished.extend(ok_done)
                merged = ok_env
                for handler in statement.handlers:
                    handler_env, handler_done = self._walk(
                        handler.body + statement.finalbody, env, allocs)
                    finished.extend(handler_done)
                    merged = _merge(merged, handler_env)
                env = merged
            elif isinstance(statement, ast.With):
                bump([item.context_expr for item in statement.items])
                env, with_done = self._walk(statement.body, env, allocs)
                finished.extend(with_done)
            elif isinstance(statement,
                            (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested function capturing the buffer is an escape.
                for var in list(env):
                    for inner in ast.walk(statement):
                        if (isinstance(inner, ast.Name)
                                and inner.id == var):
                            env[var] = {min(count + 1, _MANY)
                                        for count in env[var]}
                            break
            # other statements (pass, imports, etc.): no effect
        return env, finished


def _merge(left: dict, right: dict) -> dict:
    merged = {var: set(counts) for var, counts in left.items()}
    for var, counts in right.items():
        merged.setdefault(var, set()).update(counts)
    return merged


# ----------------------------------------------------------------------
# FLOW001 — no mutation of a dict while iterating it
# ----------------------------------------------------------------------

_DICT_VIEWS = frozenset({"items", "keys", "values"})
_MUTATORS = frozenset({
    "pop", "popitem", "clear", "update", "setdefault", "add", "remove",
    "discard", "append", "extend", "insert",
})
_SNAPSHOT_CALLS = frozenset({"list", "tuple", "sorted", "set", "dict"})


def _iteration_base(iter_node: ast.AST) -> ast.AST | None:
    """The container being iterated directly (None when snapshotted)."""
    if isinstance(iter_node, ast.Call):
        name = _qualname(iter_node.func)
        if name in _SNAPSHOT_CALLS:
            return None
        func = iter_node.func
        if (isinstance(func, ast.Attribute) and func.attr in _DICT_VIEWS
                and isinstance(func.value, (ast.Name, ast.Attribute))):
            return func.value
        return None
    if isinstance(iter_node, (ast.Name, ast.Attribute)):
        return iter_node
    return None


class _Flow001:
    rule_id = "FLOW001"
    summary = "no mutation of a dict/container while iterating it"

    def __call__(self, tree: ast.Module, path: str) -> list[LintViolation]:
        violations = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            base = _iteration_base(node.iter)
            if base is None:
                continue
            base_text = ast.unparse(base)
            for inner in ast.walk(node):
                if inner is node.iter:
                    continue
                if self._mutates(inner, base_text):
                    violations.append(_violation(
                        path, inner, self.rule_id,
                        f"{base_text!r} is mutated while being iterated "
                        f"(line {node.lineno}); iterate over "
                        f"list({base_text}...) instead"))
        return violations

    @staticmethod
    def _mutates(node: ast.AST, base_text: str) -> bool:
        if isinstance(node, ast.Call):
            func = node.func
            return (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                    and ast.unparse(func.value) == base_text)
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            return any(isinstance(target, ast.Subscript)
                       and ast.unparse(target.value) == base_text
                       for target in targets)
        if isinstance(node, ast.Delete):
            return any(isinstance(target, ast.Subscript)
                       and ast.unparse(target.value) == base_text
                       for target in node.targets)
        return False


# ----------------------------------------------------------------------
# NF001 — read_only=True classes must not write or drop
# ----------------------------------------------------------------------


def _read_only_true_anchor(node: ast.ClassDef) -> ast.AST | None:
    """The class-level ``read_only = True`` statement, if present.

    Instance-level assignments (``self.read_only = ...`` in __init__)
    are deliberately not matched: they are per-instance configuration,
    not a class contract the analyzer can check statically.
    """
    for statement in node.body:
        targets: list[ast.AST] = []
        value: ast.AST | None = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign):
            targets, value = [statement.target], statement.value
        for target in targets:
            if (isinstance(target, ast.Name) and target.id == "read_only"
                    and isinstance(value, ast.Constant)
                    and value.value is True):
                return statement
    return None


class _Nf001:
    rule_id = "NF001"
    summary = ("declared read_only=True but the inferred action profile "
               "writes header/payload fields or can DROP")

    def __call__(self, tree: ast.Module, path: str) -> list[LintViolation]:
        violations: list[LintViolation] = []
        constants = module_string_constants(tree)
        for node in ast.walk(tree):
            if not (isinstance(node, ast.ClassDef) and _is_nf_class(node)):
                continue
            anchor = _read_only_true_anchor(node)
            if anchor is None:
                continue
            profile = profile_from_classdef(node, constants)
            problems = []
            if profile.opaque:
                problems.append("hands the packet to code the analyzer "
                                "cannot follow")
            else:
                if profile.writes:
                    problems.append(f"writes {sorted(profile.writes)}")
                if profile.can_drop:
                    problems.append("can DROP")
            if problems:
                violations.append(_violation(
                    path, anchor, self.rule_id,
                    f"{node.name} declares read_only=True but its handler "
                    f"{' and '.join(problems)}; the manager trusts this "
                    f"bit when sharing packets across parallel NFs — fix "
                    f"the declaration or suppress with a justification"))
        return violations


# ----------------------------------------------------------------------
# NF002 — @action_profile declarations must cover inferred effects
# ----------------------------------------------------------------------


def _parse_profile_decorator(
        node: ast.ClassDef) -> tuple[ast.AST | None, dict | None]:
    """The class's ``@action_profile(...)`` call and its literal kwargs.

    Returns ``(None, None)`` when undecorated and ``(decorator, None)``
    when decorated but not with resolvable literals (nothing provable).
    """
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = _qualname(decorator.func)
        if name.rsplit(".", 1)[-1] != "action_profile":
            continue
        kwargs: dict = {}
        for keyword in decorator.keywords:
            if keyword.arg is None:
                return decorator, None
            value = keyword.value
            if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                items = []
                for element in value.elts:
                    if (isinstance(element, ast.Constant)
                            and isinstance(element.value, str)):
                        items.append(element.value)
                    else:
                        return decorator, None
                kwargs[keyword.arg] = tuple(items)
            elif isinstance(value, ast.Constant):
                kwargs[keyword.arg] = value.value
            else:
                return decorator, None
        return decorator, kwargs
    return None, None


class _Nf002:
    rule_id = "NF002"
    summary = ("@action_profile declaration does not cover the effects "
               "inferred from the handler ASTs")

    def __call__(self, tree: ast.Module, path: str) -> list[LintViolation]:
        violations: list[LintViolation] = []
        constants = module_string_constants(tree)
        for node in ast.walk(tree):
            if not (isinstance(node, ast.ClassDef) and _is_nf_class(node)):
                continue
            decorator, kwargs = _parse_profile_decorator(node)
            if decorator is None or kwargs is None:
                continue
            inferred = profile_from_classdef(node, constants)
            if inferred.opaque:
                continue  # nothing provable against an opaque inference
            declared = profile_from_declaration(kwargs)
            issues = undeclared_effects(declared, inferred)
            if issues:
                violations.append(_violation(
                    path, decorator, self.rule_id,
                    f"{node.name}'s declared profile disagrees with the "
                    f"inferred one: {'; '.join(issues)}"))
        return violations


# ----------------------------------------------------------------------
# NF003 — hand-built parallel groups must be conflict-free
# ----------------------------------------------------------------------


def _builtin_nf_profile(class_name: str) -> ActionProfile | None:
    """Profile of a built-in NF by class name (None when unknown).

    Imported lazily so linting arbitrary files never *requires* the
    simulator packages; without them the rule simply resolves fewer
    members (and stays silent for those groups).
    """
    try:
        import repro.nfs as nfs
        from repro.analysis.profiles import profile_of
    except Exception:  # pragma: no cover - repro.nfs unavailable
        return None
    cls = getattr(nfs, class_name, None)
    if isinstance(cls, type) and any(
            base.__name__ == "NetworkFunction" for base in cls.__mro__[1:]):
        return profile_of(cls)
    return None


def _literal_strings(node: ast.AST) -> list[str] | None:
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    values = []
    for element in node.elts:
        if (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            values.append(element.value)
        else:
            return None
    return values


def _parallel_group_members(node: ast.Call) -> list[str] | None:
    """Member service ids of a hand-built parallel group, else None."""
    tail = _qualname(node.func).rsplit(".", 1)[-1]
    if tail == "register_parallel_chain":
        operand = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "services":
                operand = keyword.value
        return _literal_strings(operand) if operand is not None else None
    if tail == "FlowTableEntry":
        parallel = False
        actions: ast.AST | None = None
        for keyword in node.keywords:
            if (keyword.arg == "parallel"
                    and isinstance(keyword.value, ast.Constant)):
                parallel = keyword.value.value is True
            elif keyword.arg == "actions":
                actions = keyword.value
        if not parallel or not isinstance(actions, (ast.List, ast.Tuple)):
            return None
        members = []
        for element in actions.elts:
            if (isinstance(element, ast.Call)
                    and _qualname(element.func).rsplit(
                        ".", 1)[-1] == "ToService"
                    and element.args
                    and isinstance(element.args[0], ast.Constant)
                    and isinstance(element.args[0].value, str)):
                members.append(element.args[0].value)
            else:
                return None
        return members
    return None


class _Nf003:
    rule_id = "NF003"
    summary = ("hand-built parallel group contains members whose action "
               "profiles conflict")

    def __call__(self, tree: ast.Module, path: str) -> list[LintViolation]:
        constants = module_string_constants(tree)
        local_classes = {
            node.name: node for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef) and _is_nf_class(node)}
        # service id -> profile, bound by NF constructor calls in this
        # module: ClassName("service", ...).  Heterogeneous rebinding of
        # one service id unions the profiles (conservative).
        bindings: dict[str, ActionProfile] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            class_name = _qualname(node.func).rsplit(".", 1)[-1]
            if not (node.args and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                continue
            if class_name in local_classes:
                profile = profile_from_classdef(local_classes[class_name],
                                                constants)
            else:
                profile = _builtin_nf_profile(class_name)
            if profile is None:
                continue
            service = node.args[0].value
            existing = bindings.get(service)
            bindings[service] = (profile if existing is None
                                 else existing.merged_with(profile))
        violations: list[LintViolation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            members = _parallel_group_members(node)
            if members is None or len(members) < 2:
                continue
            profiles = [bindings.get(member) for member in members]
            if any(profile is None for profile in profiles):
                continue  # unresolvable member: nothing provable
            issues = chain_conflicts(profiles)
            if issues:
                violations.append(_violation(
                    path, node, self.rule_id,
                    f"parallel group {members!r} is not conflict-free: "
                    f"{'; '.join(issues)}"))
        return violations


# ----------------------------------------------------------------------
# Registration (import order = report order)
# ----------------------------------------------------------------------
SIM001 = register(_Sim001())
SIM002 = register(_Sim002())
SIM003 = register(_Sim003())
SIM004 = register(_Sim004())
SIM005 = register(_Sim005())
SIM006 = register(_Sim006())
OWN001 = register(_Own001())
FLOW001 = register(_Flow001())
NF001 = register(_Nf001())
NF002 = register(_Nf002())
NF003 = register(_Nf003())
