"""The lint engine: rule registry, suppression comments, file walking.

A *rule* is a callable ``rule(tree, source_lines) -> list[LintViolation]``
registered with :func:`register`.  The engine parses each file once,
runs every selected rule over the tree, then filters out violations
suppressed by an inline ``# sdnfv: noqa`` comment on the flagged line:

    now = time.time()            # sdnfv: noqa SIM001  (solver telemetry)
    anything_goes()              # sdnfv: noqa

A bare ``noqa`` suppresses every rule on that line; naming one or more
rule IDs (comma or space separated) suppresses just those.  Suppressions
are deliberate, grep-able escape hatches — the CI gate counts on them
being rare and justified.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re
import typing

#: ``# sdnfv: noqa`` with an optional rule list after it.
_NOQA_RE = re.compile(r"#\s*sdnfv:\s*noqa\b\s*:?\s*([A-Z0-9, ]*)")


@dataclasses.dataclass(frozen=True)
class LintViolation:
    """One finding: where it is, which rule fired, and why."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule_id} {self.message}")


class Rule(typing.Protocol):  # pragma: no cover - typing aid
    rule_id: str
    summary: str

    def __call__(self, tree: ast.Module,
                 path: str) -> list[LintViolation]: ...


#: Registered rules, in registration order (= report order).
RULES: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add a rule to the registry (used as a decorator on rule objects)."""
    if rule.rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    RULES[rule.rule_id] = rule
    return rule


def suppressed_rules(line: str) -> frozenset[str] | None:
    """Rule IDs a ``# sdnfv: noqa`` comment on this line suppresses.

    Returns None when there is no suppression, an empty frozenset for a
    bare ``noqa`` (suppress everything), else the named rule IDs.
    """
    found = _NOQA_RE.search(line)
    if found is None:
        return None
    names = [name for name in re.split(r"[,\s]+", found.group(1).strip())
             if name]
    return frozenset(names)


def lint_source(source: str, path: str = "<string>",
                select: typing.Iterable[str] | None = None
                ) -> list[LintViolation]:
    """Run the selected rules (default: all) over one source text."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    selected = list(RULES) if select is None else list(select)
    violations: list[LintViolation] = []
    for rule_id in selected:
        violations.extend(RULES[rule_id](tree, path))
    kept: list[LintViolation] = []
    for violation in sorted(violations,
                            key=lambda v: (v.line, v.col, v.rule_id)):
        line_text = (lines[violation.line - 1]
                     if 0 < violation.line <= len(lines) else "")
        suppressed = suppressed_rules(line_text)
        if suppressed is not None and (not suppressed
                                       or violation.rule_id in suppressed):
            continue
        kept.append(violation)
    return kept


def lint_file(path: pathlib.Path,
              select: typing.Iterable[str] | None = None
              ) -> list[LintViolation]:
    return lint_source(path.read_text(encoding="utf-8"), str(path), select)


def lint_paths(paths: typing.Iterable[str | pathlib.Path],
               select: typing.Iterable[str] | None = None
               ) -> list[LintViolation]:
    """Lint files and directories (recursively, ``*.py`` only)."""
    violations: list[LintViolation] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for file_path in sorted(path.rglob("*.py")):
                violations.extend(lint_file(file_path, select))
        else:
            violations.extend(lint_file(path, select))
    return violations
