"""AST lint pass with SDNFV-repo-specific rules (see ``rules`` module)."""

from __future__ import annotations

from repro.analysis.lint import rules  # noqa: F401 - registers the rules
from repro.analysis.lint.engine import (
    RULES,
    LintViolation,
    lint_file,
    lint_paths,
    lint_source,
    register,
    suppressed_rules,
)

__all__ = [
    "RULES",
    "LintViolation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "suppressed_rules",
]
