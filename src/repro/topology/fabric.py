"""The Fabric: physical wiring between simulated hosts.

Service graphs can span hosts (Fig. 3 deploys the anomaly and video
graphs across two machines); the fabric moves frames between host NIC
ports with link propagation delay, so multi-host chains run end to end:
packets leaving host 1's trunk port arrive at host 2's ingress and
continue through host 2's flow table.
"""

from __future__ import annotations

import dataclasses

from repro.dataplane.host import NfvHost
from repro.net.packet import Packet
from repro.sim.simulator import Simulator
from repro.sim.units import US


@dataclasses.dataclass(frozen=True)
class Wire:
    """One unidirectional patch: (host, port) → (host, port)."""

    src_host: str
    src_port: str
    dst_host: str
    dst_port: str
    delay_ns: int = 5 * US


class Fabric:
    """Connects host ports with delayed, lossless wires."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.hosts: dict[str, NfvHost] = {}
        self.wires: list[Wire] = []
        self.frames_carried = 0
        self.frames_dropped_at_rx = 0

    def add_host(self, host: NfvHost) -> None:
        if host.name in self.hosts:
            raise ValueError(f"duplicate host {host.name!r}")
        self.hosts[host.name] = host

    def connect(self, src_host: str, src_port: str, dst_host: str,
                dst_port: str, delay_ns: int = 5 * US,
                bidirectional: bool = True) -> None:
        """Patch two ports together (both directions by default)."""
        for name in (src_host, dst_host):
            if name not in self.hosts:
                raise KeyError(f"unknown host {name!r}")
        self._attach(Wire(src_host, src_port, dst_host, dst_port,
                          delay_ns))
        if bidirectional:
            self._attach(Wire(dst_host, dst_port, src_host, src_port,
                              delay_ns))

    def _attach(self, wire: Wire) -> None:
        self.wires.append(wire)
        source = self.hosts[wire.src_host].port(wire.src_port)
        if source.on_egress is not None:
            raise ValueError(
                f"port {wire.src_host}:{wire.src_port} already wired")
        source.on_egress = lambda packet, w=wire: self._carry(w, packet)

    def _carry(self, wire: Wire, packet: Packet) -> None:
        # Frames leaving the egress still hold zero references (released
        # at egress); re-arm the buffer for the next host.
        packet.ref_count = 1

        def deliver() -> None:
            self.frames_carried += 1
            destination = self.hosts[wire.dst_host]
            if not destination.inject(wire.dst_port, packet):
                self.frames_dropped_at_rx += 1

        self.sim.schedule(wire.delay_ns, deliver)
