"""Rocketfuel-like topology generation.

The paper evaluates placement on Rocketfuel AS-16631 (22 nodes, 64 edges)
with homogeneous 2-core nodes.  The actual Rocketfuel trace is not available
offline, so we generate a seeded random *connected* graph with the same node
and edge counts and the same homogeneous resources — Fig. 5's comparison
between greedy / MILP / division heuristics depends on size and degree
statistics, not on the specific AS map (substitution recorded in DESIGN.md).
"""

from __future__ import annotations

import itertools

from repro._compat import HAVE_NUMPY, numpy as np
from repro.sim.units import US
from repro.topology.links import Link
from repro.topology.nodes import NodeKind, NodeSpec
from repro.topology.topology import Topology

AS16631_NODES = 22
AS16631_EDGES = 64


def rocketfuel_like(nodes: int = AS16631_NODES, edges: int = AS16631_EDGES,
                    cores_per_node: int = 2, link_capacity_gbps: float = 10.0,
                    link_delay_ns: int = 500 * US,
                    seed: int = 16631) -> Topology:
    """Build a connected random topology with exact node/edge counts.

    Strategy: a random spanning tree guarantees connectivity (n-1 edges),
    then extra edges are sampled uniformly from the remaining pairs.
    """
    if not HAVE_NUMPY:
        raise ImportError(
            "rocketfuel_like() requires numpy (sampling without replacement "
            "has no stdlib-parity fallback); install numpy or use an "
            "explicit Topology")
    if nodes < 2:
        raise ValueError("need at least two nodes")
    min_edges, max_edges = nodes - 1, nodes * (nodes - 1) // 2
    if not min_edges <= edges <= max_edges:
        raise ValueError(
            f"edges must be in [{min_edges}, {max_edges}] for {nodes} nodes")

    rng = np.random.default_rng(seed)
    names = [f"n{i}" for i in range(nodes)]
    topology = Topology()
    for name in names:
        topology.add_node(NodeSpec(name=name, kind=NodeKind.NFV_HOST,
                                   cores=cores_per_node))

    chosen: set[frozenset[str]] = set()
    # Random spanning tree: attach each new node to a random earlier one.
    order = list(rng.permutation(nodes))
    for position, node_index in enumerate(order[1:], start=1):
        peer_index = order[int(rng.integers(0, position))]
        chosen.add(frozenset((names[node_index], names[peer_index])))

    remaining = [frozenset(pair)
                 for pair in itertools.combinations(names, 2)
                 if frozenset(pair) not in chosen]
    extra_count = edges - len(chosen)
    extra_indices = rng.choice(len(remaining), size=extra_count,
                               replace=False)
    for index in extra_indices:
        chosen.add(remaining[int(index)])

    for pair in sorted(chosen, key=sorted):
        a, b = sorted(pair)
        topology.add_link(Link(a=a, b=b, capacity_gbps=link_capacity_gbps,
                               delay_ns=link_delay_ns))
    assert topology.is_connected()
    return topology
