"""Node descriptions for network topologies.

The placement formulation (paper §3.5) treats every node as a "switch" that
may also host NF instances, with ``cores`` CPU cores available for NFs
(eq. 1: services do not share cores).
"""

from __future__ import annotations

import dataclasses
import enum


class NodeKind(enum.Enum):
    """What a topology node is."""

    SWITCH = "switch"      # forwards only
    NFV_HOST = "nfv_host"  # forwards and can run NF VMs
    ENDPOINT = "endpoint"  # traffic source/sink


@dataclasses.dataclass
class NodeSpec:
    """Static description of one topology node."""

    name: str
    kind: NodeKind = NodeKind.NFV_HOST
    cores: int = 2

    def __post_init__(self) -> None:
        if self.cores < 0:
            raise ValueError("cores must be non-negative")
        if self.kind is NodeKind.SWITCH and self.cores:
            # A pure switch offers no NF cores; normalise silently would hide
            # a config mistake, so reject instead.
            raise ValueError("pure switches have no NF cores")
