"""Links: capacity and propagation delay between topology nodes."""

from __future__ import annotations

import dataclasses

from repro.sim.units import US


@dataclasses.dataclass
class Link:
    """A bidirectional link between two nodes.

    ``capacity_gbps`` bounds the traffic the placement engine may route over
    the link (eq. 8 uses link capacity H); ``delay_ns`` enters the flow
    delay constraint (eq. 6 uses link delay D).
    """

    a: str
    b: str
    capacity_gbps: float = 10.0
    delay_ns: int = 50 * US

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"self-loop link on {self.a!r}")
        if self.capacity_gbps <= 0:
            raise ValueError("link capacity must be positive")
        if self.delay_ns < 0:
            raise ValueError("link delay must be non-negative")

    @property
    def endpoints(self) -> frozenset[str]:
        return frozenset((self.a, self.b))
