"""Network topology substrate: nodes, links, graphs, generators."""

from repro.topology.builder import BoundaryWire, BuiltNetwork, build_network
from repro.topology.fabric import Fabric, Wire
from repro.topology.links import Link
from repro.topology.nodes import NodeKind, NodeSpec
from repro.topology.rocketfuel import rocketfuel_like
from repro.topology.topology import Topology

__all__ = [
    "BoundaryWire",
    "BuiltNetwork",
    "Fabric",
    "Link",
    "build_network",
    "NodeKind",
    "NodeSpec",
    "Topology",
    "Wire",
    "rocketfuel_like",
]
