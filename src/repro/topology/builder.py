"""Build a running multi-host deployment directly from a Topology.

Bridges the planning world (``repro.topology.Topology``, the placement
engine) and the running world (``NfvHost`` + ``Fabric``): every NFV-host
node becomes a simulated host, every topology link becomes a pair of
trunk ports patched through the fabric, and the returned
``inter_host_ports`` map plugs straight into
:meth:`repro.core.app.SdnfvApp.deploy`.

Partial builds (``only_hosts=``) realize just a subset of the NFV hosts
— one shard's share of the network.  Links whose far end is unrealized
become :class:`BoundaryWire` records instead of fabric wires; the
sharded kernel (:mod:`repro.sim.sharded`) turns those into serialized
boundary events between shards.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.dataplane.costs import HostCosts
from repro.dataplane.host import NfvHost
from repro.dataplane.manager import DEFAULT_BURST_SIZE
from repro.net.mempool import DEFAULT_POOL_SIZE
from repro.sim.simulator import Simulator
from repro.topology.fabric import Fabric
from repro.topology.nodes import NodeKind
from repro.topology.topology import Topology


@dataclasses.dataclass(frozen=True)
class BoundaryWire:
    """A directed topology link whose destination host is unrealized.

    The source port exists (on a realized host); the frame must leave
    the local shard and be delivered ``delay_ns`` later to ``dst_port``
    on whichever shard owns ``dst_host``.
    """

    src_host: str
    src_port: str
    dst_host: str
    dst_port: str
    delay_ns: int


@dataclasses.dataclass
class BuiltNetwork:
    """The realized network: hosts, wiring, and the port map."""

    hosts: dict[str, NfvHost]
    fabric: Fabric
    inter_host_ports: dict[tuple[str, str], str]
    topology: Topology
    #: Every NFV host name in the topology, in node order — the full
    #: network even when this build realized only a subset.
    all_hosts: tuple[str, ...] = ()
    #: Directed links leaving this build's realized hosts for unrealized
    #: ones (empty on a full build).
    boundary_wires: list[BoundaryWire] = dataclasses.field(
        default_factory=list)

    def host(self, name: str) -> NfvHost:
        return self.hosts[name]

    def install_transit(self, match, src: str, dst: str) -> list[str]:
        """Install forwarding rules on intermediate hosts so ``match``
        traffic can cross from ``src`` to ``dst`` over a multi-hop path.

        Returns the node path used.  Hosts that terminate or originate
        the traffic get their rules from the service-graph compilation;
        only the pure-transit middle hops are handled here.  Unrealized
        middle hops (partial builds) are skipped — the shard that owns
        them installs the same rules from its own copy of the plan.
        """
        from repro.dataplane.actions import ToPort
        from repro.dataplane.flow_table import FlowTableEntry

        path = self.topology.shortest_path(src, dst)
        for previous, current, nxt in zip(path, path[1:], path[2:],
                                          strict=False):
            if current not in self.hosts:
                continue
            self.hosts[current].install_rule(FlowTableEntry(
                scope=f"to-{previous}", match=match,
                actions=(ToPort(f"to-{nxt}"),)))
        return path


def build_network(sim: Simulator, topology: Topology,
                  costs: HostCosts | None = None,
                  ingress_port: str = "eth0",
                  exit_port: str = "eth1",
                  line_rate_gbps: float = 10.0,
                  burst_size: int = DEFAULT_BURST_SIZE,
                  pool_size: int = DEFAULT_POOL_SIZE,
                  columnar: bool = False,
                  seed: int = 0,
                  verify: bool = False,
                  only_hosts: typing.Iterable[str] | None = None
                  ) -> BuiltNetwork:
    """Instantiate every NFV-host node and wire the topology's links.

    Each host gets ``ingress_port`` and ``exit_port`` plus one trunk port
    per attached link, named ``to-<neighbor>``.  Link delays carry over
    to the fabric wires; link capacities to the trunk line rates.
    ``burst_size`` / ``pool_size`` / ``columnar`` / ``seed`` / ``verify``
    pass through to every :class:`NfvHost` (same names, same defaults).

    ``only_hosts`` realizes a subset of the NFV hosts (one shard's
    share); links to unrealized neighbors are returned as
    ``boundary_wires`` instead of being patched through the fabric.
    """
    fabric = Fabric(sim)
    hosts: dict[str, NfvHost] = {}
    inter_host_ports: dict[tuple[str, str], str] = {}
    boundary_wires: list[BoundaryWire] = []

    nfv_names = [name for name in topology.node_names
                 if topology.node(name).kind is NodeKind.NFV_HOST]
    owned = set(nfv_names) if only_hosts is None else set(only_hosts)
    unknown = owned - set(nfv_names)
    if unknown:
        raise ValueError(f"only_hosts names unknown NFV hosts: "
                         f"{sorted(unknown)}")

    for name in nfv_names:
        if name not in owned:
            continue
        trunk_ports = [f"to-{neighbor}"
                       for neighbor in topology.neighbors(name)]
        host = NfvHost(sim, name=name, costs=costs,
                       ingress_port=ingress_port, exit_port=exit_port,
                       extra_ports=trunk_ports,
                       line_rate_gbps=line_rate_gbps,
                       burst_size=burst_size, pool_size=pool_size,
                       columnar=columnar, seed=seed, verify=verify)
        hosts[name] = host
        fabric.add_host(host)

    for link in topology.links:
        if link.a not in nfv_names or link.b not in nfv_names:
            continue
        for src, dst in ((link.a, link.b), (link.b, link.a)):
            if src not in hosts:
                continue
            if dst in hosts:
                fabric.connect(src, f"to-{dst}", dst, f"to-{src}",
                               delay_ns=link.delay_ns, bidirectional=False)
            else:
                boundary_wires.append(BoundaryWire(
                    src_host=src, src_port=f"to-{dst}",
                    dst_host=dst, dst_port=f"to-{src}",
                    delay_ns=link.delay_ns))

    # Next-hop port toward every other host (shortest path), computed
    # over the FULL topology: rules compiled on a realized host may point
    # at trunks toward unrealized hosts.  Multi-hop pairs additionally
    # need transit rules on the intermediate hosts — see
    # BuiltNetwork.install_transit.
    for src in nfv_names:
        for dst in nfv_names:
            if src == dst:
                continue
            path = topology.shortest_path(src, dst)
            inter_host_ports[(src, dst)] = f"to-{path[1]}"

    return BuiltNetwork(hosts=hosts, fabric=fabric,
                        inter_host_ports=inter_host_ports,
                        topology=topology,
                        all_hosts=tuple(nfv_names),
                        boundary_wires=boundary_wires)
