"""Build a running multi-host deployment directly from a Topology.

Bridges the planning world (``repro.topology.Topology``, the placement
engine) and the running world (``NfvHost`` + ``Fabric``): every NFV-host
node becomes a simulated host, every topology link becomes a pair of
trunk ports patched through the fabric, and the returned
``inter_host_ports`` map plugs straight into
:meth:`repro.core.app.SdnfvApp.deploy`.
"""

from __future__ import annotations

import dataclasses

from repro.dataplane.costs import HostCosts
from repro.dataplane.host import NfvHost
from repro.sim.simulator import Simulator
from repro.topology.fabric import Fabric
from repro.topology.nodes import NodeKind
from repro.topology.topology import Topology


@dataclasses.dataclass
class BuiltNetwork:
    """The realized network: hosts, wiring, and the port map."""

    hosts: dict[str, NfvHost]
    fabric: Fabric
    inter_host_ports: dict[tuple[str, str], str]
    topology: Topology

    def host(self, name: str) -> NfvHost:
        return self.hosts[name]

    def install_transit(self, match, src: str, dst: str) -> list[str]:
        """Install forwarding rules on intermediate hosts so ``match``
        traffic can cross from ``src`` to ``dst`` over a multi-hop path.

        Returns the node path used.  Hosts that terminate or originate
        the traffic get their rules from the service-graph compilation;
        only the pure-transit middle hops are handled here.
        """
        from repro.dataplane.actions import ToPort
        from repro.dataplane.flow_table import FlowTableEntry

        path = self.topology.shortest_path(src, dst)
        for previous, current, nxt in zip(path, path[1:], path[2:], strict=False):
            self.hosts[current].install_rule(FlowTableEntry(
                scope=f"to-{previous}", match=match,
                actions=(ToPort(f"to-{nxt}"),)))
        return path


def build_network(sim: Simulator, topology: Topology,
                  costs: HostCosts | None = None,
                  ingress_port: str = "eth0",
                  exit_port: str = "eth1",
                  line_rate_gbps: float = 10.0) -> BuiltNetwork:
    """Instantiate every NFV-host node and wire the topology's links.

    Each host gets ``ingress_port`` and ``exit_port`` plus one trunk port
    per attached link, named ``to-<neighbor>``.  Link delays carry over
    to the fabric wires; link capacities to the trunk line rates.
    """
    fabric = Fabric(sim)
    hosts: dict[str, NfvHost] = {}
    inter_host_ports: dict[tuple[str, str], str] = {}

    for name in topology.node_names:
        if topology.node(name).kind is not NodeKind.NFV_HOST:
            continue
        trunk_ports = [f"to-{neighbor}"
                       for neighbor in topology.neighbors(name)]
        host = NfvHost(sim, name=name, costs=costs,
                       ports=(ingress_port, exit_port, *trunk_ports),
                       line_rate_gbps=line_rate_gbps)
        hosts[name] = host
        fabric.add_host(host)

    for link in topology.links:
        if link.a not in hosts or link.b not in hosts:
            continue
        fabric.connect(link.a, f"to-{link.b}", link.b, f"to-{link.a}",
                       delay_ns=link.delay_ns, bidirectional=False)
        fabric.connect(link.b, f"to-{link.a}", link.a, f"to-{link.b}",
                       delay_ns=link.delay_ns, bidirectional=False)

    # Next-hop port toward every other host (shortest path).  Multi-hop
    # pairs additionally need transit rules on the intermediate hosts —
    # see BuiltNetwork.install_transit.
    names = list(hosts)
    for src in names:
        for dst in names:
            if src == dst:
                continue
            path = topology.shortest_path(src, dst)
            inter_host_ports[(src, dst)] = f"to-{path[1]}"

    return BuiltNetwork(hosts=hosts, fabric=fabric,
                        inter_host_ports=inter_host_ports,
                        topology=topology)
