"""The Topology container: a networkx graph of NodeSpecs and Links."""

from __future__ import annotations

import typing

import networkx as nx

from repro.topology.links import Link
from repro.topology.nodes import NodeKind, NodeSpec


class Topology:
    """A named-node network graph with per-node cores and per-link capacity.

    Thin, validated wrapper over ``networkx.Graph`` so the placement engine
    and routing helpers share one representation.
    """

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._nodes: dict[str, NodeSpec] = {}
        self._links: dict[frozenset[str], Link] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, spec: NodeSpec) -> None:
        if spec.name in self._nodes:
            raise ValueError(f"duplicate node {spec.name!r}")
        self._nodes[spec.name] = spec
        self._graph.add_node(spec.name)

    def add_link(self, link: Link) -> None:
        for end in (link.a, link.b):
            if end not in self._nodes:
                raise KeyError(f"unknown node {end!r}")
        if link.endpoints in self._links:
            raise ValueError(f"duplicate link {link.a!r}-{link.b!r}")
        self._links[link.endpoints] = link
        self._graph.add_edge(link.a, link.b, delay_ns=link.delay_ns,
                             capacity_gbps=link.capacity_gbps)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def node_names(self) -> list[str]:
        return list(self._nodes)

    @property
    def links(self) -> list[Link]:
        return list(self._links.values())

    def node(self, name: str) -> NodeSpec:
        return self._nodes[name]

    def link(self, a: str, b: str) -> Link:
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise KeyError(f"no link {a!r}-{b!r}") from None

    def has_link(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._links

    def neighbors(self, name: str) -> list[str]:
        return list(self._graph.neighbors(name))

    def nfv_hosts(self) -> list[str]:
        return [name for name, spec in self._nodes.items()
                if spec.kind is NodeKind.NFV_HOST]

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (read-only by convention)."""
        return self._graph

    def is_connected(self) -> bool:
        return (len(self._nodes) > 0
                and nx.is_connected(self._graph))

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------
    def shortest_path(self, src: str, dst: str,
                      weight: str | None = "delay_ns") -> list[str]:
        """Node sequence of the minimum-delay path from src to dst."""
        return nx.shortest_path(self._graph, src, dst, weight=weight)

    def path_delay_ns(self, path: typing.Sequence[str]) -> int:
        """Sum of link delays along a node path."""
        total = 0
        for a, b in zip(path, path[1:], strict=False):
            total += self.link(a, b).delay_ns
        return total

    def path_links(self, path: typing.Sequence[str]) -> list[Link]:
        return [self.link(a, b) for a, b in zip(path, path[1:], strict=False)]

    def total_cores(self) -> int:
        return sum(spec.cores for spec in self._nodes.values())

    # ------------------------------------------------------------------
    # Partition helpers
    # ------------------------------------------------------------------
    def crossing_delays(self, groups: typing.Sequence[typing.Sequence[str]]
                        ) -> dict[tuple[int, int], int]:
        """Minimum link delay between each directed pair of host groups.

        ``groups[i]`` is a collection of node names; the result maps
        ``(src_group, dst_group)`` to the smallest ``delay_ns`` of any
        link joining the two groups (both directions of every crossing
        link, since links are undirected).  Pairs with no crossing link
        are absent.  Nodes outside every group are ignored, so partial
        partitions (e.g. NFV hosts only) work unchanged.
        """
        owner: dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                owner[name] = index
        delays: dict[tuple[int, int], int] = {}
        for link in self._links.values():
            src = owner.get(link.a)
            dst = owner.get(link.b)
            if src is None or dst is None or src == dst:
                continue
            for pair in ((src, dst), (dst, src)):
                known = delays.get(pair)
                if known is None or link.delay_ns < known:
                    delays[pair] = link.delay_ns
        return delays
