"""Pure compilation of a placed service graph into per-host flow rules.

The deployment *planning* half of the old ``deploy_distributed``: given
a graph, a service→host placement, and the topology's routing maps, emit
the ordered ``(host_name, FlowTableEntry)`` install sequence —

- per-service rules on the hosts that own them,
- the ingress rule on the entry service's host,
- arrival rules where cross-host edges land (scoped to the trunk port
  facing the upstream hop),
- transit rules on intermediate hosts when placed hosts are not adjacent.

No side effects and no references to live hosts, so the same compilation
runs identically on every shard of a sharded simulation (each shard then
installs only the entries for hosts it realizes) and in the unified
:meth:`repro.core.app.SdnfvApp.deploy` entry point.
"""

from __future__ import annotations

import typing

from repro.core.service_graph import DROP, EXIT, ServiceGraph
from repro.dataplane.actions import Destination, Drop, ToPort, ToService
from repro.dataplane.flow_table import FlowTableEntry
from repro.net.flow import FlowMatch

if typing.TYPE_CHECKING:  # pragma: no cover - planning-only import
    from repro.topology.topology import Topology


class DistributedDeploymentError(Exception):
    """The graph/placement combination cannot be expressed on this
    network (e.g. two different services would share an arrival port)."""


def compile_distributed_rules(
        graph: ServiceGraph,
        placement: typing.Mapping[str, str],
        topology: Topology,
        inter_host_ports: typing.Mapping[tuple[str, str], str],
        host_names: typing.Iterable[str],
        match: FlowMatch | None = None,
        ingress_port: str = "eth0",
        exit_port: str = "eth1",
        priority: int = 0) -> list[tuple[str, FlowTableEntry]]:
    """Compile a placed graph into an ordered install sequence.

    ``host_names`` is the full set of hosts the placement may target
    (every NFV host in the topology, not just the realized subset).
    The returned order — transit rules in path-walk order first, then
    each host's batch — matches what ``deploy_distributed`` historically
    installed, so existing deployments see byte-identical flow tables.
    """
    graph.validate()
    match = match or FlowMatch.any()
    host_names = list(host_names)
    known = set(host_names)
    for service in graph.services:
        if service not in placement:
            raise DistributedDeploymentError(
                f"service {service!r} has no placement")
        if placement[service] not in known:
            raise DistributedDeploymentError(
                f"{service!r} placed on unknown host "
                f"{placement[service]!r}")

    rules: dict[str, list[FlowTableEntry]] = {
        name: [] for name in host_names}
    transit: list[tuple[str, FlowTableEntry]] = []
    # (host, arrival_port) -> service, to detect conflicts.
    arrivals: dict[tuple[str, str], str] = {}

    def port_toward(src_host: str, dst_host: str) -> str:
        return inter_host_ports[(src_host, dst_host)]

    def arrival_port(dst_host: str, src_host: str) -> str:
        path = topology.shortest_path(src_host, dst_host)
        return f"to-{path[-2]}"

    def emit_transit(src_host: str, dst_host: str) -> None:
        path = topology.shortest_path(src_host, dst_host)
        for previous, current, nxt in zip(path, path[1:], path[2:],
                                          strict=False):
            transit.append((current, FlowTableEntry(
                scope=f"to-{previous}", match=match,
                actions=(ToPort(f"to-{nxt}"),))))

    def resolve(src_service: str, dst: str) -> Destination:
        if dst == EXIT:
            return ToPort(exit_port)
        if dst == DROP:
            return Drop()
        src_host = placement[src_service]
        dst_host = placement[dst]
        if src_host == dst_host:
            return ToService(dst)
        return ToPort(port_toward(src_host, dst_host))

    # Ingress rule on the entry host.
    entry_host = placement[graph.entry]
    rules[entry_host].append(FlowTableEntry(
        scope=ingress_port, match=match,
        actions=(ToService(graph.entry),), priority=priority))

    for service in graph.services:
        host_name = placement[service]
        actions = tuple(resolve(service, edge.dst)
                        for edge in graph.out_edges(service))
        rules[host_name].append(FlowTableEntry(
            scope=service, match=match, actions=actions,
            priority=priority))
        # Cross-host edges into this service need arrival + transit.
        for upstream in graph.predecessors(service):
            upstream_host = placement[upstream]
            if upstream_host == host_name:
                continue
            emit_transit(upstream_host, host_name)
            port = arrival_port(host_name, upstream_host)
            key = (host_name, port)
            existing = arrivals.get(key)
            if existing is None:
                arrivals[key] = service
                rules[host_name].append(FlowTableEntry(
                    scope=port, match=match,
                    actions=(ToService(service),), priority=priority))
            elif existing != service:
                raise DistributedDeploymentError(
                    f"services {existing!r} and {service!r} would share "
                    f"arrival port {port!r} on {host_name!r} for the "
                    "same match; refine the match or the placement")

    installs = list(transit)
    for host_name in host_names:
        installs.extend((host_name, entry)
                        for entry in rules[host_name])
    return installs


def compile_proactive_rules(
        graph: ServiceGraph,
        placement: typing.Mapping[str, str] | None = None,
        *,
        hosts: typing.Sequence[str],
        match: FlowMatch | None = None,
        ingress_port: str = "eth0",
        exit_port: str = "eth1",
        inter_host_ports: typing.Mapping[tuple[str, str], str] | None = None,
        priority: int = 0,
        topology: Topology | None = None,
        host_names: typing.Iterable[str] | None = None,
        ) -> list[tuple[str, FlowTableEntry]]:
    """Compile the multi-table pipeline a deployment pre-populates.

    The proactive half of the hybrid rule pipeline: the same per-host
    rules the reactive path would hand out one miss at a time, compiled
    up front in deterministic ``(host, entry)`` install order and marked
    ``proactive=True`` — so table-miss ``PacketInMessage``s only fire
    for flows *outside* the pre-installed cover, and the manager's miss
    classifier can tell a pre-populated hit from a reactively pulled
    one.

    Without ``topology`` this compiles ``graph.compile_rules`` per host
    in ``hosts`` order (adjacent/single-host placements — exactly what
    :meth:`SdnfvApp.deploy` installs).  With ``topology`` (and
    ``host_names``, the full host universe) it delegates to
    :func:`compile_distributed_rules` for the routed cover, transit and
    arrival rules included.
    """
    match = match or FlowMatch.any()
    if topology is not None:
        if placement is None:
            raise DistributedDeploymentError(
                "routed proactive compilation needs placement=")
        installs = compile_distributed_rules(
            graph, placement, topology=topology,
            inter_host_ports=inter_host_ports or {},
            host_names=(host_names if host_names is not None else hosts),
            match=match, ingress_port=ingress_port, exit_port=exit_port,
            priority=priority)
    else:
        graph.validate()
        installs = []
        for host_name in hosts:
            installs.extend(
                (host_name, entry) for entry in graph.compile_rules(
                    ingress_port=ingress_port, exit_port=exit_port,
                    match=match, placement=placement,
                    host=host_name if placement else None,
                    inter_host_ports=inter_host_ports,
                    priority=priority))
    for _host_name, entry in installs:
        entry.proactive = True
    return installs


def colocated_chains(graph: ServiceGraph,
                     placement: typing.Mapping[str, str]
                     ) -> list[tuple[str, list[str]]]:
    """Read-only parallel chains whose services share one host:
    ``(host_name, chain)`` pairs for parallel-chain registration."""
    out = []
    for chain in graph.parallel_chains():
        chain_hosts = {placement[service] for service in chain}
        if len(chain_hosts) == 1:
            out.append((chain_hosts.pop(), chain))
    return out
