"""SDNFV's core: service graphs, the SDNFV Application, and placement.

This is the paper's primary contribution (§3): the hierarchical control
framework coordinating the SDN controller, per-host NF Managers, and the
NFs themselves, driven by service-graph abstractions and a placement
engine.
"""

from repro.core.app import GraphDeployment, SdnfvApp
from repro.core.deploy_rules import (
    DistributedDeploymentError,
    compile_distributed_rules,
    compile_proactive_rules,
)
from repro.core.distributed import deploy_distributed
from repro.core.placement import (
    DivisionSolver,
    FlowRequest,
    GreedySolver,
    MilpSolver,
    PlacementProblem,
    PlacementResult,
)
from repro.core.service_graph import DROP, EXIT, ServiceGraph
from repro.core.state import HierarchySnapshot, StateTier, classify_state

__all__ = [
    "DROP",
    "DistributedDeploymentError",
    "DivisionSolver",
    "EXIT",
    "compile_distributed_rules",
    "compile_proactive_rules",
    "deploy_distributed",
    "FlowRequest",
    "GraphDeployment",
    "GreedySolver",
    "HierarchySnapshot",
    "MilpSolver",
    "PlacementProblem",
    "PlacementResult",
    "SdnfvApp",
    "ServiceGraph",
    "StateTier",
    "classify_state",
]
