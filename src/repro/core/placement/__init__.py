"""The NF placement engine (§3.5).

Solves the joint problem of placing NF instances on network nodes and
routing flows through their service chains, minimizing the maximum
utilization of links and cores.  Three solvers:

- :class:`MilpSolver` — the paper's MILP (eqs. 1–9) on HiGHS via scipy;
- :class:`GreedySolver` — the paper's best-effort baseline (first
  available cores along each flow's shortest path);
- :class:`DivisionSolver` — the paper's Division Heuristic: solve the
  MILP over small batches of flows against residual capacity.
"""

from repro.core.placement.division import DivisionSolver
from repro.core.placement.greedy import GreedySolver
from repro.core.placement.milp import MilpSolver
from repro.core.placement.model import (
    FlowRequest,
    PlacementProblem,
    PlacementResult,
)

__all__ = [
    "DivisionSolver",
    "FlowRequest",
    "GreedySolver",
    "MilpSolver",
    "PlacementProblem",
    "PlacementResult",
]
