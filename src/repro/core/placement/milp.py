"""The paper's MILP placement formulation (§3.5, eqs. 1–9) on HiGHS.

Variables (Table 1):

- ``U`` — max utilization of links and cores (the objective);
- ``N[k][l][i]`` — binary: switch *i* hosts position *l* of flow *k*'s
  chain (eq. 2/3);
- ``V[k][seg][e]`` — binary: directed edge *e* carries segment *seg* of
  flow *k*'s route (eq. 5);
- ``w[i][j][c]`` — instance-count selector: exactly one ``c`` per (node,
  service) with ``M_ij = Σ c·w`` — this linearizes the per-core
  utilization constraint (eq. 9), which is bilinear in (U, M) when written
  directly.

Constraints map to the paper's equations: (1) cores per node, (2)/(3)
one node per chain position, (4)/(5) route construction with entry/exit
pinning, (6) per-flow delay bound, (7) instance capacity, (8) link
utilization ≤ U, (9) core utilization ≤ U.

Supports *residual* capacity (existing instances, spare flow slots, prior
link loads) so the Division heuristic can chain sub-problem solves.
"""

from __future__ import annotations

import dataclasses
import time

try:
    import numpy as np
    from scipy import optimize, sparse
    HAVE_SOLVER = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = optimize = sparse = None  # type: ignore[assignment]
    HAVE_SOLVER = False

from repro.core.placement.model import (
    PlacementProblem,
    PlacementResult,
    compute_utilizations,
)


@dataclasses.dataclass
class ResidualState:
    """Capacity already consumed by earlier sub-problems."""

    residual_cores: dict[str, int]
    existing_instances: dict[tuple[str, str], int]
    existing_slots: dict[tuple[str, str], int]
    prior_core_load: dict[tuple[str, str], int]
    prior_link_gbps: dict[frozenset, float]

    @classmethod
    def fresh(cls, problem: PlacementProblem) -> ResidualState:
        return cls(
            residual_cores={name: problem.topology.node(name).cores
                            for name in problem.topology.node_names},
            existing_instances={},
            existing_slots={},
            prior_core_load={},
            prior_link_gbps={},
        )


class InfeasiblePlacement(Exception):
    """The flows cannot all be placed within the capacities."""


class MilpSolver:
    """Optimal joint placement + routing via scipy's HiGHS MILP."""

    name = "milp"

    def __init__(self, time_limit_s: float = 60.0,
                 mip_rel_gap: float = 1e-3) -> None:
        self.time_limit_s = time_limit_s
        self.mip_rel_gap = mip_rel_gap

    # ------------------------------------------------------------------
    def solve(self, problem: PlacementProblem,
              residual: ResidualState | None = None) -> PlacementResult:
        """Solve; raises InfeasiblePlacement when flows cannot fit."""
        if not HAVE_SOLVER:
            raise ImportError(
                "MilpSolver requires numpy and scipy (HiGHS backend); "
                "use the greedy heuristic when they are unavailable")
        started = time.monotonic()  # sdnfv: noqa SIM001 (solver wall time, not sim time)
        build = _ModelBuilder(problem, residual
                              or ResidualState.fresh(problem))
        model = build.build()
        result = optimize.milp(
            c=model["c"],
            constraints=model["constraints"],
            integrality=model["integrality"],
            bounds=model["bounds"],
            options={"time_limit": self.time_limit_s,
                     "mip_rel_gap": self.mip_rel_gap,
                     "disp": False},
        )
        # scipy/HiGHS status: 0 = optimal, 1 = iteration/time limit (an
        # incumbent may still be present), 2 = infeasible, 3 = unbounded.
        if result.status not in (0, 1) or result.x is None:
            raise InfeasiblePlacement(
                f"MILP infeasible or failed (status={result.status}: "
                f"{result.message})")
        instances, assignments, routes = build.extract(result.x)
        max_link, max_core, _l, _c = compute_utilizations(
            problem, _merged_instances(instances, build.residual),
            assignments, routes)
        return PlacementResult(
            instances=instances,
            assignments=assignments,
            routes=routes,
            placed_flows=[flow.flow_id for flow in problem.flows],
            rejected_flows=[],
            max_link_utilization=max_link,
            max_core_utilization=max_core,
            solve_time_s=time.monotonic() - started,  # sdnfv: noqa SIM001
            solver=self.name)


def _merged_instances(new: dict[tuple[str, str], int],
                      residual: ResidualState) -> dict[tuple[str, str], int]:
    merged = dict(residual.existing_instances)
    for key, count in new.items():
        merged[key] = merged.get(key, 0) + count
    return merged


class _ModelBuilder:
    """Flattens the formulation into scipy's matrix form."""

    def __init__(self, problem: PlacementProblem,
                 residual: ResidualState) -> None:
        self.problem = problem
        self.residual = residual
        self.nodes = list(problem.topology.node_names)
        self.node_index = {name: i for i, name in enumerate(self.nodes)}
        self.services = problem.services
        # Directed edges, both orientations of every undirected link.
        self.edges: list[tuple[str, str]] = []
        for link in problem.topology.links:
            self.edges.append((link.a, link.b))
            self.edges.append((link.b, link.a))
        self.edge_index = {edge: i for i, edge in enumerate(self.edges)}
        self._allocate_variables()

    # ------------------------------------------------------------------
    def _allocate_variables(self) -> None:
        self.n_vars = 1  # U at index 0
        self.N: dict[tuple[int, int, int], int] = {}
        for k, flow in enumerate(self.problem.flows):
            for l in range(len(flow.chain)):
                for i in range(len(self.nodes)):
                    self.N[(k, l, i)] = self.n_vars
                    self.n_vars += 1
        self.V: dict[tuple[int, int, int], int] = {}
        for k, flow in enumerate(self.problem.flows):
            for seg in range(len(flow.chain) + 1):
                for e in range(len(self.edges)):
                    self.V[(k, seg, e)] = self.n_vars
                    self.n_vars += 1
        self.W: dict[tuple[str, str, int], int] = {}
        for node in self.nodes:
            max_new = self.residual.residual_cores.get(node, 0)
            for service in self.services:
                for count in range(max_new + 1):
                    self.W[(node, service, count)] = self.n_vars
                    self.n_vars += 1

    # ------------------------------------------------------------------
    def build(self) -> dict:
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        lower: list[float] = []
        upper: list[float] = []
        row_count = 0

        def add_row(entries: list[tuple[int, float]],
                    lb: float, ub: float) -> None:
            nonlocal row_count
            for col, val in entries:
                rows.append(row_count)
                cols.append(col)
                vals.append(val)
            lower.append(lb)
            upper.append(ub)
            row_count += 1

        problem, residual = self.problem, self.residual
        flows = problem.flows
        per_core = problem.flows_per_core
        big_m = len(flows) + max(
            residual.prior_core_load.values(), default=0) + 1

        # (1) cores per node: Σ_j Σ_c c*w ≤ residual cores.
        for node in self.nodes:
            entries = []
            for service in self.services:
                for count in range(
                        residual.residual_cores.get(node, 0) + 1):
                    if count:
                        entries.append(
                            (self.W[(node, service, count)], float(count)))
            add_row(entries, -np.inf,
                    float(residual.residual_cores.get(node, 0)))

        # Selector: exactly one instance count per (node, service).
        for node in self.nodes:
            for service in self.services:
                entries = [(self.W[(node, service, count)], 1.0)
                           for count in range(
                               residual.residual_cores.get(node, 0) + 1)]
                add_row(entries, 1.0, 1.0)

        # (2)/(3) each chain position on exactly one node.
        for k, flow in enumerate(flows):
            for l in range(len(flow.chain)):
                entries = [(self.N[(k, l, i)], 1.0)
                           for i in range(len(self.nodes))]
                add_row(entries, 1.0, 1.0)

        # (7) capacity: load ≤ existing slots + P * new instances.
        for node in self.nodes:
            for service in self.services:
                entries: list[tuple[int, float]] = []
                for k, flow in enumerate(flows):
                    for l, chain_service in enumerate(flow.chain):
                        if chain_service == service:
                            entries.append(
                                (self.N[(k, l,
                                         self.node_index[node])], 1.0))
                if not entries:
                    continue
                for count in range(
                        1, residual.residual_cores.get(node, 0) + 1):
                    entries.append(
                        (self.W[(node, service, count)],
                         -float(count * per_core[service])))
                slots = residual.existing_slots.get((node, service), 0)
                add_row(entries, -np.inf, float(slots))

        # (4)/(5) flow conservation per flow, segment, node.
        for k, flow in enumerate(flows):
            chain_len = len(flow.chain)
            for seg in range(chain_len + 1):
                for i, node in enumerate(self.nodes):
                    entries = []
                    for e, (a, b) in enumerate(self.edges):
                        if a == node:
                            entries.append((self.V[(k, seg, e)], 1.0))
                        elif b == node:
                            entries.append((self.V[(k, seg, e)], -1.0))
                    const = 0.0
                    if seg == 0:
                        const += 1.0 if node == flow.entry else 0.0
                    else:
                        entries.append((self.N[(k, seg - 1, i)], -1.0))
                    if seg == chain_len:
                        const -= 1.0 if node == flow.exit else 0.0
                    else:
                        entries.append((self.N[(k, seg, i)], 1.0))
                    add_row(entries, const, const)

        # (6) per-flow delay bound.
        for k, flow in enumerate(flows):
            if flow.max_delay_ns is None:
                continue
            entries = []
            for seg in range(len(flow.chain) + 1):
                for e, (a, b) in enumerate(self.edges):
                    delay = problem.topology.link(a, b).delay_ns
                    entries.append((self.V[(k, seg, e)], float(delay)))
            add_row(entries, -np.inf, float(flow.max_delay_ns))

        # (8) link utilization ≤ U.
        for link in problem.topology.links:
            entries: list[tuple[int, float]] = [(0, -link.capacity_gbps)]
            for orientation in ((link.a, link.b), (link.b, link.a)):
                e = self.edge_index[orientation]
                for k, flow in enumerate(flows):
                    for seg in range(len(flow.chain) + 1):
                        entries.append((self.V[(k, seg, e)],
                                        flow.bandwidth_gbps))
            prior = residual.prior_link_gbps.get(
                frozenset((link.a, link.b)), 0.0)
            add_row(entries, -np.inf, -prior)

        # (9) core utilization ≤ U, linearized per instance count.
        for node in self.nodes:
            for service in self.services:
                load_entries: list[tuple[int, float]] = []
                for k, flow in enumerate(flows):
                    for l, chain_service in enumerate(flow.chain):
                        if chain_service == service:
                            load_entries.append(
                                (self.N[(k, l,
                                         self.node_index[node])], 1.0))
                prior_load = residual.prior_core_load.get(
                    (node, service), 0)
                if not load_entries and not prior_load:
                    continue
                existing = residual.existing_instances.get(
                    (node, service), 0)
                for count in range(
                        residual.residual_cores.get(node, 0) + 1):
                    total = existing + count
                    if total == 0:
                        continue  # capacity row already forces load 0
                    entries = list(load_entries)
                    entries.append((0, -float(total * per_core[service])))
                    entries.append(
                        (self.W[(node, service, count)], float(big_m)))
                    add_row(entries, -np.inf,
                            float(big_m - prior_load))

        matrix = sparse.coo_matrix(
            (vals, (rows, cols)), shape=(row_count, self.n_vars)).tocsc()
        constraints = optimize.LinearConstraint(
            matrix, np.array(lower), np.array(upper))

        # Objective: U plus tiny path/instance shaping terms (break ties
        # toward short routes and few instances; never competes with U).
        c = np.zeros(self.n_vars)
        c[0] = 1.0
        for index in self.V.values():
            c[index] = 1e-7
        for (node, service, count), index in self.W.items():
            c[index] = 1e-6 * count

        integrality = np.ones(self.n_vars)
        integrality[0] = 0  # U is continuous
        lower_bounds = np.zeros(self.n_vars)
        upper_bounds = np.ones(self.n_vars)
        upper_bounds[0] = np.inf
        bounds = optimize.Bounds(lower_bounds, upper_bounds)
        return {"c": c, "constraints": constraints,
                "integrality": integrality, "bounds": bounds}

    # ------------------------------------------------------------------
    def extract(self, x: np.ndarray) -> tuple[
            dict[tuple[str, str], int], dict[str, list[str]],
            dict[str, list[list[str]]]]:
        instances: dict[tuple[str, str], int] = {}
        for (node, service, count), index in self.W.items():
            if count and x[index] > 0.5:
                instances[(node, service)] = (
                    instances.get((node, service), 0) + count)
        assignments: dict[str, list[str]] = {}
        routes: dict[str, list[list[str]]] = {}
        for k, flow in enumerate(self.problem.flows):
            nodes_for_flow = []
            for l in range(len(flow.chain)):
                chosen = [self.nodes[i] for i in range(len(self.nodes))
                          if x[self.N[(k, l, i)]] > 0.5]
                assert len(chosen) == 1, "assignment constraint violated"
                nodes_for_flow.append(chosen[0])
            assignments[flow.flow_id] = nodes_for_flow
            waypoints = [flow.entry, *nodes_for_flow, flow.exit]
            segments = []
            for seg in range(len(flow.chain) + 1):
                chosen_edges = [self.edges[e]
                                for e in range(len(self.edges))
                                if x[self.V[(k, seg, e)]] > 0.5]
                segments.append(_walk(waypoints[seg], waypoints[seg + 1],
                                      chosen_edges))
            routes[flow.flow_id] = segments
        return instances, assignments, routes


def _walk(start: str, end: str,
          edges: list[tuple[str, str]]) -> list[str]:
    """Reconstruct the node path from a segment's chosen directed edges.

    Within the MIP gap the solver may keep stray zero-pressure cycles in
    the V variables; BFS over the chosen edges extracts the simple
    start→end path and ignores such cycles.
    """
    if start == end:
        return [start]
    adjacency: dict[str, list[str]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
    parents: dict[str, str] = {}
    frontier = [start]
    seen = {start}
    while frontier and end not in parents:
        node = frontier.pop(0)
        for neighbor in adjacency.get(node, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                parents[neighbor] = node
                frontier.append(neighbor)
    if end not in parents:
        raise AssertionError(
            f"route reconstruction failed {start}->{end}: {edges}")
    path = [end]
    while path[-1] != start:
        path.append(parents[path[-1]])
    path.reverse()
    return path
