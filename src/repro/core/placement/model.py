"""Problem and result types for NF placement, plus utilization accounting.

Mirrors the paper's MILP notation (Table 1): nodes are "switches" with
``cores`` CPU cores; each service j supports ``P_j`` flows per core; flow k
has an entrance switch, exit switch, service chain, bandwidth B_k and
optional max delay T_k.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.net.packet import wire_bits
from repro.topology.topology import Topology

__all__ = [
    "FlowRequest",
    "PlacementProblem",
    "PlacementResult",
    "compute_utilizations",
    "wire_bits",  # re-exported for convenience
]


@dataclasses.dataclass(frozen=True)
class FlowRequest:
    """One flow to be placed: entry/exit nodes and its service chain."""

    flow_id: str
    entry: str
    exit: str
    chain: tuple[str, ...]
    bandwidth_gbps: float = 0.1
    max_delay_ns: int | None = None

    def __post_init__(self) -> None:
        if not self.chain:
            raise ValueError(f"flow {self.flow_id!r} has an empty chain")
        if self.bandwidth_gbps <= 0:
            raise ValueError("flow bandwidth must be positive")


@dataclasses.dataclass
class PlacementProblem:
    """A placement instance: topology + flows + per-service capacities."""

    topology: Topology
    flows: list[FlowRequest]
    flows_per_core: dict[str, int]

    def __post_init__(self) -> None:
        names = set(self.topology.node_names)
        for flow in self.flows:
            if flow.entry not in names or flow.exit not in names:
                raise ValueError(
                    f"flow {flow.flow_id!r} endpoints not in topology")
            for service in flow.chain:
                if service not in self.flows_per_core:
                    raise ValueError(
                        f"no flows_per_core for service {service!r}")
        seen = set()
        for flow in self.flows:
            if flow.flow_id in seen:
                raise ValueError(f"duplicate flow id {flow.flow_id!r}")
            seen.add(flow.flow_id)

    @property
    def services(self) -> list[str]:
        ordered: list[str] = []
        for flow in self.flows:
            for service in flow.chain:
                if service not in ordered:
                    ordered.append(service)
        return ordered


@dataclasses.dataclass
class PlacementResult:
    """A (possibly partial) solution."""

    instances: dict[tuple[str, str], int]
    assignments: dict[str, list[str]]          # flow -> node per position
    routes: dict[str, list[list[str]]]         # flow -> path per segment
    placed_flows: list[str]
    rejected_flows: list[str]
    max_link_utilization: float
    max_core_utilization: float
    solve_time_s: float
    solver: str

    @property
    def max_utilization(self) -> float:
        """The paper's objective U: max over links and cores."""
        return max(self.max_link_utilization, self.max_core_utilization)

    @property
    def placed_count(self) -> int:
        return len(self.placed_flows)

    def total_instances(self) -> int:
        return sum(self.instances.values())

    def placement_for(self, flow: FlowRequest) -> dict[str, str]:
        """Service → node mapping for one placed flow's chain.

        This is the bridge from the placement engine to deployment: feed
        it to :meth:`repro.core.app.SdnfvApp.deploy` as ``placement``
        (with a match selecting the flow) to realize the computed route.
        """
        if flow.flow_id not in self.assignments:
            raise KeyError(f"flow {flow.flow_id!r} was not placed")
        nodes = self.assignments[flow.flow_id]
        mapping: dict[str, str] = {}
        for service, node in zip(flow.chain, nodes, strict=True):
            existing = mapping.get(service)
            if existing is not None and existing != node:
                raise ValueError(
                    f"flow {flow.flow_id!r} visits service {service!r} "
                    "on two different nodes; per-occurrence placement "
                    "is not expressible as a service map")
            mapping[service] = node
        return mapping


def compute_utilizations(
        problem: PlacementProblem,
        instances: typing.Mapping[tuple[str, str], int],
        assignments: typing.Mapping[str, list[str]],
        routes: typing.Mapping[str, list[list[str]]],
) -> tuple[float, float, dict[frozenset, float],
           dict[tuple[str, str], float]]:
    """Shared post-hoc utilization accounting.

    Returns (max_link_util, max_core_util, per_link, per_node_service).
    Core utilization of (node, service) is assigned flows divided by the
    aggregate capacity of the instances there (flows spread evenly across
    replicas — the NF Manager's load balancing guarantees this).
    """
    flows_by_id = {flow.flow_id: flow for flow in problem.flows}
    link_bits: dict[frozenset, float] = {}
    for flow_id, segments in routes.items():
        bandwidth = flows_by_id[flow_id].bandwidth_gbps
        for path in segments:
            for a, b in zip(path, path[1:], strict=False):
                key = frozenset((a, b))
                link_bits[key] = link_bits.get(key, 0.0) + bandwidth
    per_link: dict[frozenset, float] = {}
    for key, gbps in link_bits.items():
        a, b = tuple(key)
        per_link[key] = gbps / problem.topology.link(a, b).capacity_gbps

    loads: dict[tuple[str, str], int] = {}
    for flow_id, nodes in assignments.items():
        chain = flows_by_id[flow_id].chain
        for service, node in zip(chain, nodes, strict=True):
            loads[(node, service)] = loads.get((node, service), 0) + 1
    per_core: dict[tuple[str, str], float] = {}
    for (node, service), load in loads.items():
        count = instances.get((node, service), 0)
        capacity = count * problem.flows_per_core[service]
        per_core[(node, service)] = (load / capacity if capacity
                                     else float("inf"))
    max_link = max(per_link.values(), default=0.0)
    max_core = max(per_core.values(), default=0.0)
    return max_link, max_core, per_link, per_core
