"""The Division Heuristic (§3.5).

"We divide the problem into sub-problems, each having a small number of
flows (e.g., 5) so as to compute the solution quickly.  After solving a
sub-problem, a post processing step updates the available resources ...
and solves the next sub-problem for the next small subset of flows."

Each batch runs the full MILP against the residual capacities left by
earlier batches (existing instances keep their spare flow slots, so later
flows can reuse them for free).  A batch that cannot fit falls back to
per-flow solves; flows that still cannot fit are rejected rather than
disturbing already-placed flows — matching the paper's incremental,
non-disruptive semantics.
"""

from __future__ import annotations

import time

from repro.core.placement.milp import (
    InfeasiblePlacement,
    MilpSolver,
    ResidualState,
)
from repro.core.placement.model import (
    FlowRequest,
    PlacementProblem,
    PlacementResult,
    compute_utilizations,
)


class DivisionSolver:
    """Batched incremental MILP with residual-capacity accounting."""

    name = "division"

    def __init__(self, batch_size: int = 5,
                 time_limit_per_batch_s: float = 20.0,
                 mip_rel_gap: float = 0.05) -> None:
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        self.batch_size = batch_size
        self.milp = MilpSolver(time_limit_s=time_limit_per_batch_s,
                               mip_rel_gap=mip_rel_gap)

    def solve(self, problem: PlacementProblem) -> PlacementResult:
        started = time.monotonic()  # sdnfv: noqa SIM001 (solver wall time, not sim time)
        residual = ResidualState.fresh(problem)
        instances: dict[tuple[str, str], int] = {}
        assignments: dict[str, list[str]] = {}
        routes: dict[str, list[list[str]]] = {}
        placed: list[str] = []
        rejected: list[str] = []

        batches = [problem.flows[i:i + self.batch_size]
                   for i in range(0, len(problem.flows), self.batch_size)]
        for batch in batches:
            outcome = self._solve_batch(problem, batch, residual)
            if outcome is None:
                # Batch infeasible as a unit: place flows one at a time so
                # a single oversized flow doesn't reject its batch-mates.
                for flow in batch:
                    single = self._solve_batch(problem, [flow], residual)
                    if single is None:
                        rejected.append(flow.flow_id)
                        continue
                    self._absorb(single, problem, residual, instances,
                                 assignments, routes, placed)
            else:
                self._absorb(outcome, problem, residual, instances,
                             assignments, routes, placed)

        max_link, max_core, _l, _c = compute_utilizations(
            problem, instances, assignments, routes)
        return PlacementResult(
            instances=instances, assignments=assignments, routes=routes,
            placed_flows=placed, rejected_flows=rejected,
            max_link_utilization=max_link,
            max_core_utilization=max_core,
            solve_time_s=time.monotonic() - started,  # sdnfv: noqa SIM001
            solver=self.name)

    # ------------------------------------------------------------------
    def _solve_batch(self, problem: PlacementProblem,
                     batch: list[FlowRequest],
                     residual: ResidualState) -> PlacementResult | None:
        sub_problem = PlacementProblem(
            topology=problem.topology, flows=list(batch),
            flows_per_core=problem.flows_per_core)
        try:
            return self.milp.solve(sub_problem, residual=residual)
        except InfeasiblePlacement:
            return None

    def _absorb(self, result: PlacementResult, problem: PlacementProblem,
                residual: ResidualState,
                instances: dict[tuple[str, str], int],
                assignments: dict[str, list[str]],
                routes: dict[str, list[list[str]]],
                placed: list[str]) -> None:
        """Post-processing: update the available resources (§3.5)."""
        flows_by_id = {flow.flow_id: flow for flow in problem.flows}
        for key, count in result.instances.items():
            node, service = key
            instances[key] = instances.get(key, 0) + count
            residual.residual_cores[node] -= count
            assert residual.residual_cores[node] >= 0
            residual.existing_instances[key] = (
                residual.existing_instances.get(key, 0) + count)
            residual.existing_slots[key] = (
                residual.existing_slots.get(key, 0)
                + count * problem.flows_per_core[service])
        for flow_id, nodes in result.assignments.items():
            assignments[flow_id] = nodes
            placed.append(flow_id)
            chain = flows_by_id[flow_id].chain
            for service, node in zip(chain, nodes, strict=True):
                key = (node, service)
                residual.existing_slots[key] -= 1
                assert residual.existing_slots[key] >= 0
                residual.prior_core_load[key] = (
                    residual.prior_core_load.get(key, 0) + 1)
        for flow_id, segments in result.routes.items():
            routes[flow_id] = segments
            bandwidth = flows_by_id[flow_id].bandwidth_gbps
            for path in segments:
                for a, b in zip(path, path[1:], strict=False):
                    key = frozenset((a, b))
                    residual.prior_link_gbps[key] = (
                        residual.prior_link_gbps.get(key, 0.0) + bandwidth)
