"""The greedy best-effort placement baseline (§3.5).

"A greedy best effort heuristic that assigns services to the first
available cores on network nodes in the shortest path for the flow, and,
if needed uses additional cores on neighboring nodes on the flow's path."

State is carried across flows: existing instances with spare flow slots
are reused before new cores are claimed.
"""

from __future__ import annotations

import dataclasses
import time

from repro.core.placement.model import (
    FlowRequest,
    PlacementProblem,
    PlacementResult,
    compute_utilizations,
)


@dataclasses.dataclass
class _NodeState:
    free_cores: int
    # (service -> remaining flow slots across that service's instances here)
    slots: dict[str, int] = dataclasses.field(default_factory=dict)
    instances: dict[str, int] = dataclasses.field(default_factory=dict)


class GreedySolver:
    """First-fit along shortest paths, spilling to path neighbours."""

    name = "greedy"

    def __init__(self, enforce_link_capacity: bool = True) -> None:
        self.enforce_link_capacity = enforce_link_capacity

    def solve(self, problem: PlacementProblem) -> PlacementResult:
        started = time.monotonic()  # sdnfv: noqa SIM001 (solver wall time, not sim time)
        topology = problem.topology
        nodes = {name: _NodeState(free_cores=topology.node(name).cores)
                 for name in topology.node_names}
        link_load: dict[frozenset, float] = {}

        instances: dict[tuple[str, str], int] = {}
        assignments: dict[str, list[str]] = {}
        routes: dict[str, list[list[str]]] = {}
        placed: list[str] = []
        rejected: list[str] = []

        for flow in problem.flows:
            outcome = self._place_flow(problem, flow, nodes, link_load)
            if outcome is None:
                rejected.append(flow.flow_id)
                continue
            flow_nodes, segments = outcome
            assignments[flow.flow_id] = flow_nodes
            routes[flow.flow_id] = segments
            placed.append(flow.flow_id)

        for name, state in nodes.items():
            for service, count in state.instances.items():
                instances[(name, service)] = count

        max_link, max_core, _links, _cores = compute_utilizations(
            problem, instances, assignments, routes)
        return PlacementResult(
            instances=instances, assignments=assignments, routes=routes,
            placed_flows=placed, rejected_flows=rejected,
            max_link_utilization=max_link, max_core_utilization=max_core,
            solve_time_s=time.monotonic() - started,  # sdnfv: noqa SIM001
            solver=self.name)

    # ------------------------------------------------------------------
    def _place_flow(self, problem: PlacementProblem, flow: FlowRequest,
                    nodes: dict[str, _NodeState],
                    link_load: dict[frozenset, float],
                    ) -> tuple[list[str], list[list[str]]] | None:
        topology = problem.topology
        path = topology.shortest_path(flow.entry, flow.exit)
        # Candidate nodes in visit order: path nodes first, then each path
        # node's neighbours (the "if needed" spill).
        candidates: list[str] = list(path)
        for node in path:
            for neighbor in topology.neighbors(node):
                if neighbor not in candidates:
                    candidates.append(neighbor)

        chosen: list[str] = []
        position = 0  # earliest candidate index usable (keeps chain order)
        claimed: list[tuple[str, str, bool]] = []  # (node, service, new)
        for service in flow.chain:
            placed_at = None
            for index in range(position, len(candidates)):
                node = candidates[index]
                if self._claim(problem, nodes[node], service):
                    placed_at = index
                    claimed.append(
                        (node, service,
                         nodes[node].instances.get(service, 0) > 0))
                    break
            if placed_at is None:
                self._unclaim(problem, nodes, claimed)
                return None
            # Later services may share the node, so don't advance past it.
            position = min(placed_at, len(path) - 1)
            chosen.append(candidates[placed_at])

        segments = self._build_route(topology, flow, chosen)
        if self.enforce_link_capacity and not self._admit_links(
                topology, segments, flow.bandwidth_gbps, link_load):
            self._unclaim(problem, nodes, claimed)
            return None
        return chosen, segments

    def _claim(self, problem: PlacementProblem, state: _NodeState,
               service: str) -> bool:
        slots = state.slots.get(service, 0)
        if slots > 0:
            state.slots[service] = slots - 1
            return True
        if state.free_cores > 0:
            state.free_cores -= 1
            state.instances[service] = state.instances.get(service, 0) + 1
            state.slots[service] = problem.flows_per_core[service] - 1
            return True
        return False

    def _unclaim(self, problem: PlacementProblem,
                 nodes: dict[str, _NodeState],
                 claimed: list[tuple[str, str, bool]]) -> None:
        """Roll back a partially placed flow."""
        for node, service, _was_existing in reversed(claimed):
            state = nodes[node]
            state.slots[service] = state.slots.get(service, 0) + 1
            per_core = problem.flows_per_core[service]
            if state.slots[service] == per_core:
                # The instance we opened is now unused: return the core.
                state.slots[service] = 0
                state.instances[service] -= 1
                if not state.instances[service]:
                    del state.instances[service]
                state.free_cores += 1

    @staticmethod
    def _build_route(topology, flow: FlowRequest,
                     chosen: list[str]) -> list[list[str]]:
        waypoints = [flow.entry, *chosen, flow.exit]
        return [topology.shortest_path(a, b)
                for a, b in zip(waypoints, waypoints[1:], strict=False)]

    @staticmethod
    def _admit_links(topology, segments: list[list[str]],
                     bandwidth: float,
                     link_load: dict[frozenset, float]) -> bool:
        needed: dict[frozenset, float] = {}
        for path in segments:
            for a, b in zip(path, path[1:], strict=False):
                key = frozenset((a, b))
                needed[key] = needed.get(key, 0.0) + bandwidth
        for key, extra in needed.items():
            a, b = tuple(key)
            capacity = topology.link(a, b).capacity_gbps
            if link_load.get(key, 0.0) + extra > capacity + 1e-9:
                return False
        for key, extra in needed.items():
            link_load[key] = link_load.get(key, 0.0) + extra
        return True
