"""Service graphs: DAGs of network functions with default paths (§3.2).

"A network application's processing requirements are represented by a
graph with vertices for individual network functions and edges representing
the logical links between them. ... we choose to represent each service
graph as a DAG with a source and a sink."  Administrators mark one exiting
edge per vertex as the *default* path (the thick edges of Fig. 3); NFs may
pick any other edge per packet.

Two sentinel vertices terminate graphs: :data:`EXIT` (leave via the egress
port) and :data:`DROP` (discard).
"""

from __future__ import annotations

import dataclasses
import typing

import networkx as nx

from repro.dataplane.actions import Destination, Drop, ToPort, ToService
from repro.dataplane.flow_table import FlowTableEntry
from repro.net.flow import FlowMatch

EXIT = "__exit__"
DROP = "__drop__"
_SENTINELS = (EXIT, DROP)


@dataclasses.dataclass(frozen=True)
class ServiceEdge:
    """One logical link in the graph."""

    src: str
    dst: str
    default: bool = False


class ServiceGraph:
    """A validated NF service DAG with per-vertex default edges."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("a service graph needs a name")
        self.name = name
        self._graph = nx.DiGraph()
        self._entry: str | None = None
        self._read_only: dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_service(self, service_id: str,
                    read_only: bool = False) -> None:
        """Declare a vertex.  ``read_only`` feeds parallel-chain fusion."""
        if service_id in _SENTINELS:
            raise ValueError(f"{service_id!r} is a reserved vertex name")
        if self._graph.has_node(service_id):
            raise ValueError(f"duplicate service {service_id!r}")
        self._graph.add_node(service_id)
        self._read_only[service_id] = read_only

    def add_edge(self, src: str, dst: str, default: bool = False) -> None:
        """Add a logical link.  ``dst`` may be EXIT or DROP."""
        if not self._graph.has_node(src) or src in _SENTINELS:
            raise ValueError(f"unknown source service {src!r}")
        if dst not in _SENTINELS and not self._graph.has_node(dst):
            raise ValueError(f"unknown destination service {dst!r}")
        if self._graph.has_edge(src, dst):
            raise ValueError(f"duplicate edge {src!r}->{dst!r}")
        if default and any(data["default"] for _s, _d, data
                           in self._graph.out_edges(src, data=True)):
            raise ValueError(f"{src!r} already has a default edge")
        self._graph.add_edge(src, dst, default=default)

    def set_entry(self, service_id: str) -> None:
        """Name the vertex that receives new packets from the ingress."""
        if not self._graph.has_node(service_id):
            raise ValueError(f"unknown service {service_id!r}")
        self._entry = service_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def entry(self) -> str:
        if self._entry is None:
            raise RuntimeError("service graph has no entry set")
        return self._entry

    @property
    def services(self) -> list[str]:
        return [node for node in self._graph.nodes
                if node not in _SENTINELS]

    def is_read_only(self, service_id: str) -> bool:
        return self._read_only.get(service_id, False)

    def out_edges(self, service_id: str) -> list[ServiceEdge]:
        """Exiting edges, default first."""
        edges = [ServiceEdge(src=src, dst=dst, default=data["default"])
                 for src, dst, data
                 in self._graph.out_edges(service_id, data=True)]
        edges.sort(key=lambda edge: not edge.default)
        return edges

    def default_successor(self, service_id: str) -> str:
        for edge in self.out_edges(service_id):
            if edge.default:
                return edge.dst
        raise ValueError(f"{service_id!r} has no default edge")

    def has_edge(self, src: str, dst: str) -> bool:
        return self._graph.has_edge(src, dst)

    def predecessors(self, service_id: str) -> list[str]:
        return list(self._graph.predecessors(service_id))

    # ------------------------------------------------------------------
    # Validation (§3.2: a DAG with a source and a sink)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ValueError describing the first structural problem found."""
        if self._entry is None:
            raise ValueError("no entry service set")
        inner = self._graph.subgraph(self.services)
        if not nx.is_directed_acyclic_graph(inner):
            cycle = nx.find_cycle(inner)
            raise ValueError(f"service graph has a cycle: {cycle}")
        reachable = nx.descendants(self._graph, self._entry)
        reachable.add(self._entry)
        unreachable = set(self.services) - reachable
        if unreachable:
            raise ValueError(
                f"services unreachable from entry: {sorted(unreachable)}")
        for service in self.services:
            edges = self.out_edges(service)
            if not edges:
                raise ValueError(f"{service!r} has no exit (dead end); "
                                 "add an edge to EXIT or DROP")
            defaults = [edge for edge in edges if edge.default]
            if len(defaults) != 1:
                raise ValueError(
                    f"{service!r} must have exactly one default edge, "
                    f"has {len(defaults)}")
        terminals = [service for service in self.services
                     if any(edge.dst in _SENTINELS
                            for edge in self.out_edges(service))]
        if not terminals:
            raise ValueError("no path reaches EXIT or DROP")

    # ------------------------------------------------------------------
    # Compilation to flow rules (§3.3 "NF Manager Flow Tables")
    # ------------------------------------------------------------------
    def compile_rules(self, ingress_port: str, exit_port: str,
                      match: FlowMatch | None = None,
                      placement: typing.Mapping[str, str] | None = None,
                      host: str | None = None,
                      inter_host_ports: typing.Mapping[
                          tuple[str, str], str] | None = None,
                      priority: int = 0) -> list[FlowTableEntry]:
        """Compile this graph into flow-table entries.

        Single-host usage: leave ``placement``/``host`` unset and every
        vertex compiles into one rule on the calling host.

        Multi-host usage: ``placement`` maps service → host name, ``host``
        selects whose rules to emit, and ``inter_host_ports`` maps
        ``(this_host, next_host)`` → local NIC port toward that host.
        Edges crossing hosts compile into ToPort actions; the ingress rule
        on the next host is emitted when compiling *that* host with the
        same arguments.
        """
        self.validate()
        match = match or FlowMatch.any()
        rules: list[FlowTableEntry] = []

        def resolve(src: str, dst: str) -> Destination:
            if dst == EXIT:
                return ToPort(exit_port)
            if dst == DROP:
                return Drop()
            if placement is not None and host is not None:
                dst_host = placement[dst]
                if dst_host != host:
                    if inter_host_ports is None:
                        raise ValueError(
                            "placement crosses hosts but no "
                            "inter_host_ports given")
                    return ToPort(inter_host_ports[(host, dst_host)])
            return ToService(dst)

        local = [service for service in self.services
                 if placement is None or host is None
                 or placement[service] == host]

        entry_host = (placement[self.entry]
                      if placement is not None else None)
        if placement is None or host is None or entry_host == host:
            rules.append(FlowTableEntry(
                scope=ingress_port, match=match,
                actions=(resolve("", self.entry),), priority=priority))
        else:
            # Packets arriving from an upstream host enter mid-graph: give
            # the ingress port a rule routing to the first local service
            # reachable along the default path.
            successor = self._first_local_default(placement, host)
            if successor is not None:
                rules.append(FlowTableEntry(
                    scope=ingress_port, match=match,
                    actions=(ToService(successor),), priority=priority))

        for service in local:
            actions = tuple(resolve(service, edge.dst)
                            for edge in self.out_edges(service))
            rules.append(FlowTableEntry(scope=service, match=match,
                                        actions=actions, priority=priority))
        return rules

    def _first_local_default(self, placement: typing.Mapping[str, str],
                             host: str) -> str | None:
        node = self.entry
        while node not in _SENTINELS:
            if placement[node] == host:
                return node
            node = self.default_successor(node)
        return None

    # ------------------------------------------------------------------
    # Parallel-chain detection (§3.3)
    # ------------------------------------------------------------------
    def parallel_chains(self) -> list[list[str]]:
        """Maximal runs of adjacent read-only services safe to parallelize.

        A run v1→v2→…→vk qualifies when every vi is read-only, each vi→vi+1
        is vi's *only* out-edge, and vi+1's only in-edge — i.e. every packet
        leaving vi goes to vi+1 (the paper's DDoS→IDS condition).
        """
        chains: list[list[str]] = []
        consumed: set[str] = set()
        for service in self.services:
            if service in consumed or not self.is_read_only(service):
                continue
            chain = [service]
            current = service
            while True:
                edges = self.out_edges(current)
                if len(edges) != 1:
                    break
                nxt = edges[0].dst
                if (nxt in _SENTINELS or not self.is_read_only(nxt)
                        or len(self.predecessors(nxt)) != 1):
                    break
                chain.append(nxt)
                current = nxt
            if len(chain) >= 2:
                chains.append(chain)
                consumed.update(chain)
        return chains

    def auto_parallel_layout(
            self, profiles: typing.Mapping[str, typing.Any] | None = None,
    ) -> list[list[str]]:
        """The widest correct parallel/sequential hybrid for this graph.

        Returns every service exactly once, in graph order, partitioned
        into maximal parallel groups justified by pairwise
        :class:`~repro.analysis.profiles.ActionProfile` compatibility
        (singleton groups for everything else).  This is a strict
        superset of :meth:`parallel_chains` read-only fusion: read-only
        services still fuse (their profiles write nothing), and writers
        with disjoint footprints — a DSCP marker next to a sampler that
        never looks at DSCP — now fuse too.

        The structural conditions match :meth:`parallel_chains` (each
        hop must be the only out-edge and the only in-edge: every packet
        leaving one member reaches the next); only the *semantic* test
        changes, from the coarse ``read_only`` bit to the profile
        conflict relation.

        ``profiles`` maps service id → profile.  Services missing from
        the mapping fall back to the graph's declared bit: read-only
        services get the neutral read-everything profile (so legacy
        fusion is preserved even without an analyzable NF), anything
        else is an opaque, never-grouped singleton.
        """
        from repro.analysis.profiles import ActionProfile, chain_conflicts

        known = dict(profiles or {})

        def profile_for(service: str) -> typing.Any:
            if service in known:
                return known[service]
            if self.is_read_only(service):
                return ActionProfile.declared_read_only()
            return ActionProfile.opaque_profile()

        layout: list[list[str]] = []
        consumed: set[str] = set()
        for service in self.services:
            if service in consumed:
                continue
            group = [service]
            group_profiles = [profile_for(service)]
            current = service
            while True:
                edges = self.out_edges(current)
                if len(edges) != 1:
                    break
                nxt = edges[0].dst
                if (nxt in _SENTINELS or nxt in consumed
                        or len(self.predecessors(nxt)) != 1):
                    break
                candidate = profile_for(nxt)
                if chain_conflicts([*group_profiles, candidate]):
                    break
                group.append(nxt)
                group_profiles.append(candidate)
                current = nxt
            consumed.update(group)
            layout.append(group)
        return layout
